"""Instrumented RAM-model data structures (§3 substrate).

Charging convention (shared by every tree in this package):

* examining a node during a search/descent = **1 element read**;
* mutating a node (any subset of its fields changed by one primitive —
  an attach, a recolor, one pointer change of a rotation) = **1 element
  write** per mutated node.

Under this convention the paper's §3 observation is measurable: a red-black
tree (amortized O(1) recolorings + O(1) rotations per insert) sorts with
``O(n)`` writes, whereas an AVL tree pays ``Θ(log n)`` height-maintenance
writes per insert and a binary-heap heapsort pays ``Θ(n log n)`` writes.
"""

from .avl import AVLTree
from .heaps import InstrumentedBinaryHeap
from .rb_tree import RedBlackTree
from .treap import Treap
from .write_efficient import WriteEfficientDict, WriteEfficientPQ

__all__ = [
    "AVLTree",
    "InstrumentedBinaryHeap",
    "RedBlackTree",
    "Treap",
    "WriteEfficientDict",
    "WriteEfficientPQ",
]
