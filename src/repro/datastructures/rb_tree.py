"""Instrumented red-black tree: the §3 write-efficient balanced BST.

The paper's §3 RAM sort relies on balanced search trees whose insertions cost
``O(log n)`` reads but only ``O(1)`` *amortized* writes.  Red-black trees have
exactly this property: each insertion performs at most 2 rotations worst case,
and the total number of recolorings over any sequence of ``n`` insertions is
``O(n)`` (the classic amortized-recoloring argument; cf. the paper's citation
[29] for worst-case-constant-rotation trees).

Instrumentation: node examinations charge element reads, node mutations charge
element writes, on the shared :class:`~repro.models.counters.CostCounter`.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..models.counters import CostCounter

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key, value, parent=None):
        self.key = key
        self.value = value
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.parent: _Node | None = parent
        self.color = RED


class RedBlackTree:
    """CLRS-style red-black tree with read/write instrumentation.

    Parameters
    ----------
    counter:
        Shared cost counter; element reads/writes are charged per the package
        charging convention.
    """

    def __init__(self, counter: CostCounter | None = None):
        self.counter = counter if counter is not None else CostCounter()
        self.root: _Node | None = None
        self.size = 0
        self.rotations = 0
        self.recolorings = 0

    # ------------------------------------------------------------------ #
    # instrumentation primitives
    # ------------------------------------------------------------------ #
    def _read(self, n: int = 1) -> None:
        self.counter.charge_read(n)

    def _write(self, n: int = 1) -> None:
        self.counter.charge_write(n)

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #
    def search(self, key):
        """Return the stored value for ``key`` or ``None``; O(log n) reads."""
        node = self.root
        while node is not None:
            self._read()
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return None

    def __contains__(self, key) -> bool:
        return self.search(key) is not None or self._contains_none_value(key)

    def _contains_none_value(self, key) -> bool:
        node = self.root
        while node is not None:
            if key == node.key:
                return True
            node = node.left if key < node.key else node.right
        return False

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, key, value=None) -> None:
        """Insert ``key``; O(log n) reads, O(1) amortized writes."""
        parent = None
        node = self.root
        while node is not None:
            self._read()
            parent = node
            if key == node.key:
                raise ValueError(f"duplicate key {key!r} (keys must be unique, §2)")
            node = node.left if key < node.key else node.right
        fresh = _Node(key, value, parent)
        # one write for the new node, one for the parent pointer update
        self._write()
        if parent is None:
            self.root = fresh
        else:
            self._write()
            if key < parent.key:
                parent.left = fresh
            else:
                parent.right = fresh
        self.size += 1
        self._insert_fixup(fresh)

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent is not None and z.parent.color == RED:
            self._read()  # examine parent/grandparent colors
            gp = z.parent.parent
            assert gp is not None  # red parent implies a (black) grandparent
            if z.parent is gp.left:
                uncle = gp.right
                if uncle is not None and uncle.color == RED:
                    # case 1: recolor and move up (amortized O(1) overall)
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    self._write(3)
                    self.recolorings += 3
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._write(2)
                    self.recolorings += 2
                    self._rotate_right(gp)
            else:
                uncle = gp.left
                if uncle is not None and uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    self._write(3)
                    self.recolorings += 3
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._write(2)
                    self.recolorings += 2
                    self._rotate_left(gp)
        if self.root is not None and self.root.color == RED:
            self.root.color = BLACK
            self._write()
            self.recolorings += 1

    # ------------------------------------------------------------------ #
    # rotations: 3 nodes mutated => 3 writes each
    # ------------------------------------------------------------------ #
    def _rotate_left(self, x: _Node) -> None:
        y = x.right
        assert y is not None
        x.right = y.left
        if y.left is not None:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y
        self._write(3)
        self.rotations += 1

    def _rotate_right(self, x: _Node) -> None:
        y = x.left
        assert y is not None
        x.left = y.right
        if y.right is not None:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is None:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y
        self._write(3)
        self.rotations += 1

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def keys_in_order(self) -> Iterator:
        """Yield keys in sorted order; charges one read per node visited."""
        stack: list[_Node] = []
        node = self.root
        while stack or node is not None:
            while node is not None:
                self._read()
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    # ------------------------------------------------------------------ #
    # invariant checking (uncharged; used by tests)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> int:
        """Verify BST order + red-black properties; return black-height."""
        def walk(node: _Node | None, lo, hi) -> int:
            if node is None:
                return 1
            if (lo is not None and node.key <= lo) or (hi is not None and node.key >= hi):
                raise AssertionError("BST order violated")
            if node.color == RED:
                for child in (node.left, node.right):
                    if child is not None and child.color == RED:
                        raise AssertionError("red node with red child")
            lh = walk(node.left, lo, node.key)
            rh = walk(node.right, node.key, hi)
            if lh != rh:
                raise AssertionError("black-height mismatch")
            return lh + (0 if node.color == RED else 1)

        if self.root is not None and self.root.color == RED:
            raise AssertionError("red root")
        return walk(self.root, None, None)

    def __len__(self) -> int:
        return self.size
