"""Instrumented binary heap — the Θ(n log n)-write classic baseline.

Heapsort sift operations move records ``Θ(log n)`` levels, writing at every
level, so heapsort performs ``Θ(n log n)`` element writes: the canonical
write-*inefficient* comparison sort the §3 experiments compare against.

The heap also doubles as an instrumented priority queue (``push`` /
``pop_min``) for RAM-model experiments.  (Inside AEM algorithms, primary-
memory work is free, so those use plain :mod:`heapq` instead.)
"""

from __future__ import annotations

from ..models.counters import CostCounter


class InstrumentedBinaryHeap:
    """Array-backed binary min-heap charging element reads/writes.

    Every slot read charges one element read; every slot write charges one
    element write (the RAM-model cost of the classic structure).
    """

    def __init__(self, counter: CostCounter | None = None):
        self.counter = counter if counter is not None else CostCounter()
        self._a: list = []

    def __len__(self) -> int:
        return len(self._a)

    # ------------------------------------------------------------------ #
    def _get(self, i: int):
        self.counter.charge_read()
        return self._a[i]

    def _set(self, i: int, v) -> None:
        self.counter.charge_write()
        self._a[i] = v

    # ------------------------------------------------------------------ #
    def push(self, item) -> None:
        """Insert: O(log n) reads and O(log n) writes (sift-up)."""
        self._a.append(None)
        self._sift_up(len(self._a) - 1, item)

    def _sift_up(self, pos: int, item) -> None:
        while pos > 0:
            parent_pos = (pos - 1) // 2
            parent = self._get(parent_pos)
            if parent <= item:
                break
            self._set(pos, parent)
            pos = parent_pos
        self._set(pos, item)

    def pop_min(self):
        """Remove and return the minimum: O(log n) reads and writes."""
        if not self._a:
            raise IndexError("pop from empty heap")
        top = self._get(0)
        last = self._a.pop()
        self.counter.charge_read()
        if self._a:
            self._sift_down(0, last)
        return top

    def _sift_down(self, pos: int, item) -> None:
        n = len(self._a)
        while True:
            child = 2 * pos + 1
            if child >= n:
                break
            right = child + 1
            child_val = self._get(child)
            if right < n:
                right_val = self._get(right)
                if right_val < child_val:
                    child, child_val = right, right_val
            if child_val >= item:
                break
            self._set(pos, child_val)
            pos = child
        self._set(pos, item)

    def peek_min(self):
        """Read the minimum without removing it (1 read)."""
        if not self._a:
            raise IndexError("peek on empty heap")
        return self._get(0)

    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Verify the heap property (uncharged; tests only)."""
        for i in range(1, len(self._a)):
            if self._a[(i - 1) // 2] > self._a[i]:
                raise AssertionError(f"heap property violated at index {i}")
