"""Instrumented treap — randomized balanced BST with O(1) expected rotations.

A treap insert performs an expected **constant** number of rotations (the
inserted node rises past expectedly O(1) ancestors with larger priority), so
like the red-black tree it yields an ``O(n)``-expected-write RAM sort.  It
serves as the randomized counterpart in the §3 experiments.

Charging convention: see :mod:`repro.datastructures`.
"""

from __future__ import annotations

import random
from collections.abc import Iterator

from ..models.counters import CostCounter


class _Node:
    __slots__ = ("key", "value", "priority", "left", "right")

    def __init__(self, key, value, priority: float):
        self.key = key
        self.value = value
        self.priority = priority
        self.left: _Node | None = None
        self.right: _Node | None = None


class Treap:
    """Randomized BST with heap-ordered priorities, instrumented."""

    def __init__(self, counter: CostCounter | None = None, seed: int = 0):
        self.counter = counter if counter is not None else CostCounter()
        self.root: _Node | None = None
        self.size = 0
        self.rotations = 0
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    def insert(self, key, value=None) -> None:
        """Insert: O(log n) expected reads, O(1) expected rotation writes."""
        self.root = self._insert(self.root, key, value, self._rng.random())
        self.size += 1

    def _insert(self, node: _Node | None, key, value, priority: float) -> _Node:
        if node is None:
            self.counter.charge_write()
            return _Node(key, value, priority)
        self.counter.charge_read()
        if key == node.key:
            raise ValueError(f"duplicate key {key!r} (keys must be unique, §2)")
        if key < node.key:
            child = self._insert(node.left, key, value, priority)
            if child is not node.left:
                node.left = child
                self.counter.charge_write()
            if node.left.priority > node.priority:
                node = self._rotate_right(node)
        else:
            child = self._insert(node.right, key, value, priority)
            if child is not node.right:
                node.right = child
                self.counter.charge_write()
            if node.right.priority > node.priority:
                node = self._rotate_left(node)
        return node

    def _rotate_right(self, x: _Node) -> _Node:
        y = x.left
        assert y is not None
        x.left = y.right
        y.right = x
        self.counter.charge_write(2)
        self.rotations += 1
        return y

    def _rotate_left(self, x: _Node) -> _Node:
        y = x.right
        assert y is not None
        x.right = y.left
        y.left = x
        self.counter.charge_write(2)
        self.rotations += 1
        return y

    # ------------------------------------------------------------------ #
    def search(self, key):
        node = self.root
        while node is not None:
            self.counter.charge_read()
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return None

    def keys_in_order(self) -> Iterator:
        stack: list[_Node] = []
        node = self.root
        while stack or node is not None:
            while node is not None:
                self.counter.charge_read()
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Verify BST order + heap order on priorities (uncharged)."""
        def walk(node: _Node | None, lo, hi) -> None:
            if node is None:
                return
            if (lo is not None and node.key <= lo) or (hi is not None and node.key >= hi):
                raise AssertionError("BST order violated")
            for child in (node.left, node.right):
                if child is not None and child.priority > node.priority:
                    raise AssertionError("heap order violated")
            walk(node.left, lo, node.key)
            walk(node.right, node.key, hi)

        walk(self.root, None, None)

    def __len__(self) -> int:
        return self.size
