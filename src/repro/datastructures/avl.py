"""Instrumented AVL tree — the *contrast* balanced BST for §3.

A naive AVL implementation recomputes and stores per-node heights along the
entire search path, performing ``Θ(log n)`` writes per insert even when no
rotation happens — the textbook example of a structure that ignores write
cost.  ``AVLTree(naive_heights=True)`` reproduces that behaviour.

The default (``naive_heights=False``) writes a height field only when its
value actually changes.  A measured finding of this reproduction (see
EXPERIMENTS.md, E13): under that discipline AVL height updates are amortized
``O(1)`` per random insert, so even the AVL tree becomes write-efficient —
reinforcing the paper's §3 point that careful engineering of *which fields
get written* is what drives RAM-model write cost.

Charging convention: see :mod:`repro.datastructures`.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..models.counters import CostCounter


class _Node:
    __slots__ = ("key", "value", "left", "right", "height")

    def __init__(self, key, value):
        self.key = key
        self.value = value
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.height = 1


class AVLTree:
    """Recursive AVL tree with read/write instrumentation.

    Parameters
    ----------
    naive_heights:
        If true, charge a height write for *every* node on the search path
        (the textbook implementation that stores ``h = 1 + max(...)``
        unconditionally) — Θ(log n) writes per insert.  If false (default),
        charge only when the stored height changes — measured amortized O(1)
        per random insert.
    """

    def __init__(self, counter: CostCounter | None = None, naive_heights: bool = False):
        self.counter = counter if counter is not None else CostCounter()
        self.root: _Node | None = None
        self.size = 0
        self.rotations = 0
        self.naive_heights = naive_heights

    # ------------------------------------------------------------------ #
    @staticmethod
    def _h(node: _Node | None) -> int:
        return node.height if node is not None else 0

    def _update_height(self, node: _Node) -> None:
        new_h = 1 + max(self._h(node.left), self._h(node.right))
        if new_h != node.height:
            node.height = new_h
            self.counter.charge_write()  # the height-maintenance write
        elif self.naive_heights:
            self.counter.charge_write()  # unconditional store of the height

    def _balance_factor(self, node: _Node) -> int:
        return self._h(node.left) - self._h(node.right)

    # ------------------------------------------------------------------ #
    def insert(self, key, value=None) -> None:
        """Insert ``key``: O(log n) reads and O(log n) writes (heights)."""
        self.root = self._insert(self.root, key, value)
        self.size += 1

    def _insert(self, node: _Node | None, key, value) -> _Node:
        if node is None:
            self.counter.charge_write()  # materialise the new node
            return _Node(key, value)
        self.counter.charge_read()  # examine node on the way down
        if key == node.key:
            raise ValueError(f"duplicate key {key!r} (keys must be unique, §2)")
        if key < node.key:
            child = self._insert(node.left, key, value)
            if child is not node.left:
                node.left = child
                self.counter.charge_write()
        else:
            child = self._insert(node.right, key, value)
            if child is not node.right:
                node.right = child
                self.counter.charge_write()
        self._update_height(node)
        return self._rebalance(node)

    def _rebalance(self, node: _Node) -> _Node:
        bf = self._balance_factor(node)
        if bf > 1:
            assert node.left is not None
            if self._balance_factor(node.left) < 0:
                node.left = self._rotate_left(node.left)
                self.counter.charge_write()
            return self._rotate_right(node)
        if bf < -1:
            assert node.right is not None
            if self._balance_factor(node.right) > 0:
                node.right = self._rotate_right(node.right)
                self.counter.charge_write()
            return self._rotate_left(node)
        return node

    def _rotate_left(self, x: _Node) -> _Node:
        y = x.right
        assert y is not None
        x.right = y.left
        y.left = x
        self.counter.charge_write(2)  # two pointer mutations
        self._update_height(x)
        self._update_height(y)
        self.rotations += 1
        return y

    def _rotate_right(self, x: _Node) -> _Node:
        y = x.left
        assert y is not None
        x.left = y.right
        y.right = x
        self.counter.charge_write(2)
        self._update_height(x)
        self._update_height(y)
        self.rotations += 1
        return y

    # ------------------------------------------------------------------ #
    def search(self, key):
        """Return value for ``key`` or ``None``; O(log n) reads."""
        node = self.root
        while node is not None:
            self.counter.charge_read()
            if key == node.key:
                return node.value
            node = node.left if key < node.key else node.right
        return None

    def keys_in_order(self) -> Iterator:
        """Sorted key stream; one read per node visited."""
        stack: list[_Node] = []
        node = self.root
        while stack or node is not None:
            while node is not None:
                self.counter.charge_read()
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.key
            node = node.right

    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Verify BST order and AVL balance (uncharged; tests only)."""
        def walk(node: _Node | None, lo, hi) -> int:
            if node is None:
                return 0
            if (lo is not None and node.key <= lo) or (hi is not None and node.key >= hi):
                raise AssertionError("BST order violated")
            lh = walk(node.left, lo, node.key)
            rh = walk(node.right, node.key, hi)
            if abs(lh - rh) > 1:
                raise AssertionError("AVL balance violated")
            h = 1 + max(lh, rh)
            if h != node.height:
                raise AssertionError("stale height")
            return h

        walk(self.root, None, None)

    def __len__(self) -> int:
        return self.size
