"""§3's corollary structures: dictionaries and priority queues with O(1)
amortized writes per operation.

*"Similarly, we can maintain priority queues (insert and delete-min) and
comparison-based dictionaries (insert, delete and search) in O(1) writes per
operation."* (§3)

Both structures wrap the red-black tree and make deletions *logical* (one
field write, or none at all) with periodic compaction once half the
structure is dead — the same trade the paper highlights in its database
citation [12] (don't repack eagerly; spend reads to save writes).  The
amortized write bounds are measured per operation mix in
``tests/test_write_efficient.py``.
"""

from __future__ import annotations

from ..models.counters import CostCounter
from .rb_tree import RedBlackTree

_TOMBSTONE = object()


def _rebuild_balanced(keys_values, counter: CostCounter) -> RedBlackTree:
    """Median-first bulk build: balanced with near-zero rotations."""
    fresh = RedBlackTree(counter)

    def build(lo: int, hi: int) -> None:
        if lo >= hi:
            return
        mid = (lo + hi) // 2
        key, value = keys_values[mid]
        fresh.insert(key, value)
        build(lo, mid)
        build(mid + 1, hi)

    build(0, len(keys_values))
    return fresh


class WriteEfficientDict:
    """Comparison-based dictionary: O(log n) reads, O(1) amortized writes
    per insert; searches write nothing; deletes tombstone (one write) and
    compact at 50% dead (amortized O(1) writes per delete)."""

    def __init__(self, counter: CostCounter | None = None):
        self.counter = counter if counter is not None else CostCounter()
        self._tree = RedBlackTree(self.counter)
        self._live = 0
        self._dead = 0
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def insert(self, key, value) -> None:
        """Insert a new key (keys are unique, §2).

        Re-inserting a tombstoned key resurrects it in place — one value
        write, no structural writes — keeping delete → insert → delete
        sequences legal, as for a plain dictionary.
        """
        try:
            self._tree.insert(key, value)
        except ValueError:
            # key already in the tree: legal only if it is a tombstone
            node = self._find_node(key)
            if node is None or node.value is not _TOMBSTONE:
                raise
            node.value = value
            self.counter.charge_write()
            self._dead -= 1
        self._live += 1

    def _find_node(self, key):
        """Descend to ``key``'s node (one read per node), or ``None``."""
        node = self._tree.root
        while node is not None:
            self.counter.charge_read()
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return None

    def search(self, key):
        """Return the value for ``key``, or ``None``; zero writes."""
        value = self._tree.search(key)
        return None if value is _TOMBSTONE else value

    def __contains__(self, key) -> bool:
        return self.search(key) is not None

    def delete(self, key) -> None:
        """Tombstone ``key`` (one write); compact once half the tree is dead."""
        node = self._find_node(key)
        if node is None or node.value is _TOMBSTONE:
            raise KeyError(key)
        node.value = _TOMBSTONE
        self.counter.charge_write()
        self._live -= 1
        self._dead += 1
        if self._dead > max(8, self._live):
            self._compact()

    def _compact(self) -> None:
        items = []
        stack = []
        node = self._tree.root
        while stack or node is not None:
            while node is not None:
                self.counter.charge_read()
                stack.append(node)
                node = node.left
            node = stack.pop()
            if node.value is not _TOMBSTONE:
                items.append((node.key, node.value))
            node = node.right
        self._tree = _rebuild_balanced(items, self.counter)
        self._dead = 0
        self.compactions += 1

    def items_in_order(self):
        """Yield live ``(key, value)`` pairs in key order."""
        stack = []
        node = self._tree.root
        while stack or node is not None:
            while node is not None:
                self.counter.charge_read()
                stack.append(node)
                node = node.left
            node = stack.pop()
            if node.value is not _TOMBSTONE:
                yield node.key, node.value
            node = node.right


class WriteEfficientPQ:
    """Priority queue: O(1) amortized *writes* per INSERT / DELETE-MIN.

    DELETE-MIN is logical: the minimum live node is located by an in-order
    walk that skips dead nodes (zero structural writes) and marked dead in
    an in-memory identity set; the tree is rebuilt once half its nodes are
    dead.  Reads stay O(log n) amortized for the monotone access patterns of
    sorting/scheduling (arbitrary interleavings can pay extra reads skipping
    dead prefixes — never extra writes).  Contrast: a binary heap writes
    Θ(log n) slots per operation (E13).
    """

    def __init__(self, counter: CostCounter | None = None):
        self.counter = counter if counter is not None else CostCounter()
        self._tree = RedBlackTree(self.counter)
        self._dead: set[int] = set()  # ids of logically deleted nodes
        self._spine: list = []  # in-order iterator stack over live prefix
        self.rebuilds = 0

    def __len__(self) -> int:
        return len(self._tree) - len(self._dead)

    def insert(self, key) -> None:
        # compaction happens on insert, not during delete sweeps: a pure
        # delete-min drain advances monotonically past dead nodes and never
        # revisits them, so rebuilding there would only add writes.
        if len(self._dead) > max(8, len(self)):
            self._rebuild()
        self._tree.insert(key)
        # rebalancing rotations can restructure arbitrarily: drop the cached
        # iterator spine (re-descending costs O(log n) reads, zero writes)
        self._spine = []

    def peek_min(self):
        """Read the minimum without removing it."""
        node = self._next_live(consume=False)
        return node.key

    def delete_min(self):
        """Remove and return the smallest live key (no structural writes)."""
        node = self._next_live(consume=True)
        self._dead.add(id(node))
        return node.key

    # ------------------------------------------------------------------ #
    def _descend_left(self, node) -> None:
        while node is not None:
            self.counter.charge_read()
            self._spine.append(node)
            node = node.left

    def _next_live(self, *, consume: bool):
        if len(self) == 0:
            raise IndexError("empty priority queue")
        if not self._spine:
            self._descend_left(self._tree.root)
        while True:
            if not self._spine:
                raise AssertionError("live count positive but iterator dry")
            node = self._spine[-1]
            if id(node) in self._dead:
                self._spine.pop()
                self._descend_left(node.right)
                continue
            if consume:
                self._spine.pop()
                self._descend_left(node.right)
            return node

    def _rebuild(self) -> None:
        """Drop dead nodes: O(n) reads/writes, amortized O(1) per op."""
        live = []
        stack = []
        node = self._tree.root
        while stack or node is not None:
            while node is not None:
                self.counter.charge_read()
                stack.append(node)
                node = node.left
            node = stack.pop()
            if id(node) not in self._dead:
                live.append((node.key, None))
            node = node.right
        self._tree = _rebuild_balanced(live, self.counter)
        self._dead = set()
        self._spine = []
        self.rebuilds += 1
