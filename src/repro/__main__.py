"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``experiments [--quick] [ID ...]``
    Regenerate the paper's experiment tables (default: all of E1-E17).
``sort --algorithm ALG --n N [--k K] [--M M] [--B B] [--omega W]``
    Sort a random permutation and print the cost report.
``tune --n N [--M M] [--B B] [--omega W]``
    Print the Appendix-A k sweep for a machine.
``plan --n N [--M M] [--B B] [--omega W] [--constants FILE]``
    Rank every algorithm by exact predicted asymmetric I/O cost (the
    cost-model planner behind ``sort_auto``) without executing anything;
    ``--constants`` loads a calibrated-constants JSON from ``calibrate``.
``batch --jobs J --n N [--mix S1,S2,...] [--executor thread|process]
[--workers W] [--constants FILE] [--check]``
    Run many adaptive sort jobs concurrently over a mixed workload
    (scenarios from ``repro.workloads.SCENARIOS``) and print the aggregated
    throughput report plus the per-family routing mix.  ``--executor
    process`` shards jobs across worker processes for real multi-core
    scaling.
``calibrate [--sizes N1,N2,...] [--scenario S] [--plan-n N] [--save FILE]``
    Fit per-algorithm leading constants from measured runs, print them, and
    compare the calibrated predicted ranking against the measured-cost
    ranking at a probe size.
``stream [--input FILE] [--random N] [--k K] [--M M] [--B B] [--omega W]``
    Feed records one at a time into the buffer-tree-backed streaming session
    (``SortEngine.stream()``) and print the sorted-drain report.  Records
    come from ``--input`` (one key per line, ``-`` = stdin, lines of the
    form ``del KEY`` delete a live key) or from ``--random N`` (a seeded
    random permutation).

``serve [--host H] [--port P] [--workers W] [--executor thread|process]
[--M M] [--B B] [--omega W] [--constants FILE]``
    Run the persistent engine server: a :class:`~repro.service.SortService`
    pool behind a newline-delimited-JSON line protocol on a local TCP
    socket (``{"op": "submit", "data": [...]}`` in, ticket ids and sorted
    results out — see :mod:`repro.service.server`).  ``--port 0`` binds an
    ephemeral port and prints it.  Stop with Ctrl-C or the ``shutdown`` op.

``cluster [--servers N] [--n N] [--jobs J] [--workers W] [--check]``
    Spawn N local serve subprocesses, scatter-gather one large job across
    them (central splitter sampling + per-host shard sorts + a billed
    ``shardmerge``), route a stream of small jobs to the least-loaded
    host, print per-host and aggregate cluster stats, then drain-shutdown
    the fleet.  ``--check`` additionally asserts parity with a
    single-engine ``sort_auto`` run.

``chaos [--seed N] [--drills D1,D2,...] [--twice]``
    Run the deterministic fault-injection drills (worker death, wire
    drops, torn lines, slow hosts, timeout storms, host kill-and-rejoin)
    against real in-process services and subprocess fleets; a fixed seed
    replays the identical storm (``--twice`` verifies that on the spot).

``sort`` / ``batch`` / ``calibrate`` / ``stream`` / ``serve`` all route
through one :class:`~repro.engine.SortEngine`, so a single plan cache and
constants set serves every job of a command invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

from .analysis.ktuning import sweep_k
from .analysis.tables import format_table
from .engine import SortEngine
from .experiments import ALL_EXPERIMENTS
from .models.params import MachineParams
from .planner import (
    CostConstants,
    SortJob,
    compare_rankings,
    fit_constants,
    measure_samples,
    rank_plans,
)
from .workloads import SCENARIOS, make_scenario, random_permutation


def _cmd_experiments(args: argparse.Namespace) -> int:
    wanted = [w.upper() for w in args.ids] or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; choose from {list(ALL_EXPERIMENTS)}")
        return 2
    for name in wanted:
        mod = ALL_EXPERIMENTS[name]
        t0 = time.time()
        rows = mod.run(quick=args.quick)
        print(format_table(rows, title=getattr(mod, "TITLE", name)))
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    engine = SortEngine(params)
    data = random_permutation(args.n, seed=args.seed)
    try:
        rep = engine.sort(data, algorithm=args.algorithm, k=args.k)
    except ValueError as exc:  # e.g. --algorithm ram with n > M
        print(f"cannot run this sort: {exc}")
        return 2
    assert rep.is_sorted()
    print(
        format_table(
            [
                {
                    "algorithm": rep.algorithm,
                    "n": rep.n,
                    "block reads": rep.reads,
                    "block writes": rep.writes,
                    "cost R+wW": rep.cost(),
                    "mem high water": rep.memory_high_water,
                }
            ],
            title=f"sort on {params}",
        )
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    rows = sweep_k(args.n, params, k_max=args.k_max)
    print(format_table(rows, title=f"Appendix-A k sweep for n={args.n} on {params}"))
    best = min(rows, key=lambda r: r["predicted_cost"])
    print(f"\npredicted-best k = {best['k']}")
    return 0


def _load_constants(path: str | None) -> CostConstants | None:
    return CostConstants.load(path) if path else None


def _cmd_plan(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    ranked = rank_plans(args.n, params, k_max=args.k_max,
                        constants=_load_constants(args.constants))
    rows = [
        {
            "rank": i,
            "algorithm": c.algorithm,
            "k": c.k if c.k is not None else "-",
            "pred reads": c.predicted_reads,
            "pred writes": c.predicted_writes,
            "pred cost R+wW": c.predicted_cost,
            "model": c.model,
        }
        for i, c in enumerate(ranked)
    ]
    print(format_table(rows, title=f"predicted plan for n={args.n} on {params}"))
    best = ranked[0]
    k_note = f" with k={best.k}" if best.k is not None else ""
    print(f"\nchosen: {best.algorithm}{k_note} (predicted cost {best.predicted_cost:g})")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    mix = [s.strip() for s in args.mix.split(",") if s.strip()]
    unknown = [s for s in mix if s not in SCENARIOS]
    if not mix or unknown:
        print(f"unknown scenarios: {unknown or args.mix!r}; choose from {sorted(SCENARIOS)}")
        return 2
    rng = random.Random(args.seed)
    n_lo = args.min_n if args.min_n is not None else max(1, args.n // 4)
    jobs = []
    for i in range(args.jobs):
        scenario = mix[i % len(mix)]
        n = rng.randint(min(n_lo, args.n), args.n)
        jobs.append(
            SortJob(
                data=make_scenario(scenario, n, seed=args.seed + i),
                params=params,
                label=f"{scenario}/n={n}",
                algorithm=args.algorithm,
            )
        )
    t0 = time.time()
    engine = SortEngine(
        params,
        constants=_load_constants(args.constants),
        executor=args.executor,
        workers=args.workers,
    )
    report = engine.batch(jobs, check_sorted=args.check)
    print(
        format_table(
            [report.summary()],
            title=f"batch of {args.jobs} jobs on {params} [{args.executor}]",
        )
    )
    print()
    print(format_table(report.mix_rows(), title="per-algorithm routing mix"))
    for f in report.failures:
        print(f"FAILED job {f.index} ({f.label}): {f.error!r}")
    print(f"\n[{args.jobs} jobs, {len(report.failures)} failed, {time.time() - t0:.1f}s]")
    return 1 if report.failures else 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    if not sizes:
        print(f"no calibration sizes in {args.sizes!r}")
        return 2
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; choose from {sorted(SCENARIOS)}")
        return 2
    samples = measure_samples(params, sizes=sizes, scenario=args.scenario, seed=args.seed)
    constants = fit_constants(samples)
    rows = [
        {"family": fam, "read const": round(cr, 4), "write const": round(cw, 4)}
        for fam, cr, cw in constants.entries
    ]
    print(
        format_table(
            rows,
            title=f"calibrated constants on {params} "
            f"(sizes={list(sizes)}, scenario={args.scenario})",
        )
    )
    # measured-vs-predicted ranking check at the probe size
    probe = args.plan_n if args.plan_n is not None else max(sizes)
    families = tuple(dict.fromkeys(s.family for s in samples))
    comparison = compare_rankings(
        params,
        constants,
        probe,
        algorithms=families,
        scenario=args.scenario,
        seed=args.seed + len(sizes),
    )
    rows = [
        {
            "rank": i,
            "predicted": cand.algorithm,
            "pred cost": round(cand.predicted_cost, 1),
            "measured": comparison.measured_order[i],
            "meas cost": comparison.measured_costs[comparison.measured_order[i]],
        }
        for i, cand in enumerate(comparison.ranked)
    ]
    print()
    print(format_table(rows, title=f"calibrated vs measured ranking at n={probe}"))
    print(f"\nranking agreement: {'yes' if comparison.agree else 'NO'}")
    if args.save:
        constants.save(args.save)
        print(f"constants written to {args.save}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import EngineServer, SortService

    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    engine = SortEngine(
        params,
        constants=_load_constants(args.constants),
        executor=args.executor,
        workers=args.workers,
    )
    service = SortService(
        engine,
        max_queue=args.max_queue,
        admission=args.admission,
        block_timeout=args.block_timeout,
    )
    try:
        server = EngineServer(
            service,
            host=args.host,
            port=args.port,
            ticket_ttl=args.ticket_ttl,
            max_tickets=args.max_tickets,
            max_client_tickets=args.max_client_tickets,
        )
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}")
        service.shutdown(drain=False)
        return 2
    host, port = server.address
    print(
        f"serving sort jobs on {host}:{port} "
        f"[{params}, workers={service.workers}, executor={service.executor}] — "
        "newline-delimited JSON, e.g. {\"op\": \"submit\", \"data\": [5, 3, 1]}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.close()
        service.shutdown(drain=False)
        engine.close()
    stats = service.stats()
    print(
        f"server stopped: {stats['completed']} jobs completed, "
        f"{stats['cancelled']} cancelled, {stats['respawns']} worker respawns",
        flush=True,
    )
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import LocalCluster

    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    t0 = time.time()
    with LocalCluster(
        args.servers, workers=args.workers, executor=args.executor, params=params
    ) as fleet:
        coord = fleet.connect(retries=args.retries)
        try:
            # one huge job, scatter-gathered across the fleet
            data = random_permutation(args.n, seed=args.seed)
            rep = coord.sort(data, check_sorted=args.check)
            if args.check:
                if not rep.is_sorted():
                    print("ERROR: cluster output is not sorted")
                    return 1
                with SortEngine(params) as engine:
                    ref = engine.sort(data)
                if rep.output != ref.output:
                    print("ERROR: cluster output differs from single-engine sort_auto")
                    return 1
            print(
                format_table(
                    [
                        {
                            "hosts": rep.extras["hosts"],
                            "n": rep.n,
                            "merge reads": rep.reads,
                            "merge writes": rep.writes,
                            "merge cost R+wW": rep.cost(),
                            "remote reads": rep.extras["remote_reads"],
                            "remote writes": rep.extras["remote_writes"],
                            "retries": rep.extras["retries"],
                        }
                    ],
                    title=f"scatter-gather of n={args.n} on {params} "
                    f"[{args.servers} servers]",
                )
            )
            # a stream of small jobs, routed to the least-loaded host
            rng = random.Random(args.seed)
            handles = []
            for i in range(args.jobs):
                n = rng.randint(max(1, args.small_n // 2), args.small_n)
                handles.append(
                    coord.submit(
                        make_scenario("uniform", n, seed=args.seed + i),
                        label=f"small{i}",
                        check_sorted=args.check,
                    )
                )
            results = coord.gather(handles)
            stats = coord.stats()
            agg = stats["aggregate"]
            print()
            print(
                format_table(
                    [
                        {
                            "routed jobs": agg["routed_jobs"],
                            "scatter jobs": agg["scatter_jobs"],
                            "live hosts": agg["live_hosts"],
                            "records/s": round(agg["records_per_sec"], 1),
                            "retries": agg["retries"],
                            "rebalances": agg["rebalances"],
                        }
                    ],
                    title=f"cluster aggregate after {len(results)} routed jobs",
                )
            )
            print()
            print(
                format_table(
                    [
                        {
                            "host": f"{h['host']}:{h['port']}",
                            "alive": h["alive"],
                            "completed": h.get("completed", "-"),
                            "queued": h.get("queued", "-"),
                            "tickets": h.get("tickets", "-"),
                            "records/s": h.get("records_per_sec", "-"),
                        }
                        for h in stats["per_host"]
                    ],
                    title="per-host stats",
                )
            )
            coord.shutdown()
            fleet.wait()
        finally:
            coord.close()
    print(f"\n[{args.servers} servers drained and stopped, {time.time() - t0:.1f}s]")
    return 0


def _parse_stream_line(line: str):
    """One input line → ``("del", key)`` or ``("push", key)`` or ``None``.

    Keys parse as int when possible, float next, raw string otherwise (all
    keys in one stream must stay mutually comparable).
    """
    line = line.strip()
    if not line or line.startswith("#"):
        return None
    op = "push"
    if line.startswith("del "):
        op, line = "del", line[4:].strip()
    try:
        key = int(line)
    except ValueError:
        try:
            key = float(line)
        except ValueError:
            key = line
    return op, key


def _cmd_stream(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    engine = SortEngine(params)
    t0 = time.time()
    session = engine.stream(k=args.k)
    if args.random is not None:
        session.push_many(random_permutation(args.random, seed=args.seed))
    else:
        try:
            fh = sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
        except OSError as exc:
            print(f"cannot read records from {args.input!r}: {exc}")
            return 2
        try:
            for lineno, raw in enumerate(fh, start=1):
                parsed = _parse_stream_line(raw)
                if parsed is None:
                    continue
                op, key = parsed
                try:
                    if op == "del":
                        session.delete(key)
                    else:
                        session.push(key)
                except (KeyError, TypeError) as exc:
                    # delete of an absent key, or mutually incomparable keys
                    print(f"bad record at line {lineno} ({raw.strip()!r}): {exc}")
                    return 1
        finally:
            if fh is not sys.stdin:
                fh.close()
    try:
        rep = session.close()
    except TypeError as exc:  # incomparable keys caught at the drain
        print(f"cannot drain stream: {exc}")
        return 1
    wall = time.time() - t0
    if args.check and not rep.is_sorted():
        print("ERROR: drained output is not sorted")
        return 1
    ingested = session.pushed + session.deleted
    print(
        format_table(
            [
                {
                    "records": rep.n,
                    "pushed": session.pushed,
                    "deleted": session.deleted,
                    "block reads": rep.reads,
                    "block writes": rep.writes,
                    "cost R+wW": rep.cost(),
                    "records/s": round(ingested / wall, 1) if wall > 0 else 0.0,
                }
            ],
            title=f"streaming session on {params} [buffer tree, k={session.k}]",
        )
    )
    print()
    print(
        format_table(
            [
                {
                    "emptyings": rep.extras["emptyings"],
                    "leaf splits": rep.extras["leaf_splits"],
                    "internal splits": rep.extras["internal_splits"],
                    "annihilations": rep.extras["annihilations"],
                    "pred reads": round(rep.extras["predicted_reads"], 1),
                    "pred writes": round(rep.extras["predicted_writes"], 1),
                }
            ],
            title="buffer-tree statistics vs unit-constant prediction",
        )
    )
    return 0


def _parse_machines(spec: str) -> tuple[MachineParams, ...]:
    """``"64:8:8,256:16:4"`` → machine tuple (M:B:omega per entry)."""
    machines = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) != 3:
            raise ValueError(f"bad machine spec {chunk!r} (want M:B:omega)")
        m, b, w = (int(p) for p in parts)
        machines.append(MachineParams(M=m, B=b, omega=w))
    if not machines:
        raise ValueError(f"no machines in {spec!r}")
    return tuple(machines)


def _cmd_certify(args: argparse.Namespace) -> int:
    from .analysis import boundcheck

    kernels = None
    if args.kernels:
        kernels = [s.strip() for s in args.kernels.split(",") if s.strip()]
    machines = sizes = None
    try:
        if args.machines:
            machines = _parse_machines(args.machines)
        if args.sizes:
            sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    except ValueError as exc:
        print(f"certify: error: {exc}", file=sys.stderr)
        return 2

    t0 = time.time()
    try:
        result = boundcheck.certify(
            kernels=kernels,
            machines=machines,
            sizes=sizes,
            quick=args.quick,
            seed=args.seed,
            use_iosan=not args.no_iosan,
        )
    except (KeyError, boundcheck.CertificationError) as exc:
        print(f"certify: error: {exc}", file=sys.stderr)
        return 2
    paths = boundcheck.write_certificates(result, args.out)

    if args.format == "json":
        record = {
            "passed": result.ok,
            "registry_errors": list(result.registry_errors),
            "failures": result.failures(),
            "artifacts": paths,
        }
        json.dump(record, sys.stdout, indent=2)
        print()
    else:
        rows = []
        for cert in result.certificates:
            for mc in cert.machines:
                bad = sum(len(s.failures) for s in mc.samples)
                rows.append(
                    {
                        "kernel": cert.kernel,
                        "theorem": cert.theorem,
                        "kind": cert.kind,
                        "machine": f"M={mc.params.M} B={mc.params.B} w={mc.params.omega}",
                        "read const": round(mc.read_constant, 3),
                        "write const": round(mc.write_constant, 3),
                        "samples": len(mc.samples),
                        "violations": bad,
                    }
                )
        print(format_table(rows, title="theorem-envelope certification"))
        for err in result.registry_errors:
            print(f"REGISTRY: {err}")
        for line in result.failures():
            print(f"FAILED: {line}")
        verdict = "PASSED" if result.ok else "FAILED"
        print(
            f"\ncertify {verdict}: {len(result.certificates)} kernel(s), "
            f"{len(paths)} artifact(s) in {args.out} "
            f"[{time.time() - t0:.1f}s]"
        )
    return 0 if result.ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .testing import chaos

    names = [s.strip() for s in args.drills.split(",") if s.strip()] or None
    unknown = [n for n in names or () if n not in chaos.DRILLS]
    if unknown:
        print(f"unknown drills: {unknown}; choose from {sorted(chaos.DRILLS)}")
        return 2
    t0 = time.time()
    rows = []
    for name in names or list(chaos.DRILLS):
        row = chaos.run_drill(name, seed=args.seed)
        if args.twice:
            replay = chaos.run_drill(name, seed=args.seed)
            stable = all(
                replay.get(k) == v
                for k, v in row.items()
                if k not in chaos.NONDETERMINISTIC_KEYS
            )
            row["deterministic"] = stable
            row["ok"] = row["ok"] and replay["ok"] and stable
        rows.append(row)
    # drills return heterogeneous columns; print one table per drill
    for row in rows:
        print(format_table([row], title=f"chaos drill: {row['drill']} "
                                        f"(seed={args.seed})"))
        print()
    failed = [r["drill"] for r in rows if not r["ok"]]
    verdict = "PASSED" if not failed else f"FAILED ({', '.join(failed)})"
    print(f"chaos {verdict}: {len(rows)} drill(s) [{time.time() - t0:.1f}s]")
    return 0 if not failed else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import reprolint

    argv = list(args.paths)
    argv += ["--format", args.format, "--root", args.root]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv += ["--write-baseline", args.write_baseline]
    for name in args.rules or ():
        argv += ["--rule", name]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.no_cache:
        argv += ["--no-cache"]
    if args.cache_file:
        argv += ["--cache-file", args.cache_file]
    if args.explain:
        argv += ["--explain", args.explain]
    if args.dump_graphs:
        argv += ["--dump-graphs", args.dump_graphs]
    return reprolint.main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sorting with Asymmetric Read and Write Costs (SPAA 2015) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate experiment tables")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--quick", action="store_true", help="reduced grids")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_sort = sub.add_parser("sort", help="run one instrumented sort")
    p_sort.add_argument("--algorithm", default="mergesort",
                        choices=["auto", "mergesort", "samplesort", "heapsort",
                                 "selection", "ram"])
    p_sort.add_argument("--n", type=int, default=10_000)
    p_sort.add_argument("--k", type=int, default=None)
    p_sort.add_argument("--M", type=int, default=64)
    p_sort.add_argument("--B", type=int, default=8)
    p_sort.add_argument("--omega", type=int, default=8)
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.set_defaults(fn=_cmd_sort)

    p_tune = sub.add_parser("tune", help="Appendix-A k sweep")
    p_tune.add_argument("--n", type=int, default=100_000)
    p_tune.add_argument("--M", type=int, default=64)
    p_tune.add_argument("--B", type=int, default=8)
    p_tune.add_argument("--omega", type=int, default=8)
    p_tune.add_argument("--k-max", type=int, default=None)
    p_tune.set_defaults(fn=_cmd_tune)

    p_plan = sub.add_parser("plan", help="rank algorithms by predicted cost")
    p_plan.add_argument("--n", type=int, default=10_000)
    p_plan.add_argument("--M", type=int, default=64)
    p_plan.add_argument("--B", type=int, default=8)
    p_plan.add_argument("--omega", type=int, default=8)
    p_plan.add_argument("--k-max", type=int, default=None)
    p_plan.add_argument("--constants", default=None, metavar="FILE",
                        help="calibrated-constants JSON (from `calibrate --save`)")
    p_plan.set_defaults(fn=_cmd_plan)

    p_batch = sub.add_parser("batch", help="run many adaptive sorts concurrently")
    p_batch.add_argument("--jobs", type=int, default=50)
    p_batch.add_argument("--n", type=int, default=2_000,
                         help="max records per job (per-job n drawn in [min-n, n])")
    p_batch.add_argument("--min-n", type=int, default=None,
                         help="min records per job (default: n//4)")
    p_batch.add_argument("--mix", default="uniform,presorted,reversed,duplicates",
                         help=f"comma-separated scenarios from {sorted(SCENARIOS)}")
    p_batch.add_argument("--algorithm", default=None,
                         choices=["mergesort", "samplesort", "heapsort", "selection", "ram"],
                         help="pin every job to one algorithm (default: plan per job)")
    p_batch.add_argument("--M", type=int, default=64)
    p_batch.add_argument("--B", type=int, default=8)
    p_batch.add_argument("--omega", type=int, default=8)
    p_batch.add_argument("--executor", default="thread", choices=["thread", "process"],
                         help="thread: shared pool (GIL-bound); process: sharded "
                              "across worker processes for multi-core scaling")
    p_batch.add_argument("--workers", type=int, default=None,
                         help="pool width (thread) / shard count (process)")
    p_batch.add_argument("--constants", default=None, metavar="FILE",
                         help="calibrated-constants JSON (from `calibrate --save`)")
    p_batch.add_argument("--seed", type=int, default=0)
    p_batch.add_argument("--check", action="store_true",
                         help="verify every output is sorted")
    p_batch.set_defaults(fn=_cmd_batch)

    p_cal = sub.add_parser(
        "calibrate",
        help="fit per-algorithm leading constants from measured runs",
    )
    p_cal.add_argument("--sizes", default="512,2048,8192",
                       help="comma-separated calibration workload sizes")
    p_cal.add_argument("--scenario", default="uniform",
                       help=f"workload scenario from {sorted(SCENARIOS)}")
    p_cal.add_argument("--plan-n", type=int, default=None,
                       help="probe size for the ranking check (default: max size)")
    p_cal.add_argument("--M", type=int, default=64)
    p_cal.add_argument("--B", type=int, default=8)
    p_cal.add_argument("--omega", type=int, default=8)
    p_cal.add_argument("--seed", type=int, default=0)
    p_cal.add_argument("--save", default=None, metavar="FILE",
                       help="write the fitted constants as JSON")
    p_cal.set_defaults(fn=_cmd_calibrate)

    p_stream = sub.add_parser(
        "stream",
        help="ingest records incrementally through the buffer-tree stream",
    )
    p_stream.add_argument("--input", default="-", metavar="FILE",
                          help="records file, one key per line ('del KEY' "
                               "deletes; '-' = stdin)")
    p_stream.add_argument("--random", type=int, default=None, metavar="N",
                          help="ignore --input and push a seeded random "
                               "permutation of N records")
    p_stream.add_argument("--k", type=int, default=None,
                          help="buffer-tree extra branching factor "
                               "(default: Appendix-A recipe)")
    p_stream.add_argument("--M", type=int, default=64)
    p_stream.add_argument("--B", type=int, default=8)
    p_stream.add_argument("--omega", type=int, default=8)
    p_stream.add_argument("--seed", type=int, default=0)
    p_stream.add_argument("--check", action="store_true",
                          help="verify the drained output is sorted")
    p_stream.set_defaults(fn=_cmd_stream)

    p_serve = sub.add_parser(
        "serve",
        help="run the persistent engine server (sort jobs over a socket)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral, printed at startup)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker pool width (default: executor-dependent)")
    p_serve.add_argument("--executor", default="thread",
                         choices=["thread", "process"],
                         help="thread: shared pool (GIL-bound); process: "
                              "persistent worker processes for multi-core scaling")
    p_serve.add_argument("--M", type=int, default=64)
    p_serve.add_argument("--B", type=int, default=8)
    p_serve.add_argument("--omega", type=int, default=8)
    p_serve.add_argument("--constants", default=None, metavar="FILE",
                         help="calibrated-constants JSON (from `calibrate --save`)")
    p_serve.add_argument("--ticket-ttl", type=float, default=None, metavar="SECONDS",
                         help="evict finished result tickets this long after "
                              "completion (default: only on consumption)")
    p_serve.add_argument("--max-tickets", type=int, default=None, metavar="N",
                         help="cap the ticket registry, evicting the oldest "
                              "finished tickets beyond N")
    p_serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                         help="bound the pending job queue at N (default: "
                              "unbounded); overload follows --admission")
    p_serve.add_argument("--admission", default="reject",
                         choices=["reject", "block", "shed-lowest"],
                         help="bounded-queue overload policy: reject new "
                              "work, block the submitter, or shed the "
                              "lowest-priority pending job")
    p_serve.add_argument("--block-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="admission deadline for --admission block "
                              "(default: wait indefinitely)")
    p_serve.add_argument("--max-client-tickets", type=int, default=None,
                         metavar="N",
                         help="per-client live-ticket quota (default: "
                              "unlimited); excess submits get 'quota "
                              "exceeded' with a retry_after hint")
    p_serve.set_defaults(fn=_cmd_serve)

    p_cluster = sub.add_parser(
        "cluster",
        help="spawn a local server fleet and run scatter-gather + routed jobs",
    )
    p_cluster.add_argument("--servers", type=int, default=3,
                           help="local serve subprocesses to spawn")
    p_cluster.add_argument("--n", type=int, default=100_000,
                           help="records in the scatter-gathered job")
    p_cluster.add_argument("--jobs", type=int, default=20,
                           help="small jobs routed to least-loaded hosts")
    p_cluster.add_argument("--small-n", type=int, default=2_000,
                           help="max records per routed small job")
    p_cluster.add_argument("--workers", type=int, default=None,
                           help="worker pool width per server")
    p_cluster.add_argument("--executor", default="thread",
                           choices=["thread", "process"],
                           help="per-server pool executor")
    p_cluster.add_argument("--retries", type=int, default=2,
                           help="resubmissions allowed per job on host death")
    p_cluster.add_argument("--M", type=int, default=64)
    p_cluster.add_argument("--B", type=int, default=8)
    p_cluster.add_argument("--omega", type=int, default=8)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument("--check", action="store_true",
                           help="verify outputs and parity with single-engine "
                                "sort_auto")
    p_cluster.set_defaults(fn=_cmd_cluster)

    p_cert = sub.add_parser(
        "certify",
        help="certify measured kernel costs against their theorem envelopes",
    )
    p_cert.add_argument("--quick", action="store_true",
                        help="reduced machine/size grid for CI smoke runs")
    p_cert.add_argument("--kernels", default=None, metavar="K1,K2,...",
                        help="comma-separated kernel names (default: every "
                             "contracted kernel)")
    p_cert.add_argument("--sizes", default=None, metavar="N1,N2,...",
                        help="comma-separated input sizes (default: contract grid)")
    p_cert.add_argument("--machines", default=None, metavar="M:B:w,...",
                        help="comma-separated machine specs, M:B:omega each "
                             "(default: contract grid)")
    p_cert.add_argument("--seed", type=int, default=1)
    p_cert.add_argument("--out", default=os.path.join("benchmarks", "results"),
                        metavar="DIR",
                        help="directory for CERT_*.json artifacts "
                             "(default: benchmarks/results)")
    p_cert.add_argument("--no-iosan", action="store_true",
                        help="skip the uncharged-I/O sanitizer during runs")
    p_cert.add_argument("--format", choices=["text", "json"], default="text")
    p_cert.set_defaults(fn=_cmd_certify)

    p_chaos = sub.add_parser(
        "chaos",
        help="run deterministic fault-injection drills against real "
             "services and fleets",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-plan seed (fixed seed = identical drill)")
    p_chaos.add_argument("--drills", default="", metavar="D1,D2,...",
                         help="comma-separated drill names (default: all); "
                              "see repro.testing.chaos.DRILLS")
    p_chaos.add_argument("--twice", action="store_true",
                         help="run each drill twice and verify the replay "
                              "reproduces the same counts")
    p_chaos.set_defaults(fn=_cmd_chaos)

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's cost-accounting / lock-discipline linter",
    )
    p_lint.add_argument("paths", nargs="*", default=["src", "benchmarks"],
                        help="files or directories (default: src benchmarks)")
    p_lint.add_argument("--format", choices=["text", "json"], default="text")
    p_lint.add_argument("--rule", action="append", dest="rules", metavar="NAME",
                        help="run only the named rule (repeatable)")
    p_lint.add_argument("--baseline", default=None, metavar="FILE",
                        help="JSON baseline of grandfathered findings")
    p_lint.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write current findings to FILE and exit 0")
    p_lint.add_argument("--root", default=".",
                        help="repo root for scoped rule paths")
    p_lint.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint stale files across N worker processes")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="disable the mtime-keyed findings cache")
    p_lint.add_argument("--cache-file", default=None, metavar="FILE",
                        help="cache location (default: <root>/.reprolint_cache.json)")
    p_lint.add_argument("--explain", default=None, metavar="RULE",
                        help="print the named rule's contract and exit")
    p_lint.add_argument("--dump-graphs", default=None, metavar="DIR",
                        help="serialize the call graph and static lock-order "
                             "graph under DIR and exit")
    p_lint.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
