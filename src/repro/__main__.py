"""Command-line interface: ``python -m repro``.

Subcommands
-----------
``experiments [--quick] [ID ...]``
    Regenerate the paper's experiment tables (default: all of E1-E17).
``sort --algorithm ALG --n N [--k K] [--M M] [--B B] [--omega W]``
    Sort a random permutation and print the cost report.
``tune --n N [--M M] [--B B] [--omega W]``
    Print the Appendix-A k sweep for a machine.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis.ktuning import sweep_k
from .analysis.tables import format_table
from .api import sort_external
from .experiments import ALL_EXPERIMENTS
from .models.params import MachineParams
from .workloads import random_permutation


def _cmd_experiments(args: argparse.Namespace) -> int:
    wanted = [w.upper() for w in args.ids] or list(ALL_EXPERIMENTS)
    unknown = [w for w in wanted if w not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {unknown}; choose from {list(ALL_EXPERIMENTS)}")
        return 2
    for name in wanted:
        mod = ALL_EXPERIMENTS[name]
        t0 = time.time()
        rows = mod.run(quick=args.quick)
        print(format_table(rows, title=getattr(mod, "TITLE", name)))
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    return 0


def _cmd_sort(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    data = random_permutation(args.n, seed=args.seed)
    rep = sort_external(data, params, algorithm=args.algorithm, k=args.k)
    assert rep.is_sorted()
    print(
        format_table(
            [
                {
                    "algorithm": rep.algorithm,
                    "n": rep.n,
                    "block reads": rep.reads,
                    "block writes": rep.writes,
                    "cost R+wW": rep.cost(),
                    "mem high water": rep.memory_high_water,
                }
            ],
            title=f"sort on {params}",
        )
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    params = MachineParams(M=args.M, B=args.B, omega=args.omega)
    rows = sweep_k(args.n, params, k_max=args.k_max)
    print(format_table(rows, title=f"Appendix-A k sweep for n={args.n} on {params}"))
    best = min(rows, key=lambda r: r["predicted_cost"])
    print(f"\npredicted-best k = {best['k']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sorting with Asymmetric Read and Write Costs (SPAA 2015) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="regenerate experiment tables")
    p_exp.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    p_exp.add_argument("--quick", action="store_true", help="reduced grids")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_sort = sub.add_parser("sort", help="run one instrumented sort")
    p_sort.add_argument("--algorithm", default="mergesort",
                        choices=["mergesort", "samplesort", "heapsort", "selection"])
    p_sort.add_argument("--n", type=int, default=10_000)
    p_sort.add_argument("--k", type=int, default=None)
    p_sort.add_argument("--M", type=int, default=64)
    p_sort.add_argument("--B", type=int, default=8)
    p_sort.add_argument("--omega", type=int, default=8)
    p_sort.add_argument("--seed", type=int, default=0)
    p_sort.set_defaults(fn=_cmd_sort)

    p_tune = sub.add_parser("tune", help="Appendix-A k sweep")
    p_tune.add_argument("--n", type=int, default=100_000)
    p_tune.add_argument("--M", type=int, default=64)
    p_tune.add_argument("--B", type=int, default=8)
    p_tune.add_argument("--omega", type=int, default=8)
    p_tune.add_argument("--k-max", type=int, default=None)
    p_tune.set_defaults(fn=_cmd_tune)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
