"""High-level façade: one call to sort under a chosen model + algorithm,
returning both the output and a cost report.

This is the entry point a downstream user starts from (see README and
``examples/quickstart.py``); the individual algorithm modules remain available
for fine-grained control.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from .core.aem_heapsort import aem_heapsort
from .core.aem_mergesort import aem_mergesort
from .core.aem_samplesort import aem_samplesort
from .core.ram_sort import RAM_SORTS
from .core.selection_sort import selection_sort
from .models.counters import CostCounter
from .models.external_memory import AEMachine, MemoryGuard
from .models.params import MachineParams


@dataclass
class SortReport:
    """Outcome of one instrumented sort."""

    algorithm: str
    n: int
    params: MachineParams | None
    output: list
    counter: CostCounter
    #: primary-memory high-water mark in records (external sorts only)
    memory_high_water: int = 0
    extras: dict = field(default_factory=dict)
    #: canonical algorithm family — one of the planner's buckets
    #: (``"mergesort"``, ``"samplesort"``, ``"heapsort"``, ``"selection"``,
    #: ``"ram"``) regardless of the k-annotated display label, so batch
    #: aggregation groups by *algorithm*, not by ``(algorithm, k)``.  Falls
    #: back to the display label when not set explicitly.
    family: str = ""
    #: which counter granularity this report's model charges: ``"block"``
    #: (AEM/external sorts) or ``"element"`` (RAM sorts).  Explicit so that a
    #: legitimate zero (e.g. an external sort of an empty input performs zero
    #: block reads) is reported as 0 rather than silently falling back to the
    #: other granularity's tally.
    granularity: str = "block"

    def __post_init__(self) -> None:
        if not self.family:
            self.family = self.algorithm

    @property
    def reads(self) -> int:
        """Block reads (external models) or element reads (RAM model)."""
        if self.granularity == "element":
            return self.counter.element_reads
        return self.counter.block_reads

    @property
    def writes(self) -> int:
        """Block writes (external models) or element writes (RAM model)."""
        if self.granularity == "element":
            return self.counter.element_writes
        return self.counter.block_writes

    def cost(self, omega: int | None = None) -> float:
        """Asymmetric I/O cost ``reads + omega * writes`` at this report's
        granularity (consistent with :attr:`reads` / :attr:`writes`, including
        the zero-transfer case)."""
        if omega is None:
            if self.params is None:
                raise ValueError("omega required when no machine params are attached")
            omega = self.params.omega
        return self.reads + omega * self.writes

    def is_sorted(self) -> bool:
        return all(
            self.output[i] <= self.output[i + 1] for i in range(len(self.output) - 1)
        )


_EXTERNAL_SORTS = {
    "mergesort": aem_mergesort,
    "samplesort": aem_samplesort,
    "heapsort": aem_heapsort,
    "selection": None,  # handled specially (no k argument)
}


def sort_external(
    data: Sequence,
    params: MachineParams,
    algorithm: str = "mergesort",
    k: int | None = None,
) -> SortReport:
    """Sort ``data`` on a fresh AEM machine.

    Parameters
    ----------
    algorithm:
        ``"mergesort"`` (Algorithm 2), ``"samplesort"`` (§4.2), ``"heapsort"``
        (§4.3 buffer-tree priority queue), or ``"selection"`` (Lemma 4.2).
    k:
        Extra branching factor (ignored by ``"selection"``, which has none).
        Defaults to the Appendix-A recipe
        :func:`repro.analysis.ktuning.choose_k` evaluated at ``n = len(data)``
        (``k = 1`` is the classic algorithm).

    Returns a :class:`SortReport` with block-level counts.
    """
    if algorithm not in _EXTERNAL_SORTS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_EXTERNAL_SORTS)}"
        )
    machine = AEMachine(params)
    arr = machine.from_list(data, name="input")
    guard = MemoryGuard()
    if algorithm == "selection":
        # selection (Lemma 4.2) has no branching factor: no k in the label,
        # no k in extras — one batch-aggregation bucket, not one per k
        out = selection_sort(machine, arr, guard=guard)
        label, extras = "aem-selection", {}
    else:
        if k is None:
            from .analysis.ktuning import choose_k

            k = choose_k(params, n=len(data))
        out = _EXTERNAL_SORTS[algorithm](machine, arr, k, guard=guard)
        label, extras = f"aem-{algorithm}(k={k})", {"k": k}
    return SortReport(
        algorithm=label,
        n=len(data),
        params=params,
        output=out.peek_list(),
        counter=machine.counter,
        memory_high_water=guard.high_water,
        extras=extras,
        family=algorithm,
        granularity="block",
    )


def sort_ram(data: Sequence, algorithm: str = "bst-rb") -> SortReport:
    """Sort ``data`` in the Asymmetric RAM model (§3).

    ``algorithm`` is one of :data:`repro.core.ram_sort.RAM_SORTS`
    (``bst-rb``, ``bst-treap``, ``bst-avl``, ``quicksort``, ``mergesort``,
    ``heapsort``).
    """
    if algorithm not in RAM_SORTS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(RAM_SORTS)}"
        )
    out, counter = RAM_SORTS[algorithm](data)
    return SortReport(
        algorithm=f"ram-{algorithm}",
        n=len(data),
        params=None,
        output=out,
        counter=counter,
        family="ram",
        granularity="element",
    )


def sort_auto(
    data: Sequence,
    params: MachineParams,
    algorithms: tuple[str, ...] | None = None,
    constants=None,
    cache=None,
) -> SortReport:
    """Sort ``data`` with the cost-model-chosen best algorithm.

    Builds a ranked :class:`~repro.planner.cost_model.SortPlan` from the
    paper's exact predicted bounds (Theorems 4.3/4.5/4.10, Lemma 4.2, and the
    in-memory case when ``n <= M``) and executes the winner: external
    algorithms run through :func:`sort_external` with the plan's branching
    factor ``k``; the ``ram`` plan runs the §3 BST sort via :func:`sort_ram`.

    The returned report carries the full plan in ``extras["plan"]`` (chosen
    candidate plus the ranked alternatives) so callers can audit the routing
    decision.  ``algorithms`` optionally restricts the candidate field;
    ``constants`` (a :class:`~repro.planner.calibration.CostConstants`)
    replaces the unit leading constants with calibrated ones; ``cache`` (a
    :class:`~repro.planner.plan_cache.PlanCache`) memoises the ranking across
    calls.
    """
    from .planner.cost_model import plan_sort

    if cache is not None:
        plan = cache.plan(len(data), params, algorithms=algorithms, constants=constants)
    else:
        plan = plan_sort(len(data), params, algorithms=algorithms, constants=constants)
    chosen = plan.chosen
    if chosen.model == "ram":
        report = ram_report_on_machine(data, params)
    else:
        report = sort_external(data, params, algorithm=chosen.algorithm, k=chosen.k)
    report.extras["plan"] = plan.as_dict()
    return report


def ram_report_on_machine(data: Sequence, params: MachineParams) -> SortReport:
    """Run the §3 BST sort on an input that fits in primary memory, reported
    at the AEM machine's *block* granularity.

    The AEM cost of the in-memory plan is its transfer cost — one scan in
    (``ceil(n/B)`` block reads), sort for free in primary memory, one stream
    out (``ceil(n/B)`` block writes) — so the report is commensurable with
    external-sort reports and with the planner's predictions (the in-memory
    element tallies stay visible on ``report.counter``).

    Raises ``ValueError`` when ``n > M`` — the input would not fit in primary
    memory, exactly as :func:`repro.planner.cost_model.predict_candidate`
    rejects the ``ram`` plan for such an ``n``.
    """
    if len(data) > params.M:
        raise ValueError(
            f"ram sort requires n <= M, got n={len(data)} > M={params.M}"
        )
    report = sort_ram(data, algorithm="bst-rb")
    report.params = params
    blocks = math.ceil(len(data) / params.B)
    report.counter.charge_block_read(blocks)
    report.counter.charge_block_write(blocks)
    report.granularity = "block"
    return report
