"""High-level façade: one call to sort under a chosen model + algorithm,
returning both the output and a cost report.

Since the :class:`~repro.engine.SortEngine` redesign, the canonical entry
point is an engine instance — ``SortEngine(params).sort(...)`` /
``.batch(...)`` / ``.calibrate()`` / ``.stream()`` — which owns the machine,
the shared plan cache and the calibrated constants once.  The module-level
calls below are kept as thin backward-compatible shims over a throwaway
engine (identical reports, no shared state between calls); the individual
algorithm modules remain available for fine-grained control.  For
asynchronous submission (futures, priorities, the persistent job server),
see :mod:`repro.service`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from .models.counters import CostCounter
from .models.params import MachineParams


@dataclass
class SortReport:
    """Outcome of one instrumented sort."""

    algorithm: str
    n: int
    params: MachineParams | None
    output: list
    counter: CostCounter
    #: primary-memory high-water mark in records (external sorts only)
    memory_high_water: int = 0
    extras: dict = field(default_factory=dict)
    #: canonical algorithm family — one of the planner's buckets
    #: (``"mergesort"``, ``"samplesort"``, ``"heapsort"``, ``"selection"``,
    #: ``"ram"``, ``"stream"``) regardless of the k-annotated display label,
    #: so batch aggregation groups by *algorithm*, not by ``(algorithm, k)``.
    #: Falls back to the display label when not set explicitly.
    family: str = ""
    #: which counter granularity this report's model charges: ``"block"``
    #: (AEM/external sorts) or ``"element"`` (RAM sorts).  Explicit so that a
    #: legitimate zero (e.g. an external sort of an empty input performs zero
    #: block reads) is reported as 0 rather than silently falling back to the
    #: other granularity's tally.
    granularity: str = "block"

    def __post_init__(self) -> None:
        if not self.family:
            self.family = self.algorithm

    @property
    def reads(self) -> int:
        """Block reads (external models) or element reads (RAM model)."""
        if self.granularity == "element":
            return self.counter.element_reads
        return self.counter.block_reads

    @property
    def writes(self) -> int:
        """Block writes (external models) or element writes (RAM model)."""
        if self.granularity == "element":
            return self.counter.element_writes
        return self.counter.block_writes

    def cost(self, omega: int | None = None) -> float:
        """Asymmetric I/O cost ``reads + omega * writes`` at this report's
        granularity (consistent with :attr:`reads` / :attr:`writes`, including
        the zero-transfer case)."""
        if omega is None:
            if self.params is None:
                raise ValueError("omega required when no machine params are attached")
            omega = self.params.omega
        return self.reads + omega * self.writes

    def is_sorted(self) -> bool:
        return all(
            self.output[i] <= self.output[i + 1] for i in range(len(self.output) - 1)
        )


def sort_external(
    data: Sequence,
    params: MachineParams,
    algorithm: str = "mergesort",
    k: int | None = None,
) -> SortReport:
    """Sort ``data`` on a fresh AEM machine (shim over
    :meth:`~repro.engine.SortEngine.sort`).

    Parameters
    ----------
    algorithm:
        ``"mergesort"`` (Algorithm 2), ``"samplesort"`` (§4.2), ``"heapsort"``
        (§4.3 buffer-tree priority queue), or ``"selection"`` (Lemma 4.2) —
        the :data:`~repro.engine.EXTERNAL_SORTS` registry.
    k:
        Extra branching factor (ignored by ``"selection"``, which has none).
        Defaults to the Appendix-A recipe
        :func:`repro.analysis.ktuning.choose_k` evaluated at ``n = len(data)``
        (``k = 1`` is the classic algorithm).

    Returns a :class:`SortReport` with block-level counts.
    """
    from .engine import SortEngine

    return SortEngine(params).sort(data, algorithm=algorithm, k=k)


def sort_ram(data: Sequence, algorithm: str = "bst-rb") -> SortReport:
    """Sort ``data`` in the Asymmetric RAM model (§3); shim over
    :func:`repro.engine.ram_sort_report`.

    ``algorithm`` is one of :data:`repro.core.ram_sort.RAM_SORTS`
    (``bst-rb``, ``bst-treap``, ``bst-avl``, ``quicksort``, ``mergesort``,
    ``heapsort``).
    """
    from .engine import ram_sort_report

    return ram_sort_report(data, algorithm=algorithm)


def sort_auto(
    data: Sequence,
    params: MachineParams,
    algorithms: tuple[str, ...] | None = None,
    constants=None,
    cache=None,
    ram_algorithm: str = "bst-rb",
) -> SortReport:
    """Sort ``data`` with the cost-model-chosen best algorithm (shim over
    :meth:`~repro.engine.SortEngine.sort` with ``algorithm="auto"``).

    Builds a ranked :class:`~repro.planner.cost_model.SortPlan` from the
    paper's exact predicted bounds (Theorems 4.3/4.5/4.10, Lemma 4.2, and the
    in-memory case when ``n <= M``) and executes the winner: external
    algorithms run at the plan's branching factor ``k``; the ``ram`` plan
    runs in primary memory (``ram_algorithm`` picks the
    :data:`~repro.core.ram_sort.RAM_SORTS` entry, default the §3 BST sort).

    The returned report carries the full plan in ``extras["plan"]`` (chosen
    candidate plus the ranked alternatives) so callers can audit the routing
    decision.  ``algorithms`` optionally restricts the candidate field;
    ``constants`` (a :class:`~repro.planner.calibration.CostConstants`)
    replaces the unit leading constants with calibrated ones; ``cache`` (a
    :class:`~repro.planner.plan_cache.PlanCache`) memoises the ranking across
    calls.
    """
    from .engine import SortEngine

    engine = SortEngine(params, constants=constants, cache=cache)
    return engine.sort(
        data, algorithm="auto", algorithms=algorithms, ram_algorithm=ram_algorithm
    )


def ram_report_on_machine(
    data: Sequence, params: MachineParams, algorithm: str = "bst-rb"
) -> SortReport:
    """Run an in-memory sort on an input that fits in primary memory,
    reported at the AEM machine's *block* granularity (shim over
    :func:`repro.engine.ram_on_machine_report`).

    The AEM cost of the in-memory plan is its transfer cost — one scan in
    (``ceil(n/B)`` block reads), sort for free in primary memory, one stream
    out (``ceil(n/B)`` block writes) — so the report is commensurable with
    external-sort reports and with the planner's predictions (the in-memory
    element tallies stay visible on ``report.counter``).  ``algorithm``
    selects any :data:`~repro.core.ram_sort.RAM_SORTS` entry (default the
    §3 BST sort).

    Raises ``ValueError`` when ``n > M`` — the input would not fit in primary
    memory, exactly as :func:`repro.planner.cost_model.predict_candidate`
    rejects the ``ram`` plan for such an ``n``.
    """
    from .engine import ram_on_machine_report

    return ram_on_machine_report(data, params, algorithm=algorithm)
