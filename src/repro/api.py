"""High-level façade: one call to sort under a chosen model + algorithm,
returning both the output and a cost report.

This is the entry point a downstream user starts from (see README and
``examples/quickstart.py``); the individual algorithm modules remain available
for fine-grained control.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from .core.aem_heapsort import aem_heapsort
from .core.aem_mergesort import aem_mergesort
from .core.aem_samplesort import aem_samplesort
from .core.ram_sort import RAM_SORTS
from .core.selection_sort import selection_sort
from .models.counters import CostCounter
from .models.external_memory import AEMachine, MemoryGuard
from .models.params import MachineParams


@dataclass
class SortReport:
    """Outcome of one instrumented sort."""

    algorithm: str
    n: int
    params: MachineParams | None
    output: list
    counter: CostCounter
    #: primary-memory high-water mark in records (external sorts only)
    memory_high_water: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def reads(self) -> int:
        """Block reads (external models) or element reads (RAM model)."""
        return self.counter.block_reads or self.counter.element_reads

    @property
    def writes(self) -> int:
        """Block writes (external models) or element writes (RAM model)."""
        return self.counter.block_writes or self.counter.element_writes

    def cost(self, omega: int | None = None) -> float:
        """Asymmetric I/O cost ``reads + omega * writes``."""
        if omega is None:
            if self.params is None:
                raise ValueError("omega required when no machine params are attached")
            omega = self.params.omega
        return self.reads + omega * self.writes

    def is_sorted(self) -> bool:
        return all(
            self.output[i] <= self.output[i + 1] for i in range(len(self.output) - 1)
        )


_EXTERNAL_SORTS = {
    "mergesort": aem_mergesort,
    "samplesort": aem_samplesort,
    "heapsort": aem_heapsort,
    "selection": None,  # handled specially (no k argument)
}


def sort_external(
    data: Sequence,
    params: MachineParams,
    algorithm: str = "mergesort",
    k: int | None = None,
) -> SortReport:
    """Sort ``data`` on a fresh AEM machine.

    Parameters
    ----------
    algorithm:
        ``"mergesort"`` (Algorithm 2), ``"samplesort"`` (§4.2), ``"heapsort"``
        (§4.3 buffer-tree priority queue), or ``"selection"`` (Lemma 4.2).
    k:
        Extra branching factor.  Defaults to the Appendix-A heuristic choice
        :func:`repro.analysis.ktuning.choose_k` (``k = 1`` is the classic
        algorithm).

    Returns a :class:`SortReport` with block-level counts.
    """
    if algorithm not in _EXTERNAL_SORTS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_EXTERNAL_SORTS)}"
        )
    if k is None:
        from .analysis.ktuning import choose_k

        k = choose_k(params)
    machine = AEMachine(params)
    arr = machine.from_list(data, name="input")
    guard = MemoryGuard()
    if algorithm == "selection":
        out = selection_sort(machine, arr, guard=guard)
    else:
        out = _EXTERNAL_SORTS[algorithm](machine, arr, k, guard=guard)
    return SortReport(
        algorithm=f"aem-{algorithm}(k={k})",
        n=len(data),
        params=params,
        output=out.peek_list(),
        counter=machine.counter,
        memory_high_water=guard.high_water,
        extras={"k": k},
    )


def sort_ram(data: Sequence, algorithm: str = "bst-rb") -> SortReport:
    """Sort ``data`` in the Asymmetric RAM model (§3).

    ``algorithm`` is one of :data:`repro.core.ram_sort.RAM_SORTS`
    (``bst-rb``, ``bst-treap``, ``bst-avl``, ``quicksort``, ``mergesort``,
    ``heapsort``).
    """
    if algorithm not in RAM_SORTS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(RAM_SORTS)}"
        )
    out, counter = RAM_SORTS[algorithm](data)
    return SortReport(
        algorithm=f"ram-{algorithm}",
        n=len(data),
        params=None,
        output=out,
        counter=counter,
    )
