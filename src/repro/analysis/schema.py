"""A minimal JSON-Schema-subset validator for the repo's machine-readable
artifacts (``BENCH_*.json`` benchmark records, ``CERT_*.json`` cost
certificates).

The container deliberately ships no third-party ``jsonschema``; the records
we emit only need a small, stable subset — ``type``, ``required``,
``properties``, ``additionalProperties``, ``items``, ``enum``, ``minimum``
— so this module implements exactly that subset and nothing more.  Schemas
using unsupported keywords fail loudly (:class:`SchemaError` at validation
time), never silently pass.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["SchemaError", "ValidationError", "validate"]

#: keywords this validator implements; anything else in a schema is an error
_SUPPORTED_KEYWORDS = {
    "type",
    "required",
    "properties",
    "additionalProperties",
    "items",
    "enum",
    "minimum",
    # annotation-only keywords, accepted and ignored
    "$schema",
    "title",
    "description",
}

_TYPES = {
    "object": Mapping,
    "array": (list, tuple),
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


class SchemaError(ValueError):
    """The schema itself is malformed or uses an unsupported keyword."""


class ValidationError(ValueError):
    """The instance does not conform to the schema.

    ``path`` is a ``$.dotted[3].path`` into the failing instance node.
    """

    def __init__(self, path: str, message: str):
        self.path = path
        super().__init__(f"{path}: {message}")


def _type_ok(value, type_name: str) -> bool:
    py = _TYPES.get(type_name)
    if py is None:
        raise SchemaError(f"unknown type {type_name!r}")
    if type_name in ("integer", "number") and isinstance(value, bool):
        return False  # bool is an int subclass; schemas mean arithmetic numbers
    return isinstance(value, py)


def validate(instance, schema: Mapping, path: str = "$") -> None:
    """Raise :class:`ValidationError` unless ``instance`` conforms."""
    if not isinstance(schema, Mapping):
        raise SchemaError(f"schema at {path} must be a mapping")
    unsupported = set(schema) - _SUPPORTED_KEYWORDS
    if unsupported:
        raise SchemaError(
            f"schema at {path} uses unsupported keyword(s) {sorted(unsupported)}"
        )

    expected = schema.get("type")
    if expected is not None:
        names = expected if isinstance(expected, list) else [expected]
        if not any(_type_ok(instance, name) for name in names):
            raise ValidationError(
                path, f"expected {' or '.join(names)}, got {type(instance).__name__}"
            )

    if "enum" in schema and instance not in schema["enum"]:
        raise ValidationError(path, f"{instance!r} not in enum {schema['enum']!r}")

    if "minimum" in schema:
        if not isinstance(instance, (int, float)) or isinstance(instance, bool):
            raise ValidationError(path, "minimum applies to numbers only")
        if instance < schema["minimum"]:
            raise ValidationError(path, f"{instance!r} < minimum {schema['minimum']!r}")

    if isinstance(instance, Mapping):
        for name in schema.get("required", ()):
            if name not in instance:
                raise ValidationError(path, f"missing required property {name!r}")
        props = schema.get("properties", {})
        for name, sub in props.items():
            if name in instance:
                validate(instance[name], sub, f"{path}.{name}")
        extra = schema.get("additionalProperties", True)
        if extra is False:
            unknown = sorted(set(instance) - set(props))
            if unknown:
                raise ValidationError(path, f"unexpected propert(ies) {unknown}")
        elif isinstance(extra, Mapping):
            for name in set(instance) - set(props):
                validate(instance[name], extra, f"{path}.{name}")

    if isinstance(instance, Sequence) and not isinstance(instance, (str, bytes)):
        items = schema.get("items")
        if isinstance(items, Mapping):
            for i, element in enumerate(instance):
                validate(element, items, f"{path}[{i}]")
