"""iosan — the uncharged-I/O runtime sanitizer.

Every claim the repo makes is a statement about
:class:`~repro.models.counters.CostCounter` tallies, so a code path that
touches physical blocks without charging the counter silently corrupts every
downstream number.  The ``uncharged-io`` lint rule catches *static* bypasses
(direct ``._blocks`` access outside the model); iosan closes the *dynamic*
side: with the sanitizer enabled, every transfer primitive of
:class:`~repro.models.external_memory.AEMachine` /
:class:`~repro.models.external_memory.BlockWriter` cross-checks the counter
delta it produced against the physical blocks it moved and raises
:class:`UnchargedIOError` on drift.

Checks installed by :func:`enable`
----------------------------------
* ``read_block`` / ``write_block`` must move the counter by exactly one
  block read / write per call.
* ``scan`` / ``scan_blocks`` must charge exactly one read per non-empty
  physical block (verified at the batch-charge point and at exhaustion;
  an early-abandoned scan legitimately charges less and is not checked).
* ``BlockWriter.append`` / ``extend`` / ``extend_blocks`` / ``close`` must
  charge exactly one write per block landed in the output array.
* ``from_list(charge=True)`` must charge one write per block materialised;
  ``charge=False`` (the free-input convention) must charge nothing.
* Every wrapped operation first audits the array it touches:
  ``arr.length`` must equal the sum of its physical block lengths.  An
  out-of-band mutation (a direct ``._blocks.append``, a record pushed into
  a live block) breaks that equation and is reported on the next access.
* ``read_block(copy=False)`` returns a :class:`SealedBlock` — a
  mutation-trapping view of the resident block — so a caller that mutates
  secondary memory through the read-only fast path raises instead of
  corrupting blocks behind the counter's back.  ``scan_blocks`` seals the
  blocks it yields the same way.
* The single-charge counter methods (``charge_block_read`` /
  ``charge_block_write``), branch-free on the hot path, are replaced with
  validating versions so a negative count raises like the batch API does
  (see the "validation asymmetry" note in :mod:`repro.models.counters`).

Activation
----------
``REPRO_IOSAN=1`` in the environment enables the sanitizer at ``import
repro`` (the environment propagates into worker processes, so process-pool
runs stay sanitized); tests can use the ``--iosan`` pytest flag or the
:func:`iosan` context manager.  The wrappers cost O(blocks) per operation —
run it in CI and debugging sessions, not in benchmarks.
"""

from __future__ import annotations

import contextlib

from ..models.counters import CostCounter
from ..models.external_memory import AEMachine, BlockWriter


class UnchargedIOError(RuntimeError):
    """Physical block state moved without a matching CostCounter charge."""


class SealedBlock(list):
    """A mutation-trapping view of a resident (uncopied) block.

    Reads like the list it shadows — indexing, slicing (plain lists come
    back), iteration, ``len`` — but every mutator raises
    :class:`UnchargedIOError`: the underlying block lives in secondary
    memory, and mutating it through a read-only transfer would be an
    uncharged block write.
    """

    def _trap(self, *args, **kwargs):
        raise UnchargedIOError(
            "mutation of a sealed block: this block was transferred "
            "read-only (read_block(copy=False) / scan_blocks); writing it "
            "back requires a charged write_block"
        )

    __setitem__ = _trap
    __delitem__ = _trap
    __iadd__ = _trap
    __imul__ = _trap
    append = _trap
    extend = _trap
    insert = _trap
    pop = _trap
    remove = _trap
    clear = _trap
    sort = _trap
    reverse = _trap


_PATCH_TARGETS = (
    (AEMachine, "read_block"),
    (AEMachine, "write_block"),
    (AEMachine, "scan"),
    (AEMachine, "scan_blocks"),
    (AEMachine, "from_list"),
    (BlockWriter, "append"),
    (BlockWriter, "extend"),
    (BlockWriter, "extend_blocks"),
    (BlockWriter, "close"),
    (CostCounter, "charge_block_read"),
    (CostCounter, "charge_block_write"),
)

_originals: dict[tuple[type, str], object] = {}


def iosan_enabled() -> bool:
    """Whether the sanitizer wrappers are currently installed."""
    return bool(_originals)


def _audit(arr) -> None:
    """Bookkeeping consistency check: length must match physical contents.

    Free structural operations keep this equation; any out-of-band block
    mutation (the bug class iosan exists to catch) breaks it.
    """
    physical = sum(len(blk) for blk in arr._blocks)
    if physical != arr.length:
        raise UnchargedIOError(
            f"uncharged I/O drift on array {arr.name!r}: {physical} records "
            f"physically present but length bookkeeping says {arr.length} — "
            "a block was mutated outside the machine's charged transfers"
        )


def _drift(what: str, expected: int, got: int, kind: str) -> UnchargedIOError:
    return UnchargedIOError(
        f"uncharged I/O drift in {what}: expected {expected} block "
        f"{kind}(s) charged, counter moved by {got}"
    )


def enable() -> None:
    """Install the sanitizer wrappers (idempotent)."""
    if _originals:
        return
    for cls, name in _PATCH_TARGETS:
        _originals[(cls, name)] = getattr(cls, name)

    orig_read_block = _originals[(AEMachine, "read_block")]
    orig_write_block = _originals[(AEMachine, "write_block")]
    orig_scan = _originals[(AEMachine, "scan")]
    orig_scan_blocks = _originals[(AEMachine, "scan_blocks")]
    orig_from_list = _originals[(AEMachine, "from_list")]

    def read_block(self, arr, bi, *, copy=True):
        _audit(arr)
        before = self.counter.block_reads
        blk = orig_read_block(self, arr, bi, copy=copy)
        got = self.counter.block_reads - before
        if got != 1:
            raise _drift("read_block", 1, got, "read")
        return blk if copy else SealedBlock(blk)

    def write_block(self, arr, bi, values):
        _audit(arr)
        before = self.counter.block_writes
        orig_write_block(self, arr, bi, values)
        got = self.counter.block_writes - before
        if got != 1:
            raise _drift("write_block", 1, got, "write")
        _audit(arr)

    def scan(self, arr):
        # deltas are measured across each step INTO the underlying
        # generator only — consumer code runs between yields and may
        # legitimately do charged I/O of its own (e.g. two interleaved
        # streams), which must not be attributed to this scan
        _audit(arr)
        expected = sum(1 for blk in arr._blocks if blk)
        gen = orig_scan(self, arr)
        charged = 0
        while True:
            before = self.counter.block_reads
            try:
                rec = next(gen)
            except StopIteration:
                if charged != expected:
                    raise _drift("scan", expected, charged, "read")
                return
            step = self.counter.block_reads - before
            if step not in (0, 1):
                raise _drift("scan (per step)", 1, step, "read")
            charged += step
            yield rec

    def scan_blocks(self, arr):
        _audit(arr)
        expected = sum(1 for blk in arr._blocks if blk)
        gen = orig_scan_blocks(self, arr)
        first = True
        while True:
            before = self.counter.block_reads
            try:
                blk = next(gen)
            except StopIteration:
                return
            step = self.counter.block_reads - before
            # the whole scan is batch-charged up front, on the first step
            want = expected if first else 0
            if step != want:
                raise _drift("scan_blocks", want, step, "read")
            first = False
            yield SealedBlock(blk)

    def from_list(self, data, name="", *, charge=False):
        before = self.counter.block_writes
        arr = orig_from_list(self, data, name, charge=charge)
        got = self.counter.block_writes - before
        expected = arr.num_blocks if charge else 0
        if got != expected:
            raise _drift("from_list", expected, got, "write")
        _audit(arr)
        return arr

    def _checked_writer_op(name):
        orig = _originals[(BlockWriter, name)]

        def op(self, *args, **kwargs):
            _audit_writer(self)
            before_writes = self.machine.counter.block_writes
            before_blocks = self.arr.num_blocks
            result = orig(self, *args, **kwargs)
            landed = self.arr.num_blocks - before_blocks
            got = self.machine.counter.block_writes - before_writes
            if got != landed:
                raise _drift(f"BlockWriter.{name}", landed, got, "write")
            _audit_writer(self)
            return result

        op.__name__ = name
        return op

    def _audit_writer(writer) -> None:
        # the writer's partial buffer lives in primary memory; the landed
        # blocks must obey the array equation
        _audit(writer.arr)

    def charge_block_read(self, n=1):
        if n < 0:
            raise UnchargedIOError(
                f"cannot charge {n} block reads (iosan: negative single "
                "charge — the batch charge_reads API rejects this too)"
            )
        self.block_reads += n

    def charge_block_write(self, n=1):
        if n < 0:
            raise UnchargedIOError(
                f"cannot charge {n} block writes (iosan: negative single "
                "charge — the batch charge_writes API rejects this too)"
            )
        self.block_writes += n

    AEMachine.read_block = read_block
    AEMachine.write_block = write_block
    AEMachine.scan = scan
    AEMachine.scan_blocks = scan_blocks
    AEMachine.from_list = from_list
    for name in ("append", "extend", "extend_blocks", "close"):
        setattr(BlockWriter, name, _checked_writer_op(name))
    CostCounter.charge_block_read = charge_block_read
    CostCounter.charge_block_write = charge_block_write


def disable() -> None:
    """Remove the wrappers and restore the unchecked hot path (idempotent)."""
    if not _originals:
        return
    for (cls, name), fn in _originals.items():
        setattr(cls, name, fn)
    _originals.clear()


@contextlib.contextmanager
def iosan():
    """Run a block with the sanitizer enabled (restores the prior state)."""
    was_enabled = iosan_enabled()
    enable()
    try:
        yield
    finally:
        if not was_enabled:
            disable()
