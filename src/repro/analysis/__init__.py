"""Closed-form theorem bounds, Appendix-A k-tuning, table rendering — and
the repo's self-checking layer: the :mod:`~repro.analysis.reprolint` static
linter plus the :mod:`~repro.analysis.iosan` (uncharged-I/O) and
:mod:`~repro.analysis.locksan` (lock-order) runtime sanitizers.

Import discipline: this package must stay importable from anywhere in the
tree (the service and planner layers pull :func:`wrap_lock` /
:func:`wrap_condition` at import time), so it may depend on
:mod:`repro.models` but never on :mod:`repro.core`, ``planner``, ``service``
or ``engine``.
"""

from . import iosan, locksan
from .formulas import (
    co_sort_reads,
    co_sort_writes,
    em_sort_transfers,
    matmul_co_reads,
    matmul_co_writes,
    mergesort_reads,
    mergesort_writes,
    pram_sort_depth,
    pram_sort_reads,
    pram_sort_writes,
)
from .ktuning import choose_k, feasible_k_region, k_improves, sweep_k
from .recurrences import (
    co_sort_read_recurrence,
    co_sort_write_recurrence,
    fft_write_recurrence,
    matmul_write_recurrence,
    matmul_write_recurrence_randomized,
)
from .iosan import SealedBlock, UnchargedIOError, iosan_enabled
from .locksan import (
    LockOrderError,
    locksan_enabled,
    wrap_condition,
    wrap_lock,
)
from .tables import format_table

__all__ = [
    "LockOrderError",
    "SealedBlock",
    "UnchargedIOError",
    "choose_k",
    "co_sort_read_recurrence",
    "co_sort_reads",
    "co_sort_write_recurrence",
    "co_sort_writes",
    "em_sort_transfers",
    "feasible_k_region",
    "fft_write_recurrence",
    "format_table",
    "iosan",
    "iosan_enabled",
    "k_improves",
    "locksan",
    "locksan_enabled",
    "matmul_co_reads",
    "matmul_co_writes",
    "matmul_write_recurrence",
    "matmul_write_recurrence_randomized",
    "mergesort_reads",
    "mergesort_writes",
    "pram_sort_depth",
    "pram_sort_reads",
    "pram_sort_writes",
    "sweep_k",
    "wrap_condition",
    "wrap_lock",
]
