"""Closed-form theorem bounds, Appendix-A k-tuning, table rendering — and
the repo's self-checking layer: the :mod:`~repro.analysis.reprolint` static
linter, the :mod:`~repro.analysis.iosan` (uncharged-I/O) and
:mod:`~repro.analysis.locksan` (lock-order) runtime sanitizers, and the
:mod:`~repro.analysis.boundcheck` paper-bound certifier (static cost
contracts + theorem-envelope certification).

Import discipline: this package must stay importable from anywhere in the
tree (the service and planner layers pull :func:`wrap_lock` /
:func:`wrap_condition` at import time), so it may depend on
:mod:`repro.models` but never on :mod:`repro.core`, ``planner``, ``service``
or ``engine`` — :mod:`~repro.analysis.boundcheck` reaches those layers only
lazily, inside its runner and registry functions.
"""

from . import boundcheck, formulas, iosan, locksan, recurrences, schema
from .boundcheck import (
    CONTRACTS,
    CertifyResult,
    CostContract,
    certify,
    certify_kernel,
    charge_site_map,
    declare_contract,
    registry_errors,
    write_certificates,
)
from .formulas import (
    co_sort_reads,
    co_sort_writes,
    em2way_transfers,
    em_sort_transfers,
    matmul_co_reads,
    matmul_co_writes,
    mergesort_reads,
    mergesort_writes,
    pq_sort_reads,
    pq_sort_writes,
    pram_sort_depth,
    pram_sort_reads,
    pram_sort_writes,
    selection_sort_reads,
    selection_sort_writes,
)
from .ktuning import choose_k, feasible_k_region, k_improves, sweep_k
from .recurrences import (
    co_sort_read_recurrence,
    co_sort_write_recurrence,
    fft_write_recurrence,
    matmul_write_recurrence,
    matmul_write_recurrence_randomized,
)
from .iosan import SealedBlock, UnchargedIOError, iosan_enabled
from .locksan import (
    LockOrderError,
    locksan_enabled,
    wrap_condition,
    wrap_lock,
)
from .tables import format_table

__all__ = [
    "CONTRACTS",
    "CertifyResult",
    "CostContract",
    "LockOrderError",
    "SealedBlock",
    "UnchargedIOError",
    "boundcheck",
    "certify",
    "certify_kernel",
    "charge_site_map",
    "choose_k",
    "co_sort_read_recurrence",
    "co_sort_reads",
    "co_sort_write_recurrence",
    "co_sort_writes",
    "declare_contract",
    "em2way_transfers",
    "em_sort_transfers",
    "feasible_k_region",
    "fft_write_recurrence",
    "format_table",
    "formulas",
    "iosan",
    "iosan_enabled",
    "k_improves",
    "locksan",
    "locksan_enabled",
    "matmul_co_reads",
    "matmul_co_writes",
    "matmul_write_recurrence",
    "matmul_write_recurrence_randomized",
    "mergesort_reads",
    "mergesort_writes",
    "pq_sort_reads",
    "pq_sort_writes",
    "pram_sort_depth",
    "pram_sort_reads",
    "pram_sort_writes",
    "recurrences",
    "registry_errors",
    "schema",
    "selection_sort_reads",
    "selection_sort_writes",
    "sweep_k",
    "wrap_condition",
    "wrap_lock",
]
