"""Closed-form theorem bounds, Appendix-A k-tuning, and table rendering."""

from .formulas import (
    co_sort_reads,
    co_sort_writes,
    em_sort_transfers,
    matmul_co_reads,
    matmul_co_writes,
    mergesort_reads,
    mergesort_writes,
    pram_sort_depth,
    pram_sort_reads,
    pram_sort_writes,
)
from .ktuning import choose_k, feasible_k_region, k_improves, sweep_k
from .recurrences import (
    co_sort_read_recurrence,
    co_sort_write_recurrence,
    fft_write_recurrence,
    matmul_write_recurrence,
    matmul_write_recurrence_randomized,
)
from .tables import format_table

__all__ = [
    "choose_k",
    "co_sort_read_recurrence",
    "co_sort_reads",
    "co_sort_write_recurrence",
    "co_sort_writes",
    "em_sort_transfers",
    "feasible_k_region",
    "fft_write_recurrence",
    "format_table",
    "k_improves",
    "matmul_co_reads",
    "matmul_co_writes",
    "matmul_write_recurrence",
    "matmul_write_recurrence_randomized",
    "mergesort_reads",
    "mergesort_writes",
    "pram_sort_depth",
    "pram_sort_reads",
    "pram_sort_writes",
    "sweep_k",
]
