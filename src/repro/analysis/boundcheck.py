"""Paper-bound certification: cost contracts binding every registered
kernel to its closed-form theorem envelope, a certifier runtime that
measures each kernel under the I/O sanitizer and checks the envelope, and
a static charge-site map tying every ``charge_*`` call in the core tree
back to a contracted entry point.

Three layers
------------
**Contracts** (:data:`CONTRACTS`): one :class:`CostContract` per kernel in
:data:`repro.core.kernels.KERNEL_ENTRIES`, declared with
:func:`declare_contract`.  A contract names the paper statement it tracks
(``theorem``), the closed-form reads/writes bounds from
:mod:`repro.analysis.formulas`, and a runner that executes the kernel on a
seeded permutation and returns the measured block-transfer tallies.
Contracts are declared with *literal* kernel names and theorem labels so
the ``missing-cost-contract`` lint rule can cross-check the registry
without importing anything.

Exact vs fitted: ``kind="exact"`` contracts (Theorem 4.3 mergesort,
Lemma 4.2 selection, the §4.2 two-way EM mergesort) state non-asymptotic
upper bounds — measured counts must fall in ``[scan floor, bound]`` with
the unit constant.  ``kind="fitted"`` contracts (Theorem 4.5 sample sorts,
Theorem 4.10 priority-queue sorts) state O(...) shapes: the certifier
least-squares-fits one constant per machine per currency (reusing the
planner's calibration fit) over the *external* samples (``n > M``) and then
requires every external sample within ``[lo, hi]`` of the fitted envelope —
the two-sided check is what certifies the *shape*, not just an inequality.
Samples at ``n <= M`` degenerate to one-scan base cases, so they are only
held to ``[scan floor, hi * envelope]``.

**Certifier** (:func:`certify` / ``python -m repro certify``): sweeps n and
(M, B, omega) machines, runs every contracted kernel (under
:mod:`repro.analysis.iosan` by default, so the counters being certified are
themselves cross-checked per block transfer), verifies sorted output, and
emits one machine-readable ``CERT_<kernel>.json`` per kernel plus a
``CERT_summary.json`` (see :data:`CERT_SCHEMA`) via
:func:`write_certificates`.  Registry drift — a registered kernel without a
contract, a contract without a kernel, or a ``contract=`` label that does
not match the declaration here — is a certification failure.

**Charge-site map** (:func:`charge_site_map`): a flow-insensitive,
name-based AST reachability pass over ``src/repro/core`` (plus the machine
model) that attributes every ``charge_*`` call site to the contracted entry
points that can reach it.  Block-granularity charge sites reachable from no
entry are *orphans* — cost accounting that no certificate exercises — and
the ``orphan-charge`` lint rule fails them.  Element-granularity charges
(``charge_read``/``charge_write``) are exempt from orphan reporting: they
are the §3 RAM-model surface, certified by element counters, not block
envelopes.

Import discipline: like the rest of :mod:`repro.analysis`, this module only
imports :mod:`repro.models` and analysis siblings at module level; the
engine, core and planner layers are imported lazily inside runners so the
package stays importable from anywhere in the tree.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import math
import os
import time
from collections.abc import Callable, Iterable, Mapping, Sequence

from ..models.params import MachineParams
from . import formulas
from .ktuning import choose_k
from .schema import validate

__all__ = [
    "BLOCK_CHARGE_METHODS",
    "CERT_SCHEMA",
    "CHARGE_METHODS",
    "CONTRACTS",
    "CertificationError",
    "CertifyResult",
    "ChargeMap",
    "ChargeSite",
    "CostContract",
    "KernelCertificate",
    "MachineCertificate",
    "SampleCheck",
    "certify",
    "certify_kernel",
    "charge_site_map",
    "declare_contract",
    "registry_errors",
    "summarize_source",
    "write_certificates",
]

#: contract kinds
EXACT = "exact"
FITTED = "fitted"

#: default certification sweep (validated against every contract)
DEFAULT_MACHINES = (
    MachineParams(M=64, B=8, omega=8),
    MachineParams(M=256, B=16, omega=4),
    MachineParams(M=512, B=8, omega=12),
)
DEFAULT_SIZES = (256, 1024, 4096)
#: the CI smoke sweep (``certify --quick``)
QUICK_MACHINES = (MachineParams(M=64, B=8, omega=8),)
QUICK_SIZES = (256, 1024)


class CertificationError(RuntimeError):
    """A contracted kernel misbehaved outside its envelope semantics —
    e.g. produced unsorted output, so its counters mean nothing."""


@dataclasses.dataclass(frozen=True)
class CostContract:
    """One kernel's binding to a paper bound.

    ``reads_bound`` / ``writes_bound`` take ``(n, params, k)`` and return
    the closed form with unit constant; ``runner`` takes
    ``(params, n, k, seed)`` and returns measured ``(block_reads,
    block_writes)`` after verifying the kernel's output.
    """

    kernel: str
    theorem: str
    kind: str
    reads_bound: Callable[[int, MachineParams, int], float]
    writes_bound: Callable[[int, MachineParams, int], float]
    runner: Callable[[MachineParams, int, int | None, int], tuple[int, int]]
    takes_k: bool = True
    #: fitted-envelope slack: every external sample must land within
    #: ``[lo * c * bound, hi * max(c * bound, floor)]``
    lo: float = 0.3
    hi: float = 2.5


#: kernel name -> contract, populated by the declare_contract calls below
CONTRACTS: dict[str, CostContract] = {}


def declare_contract(
    kernel: str,
    *,
    theorem: str,
    kind: str,
    reads_bound,
    writes_bound,
    runner,
    takes_k: bool = True,
    lo: float = 0.3,
    hi: float = 2.5,
) -> CostContract:
    """Declare one kernel's cost contract (literal ``kernel``/``theorem``
    so the ``missing-cost-contract`` rule can parse this file statically).
    """
    if kernel in CONTRACTS:
        raise ValueError(f"duplicate cost contract for kernel {kernel!r}")
    if kind not in (EXACT, FITTED):
        raise ValueError(f"contract kind must be {EXACT!r} or {FITTED!r}, got {kind!r}")
    contract = CostContract(
        kernel=kernel,
        theorem=theorem,
        kind=kind,
        reads_bound=reads_bound,
        writes_bound=writes_bound,
        runner=runner,
        takes_k=takes_k,
        lo=lo,
        hi=hi,
    )
    CONTRACTS[kernel] = contract
    return contract


# --------------------------------------------------------------------------- #
# runners (engine/core imported lazily — import-discipline)
# --------------------------------------------------------------------------- #
def _check_sorted(kernel: str, output: list, data: list) -> None:
    if output != sorted(data):
        raise CertificationError(
            f"{kernel}: output is not the sorted input — counters are void"
        )


def _run_registry_sort(algorithm: str):
    """Runner for the four engine-registry sorts."""

    def run(params, n, k, seed):
        from ..engine import external_sort_report
        from ..workloads import random_permutation

        data = random_permutation(n, seed=seed)
        rep = external_sort_report(data, params, algorithm=algorithm, k=k)
        _check_sorted(algorithm, rep.output, data)
        return rep.counter.block_reads, rep.counter.block_writes

    return run


def _run_em2way(params, n, k, seed):
    from ..core.em_utils import em_two_way_mergesort
    from ..models.external_memory import AEMachine
    from ..workloads import random_permutation

    data = random_permutation(n, seed=seed)
    machine = AEMachine(params)
    out = em_two_way_mergesort(machine, machine.from_list(data, name="input"))
    _check_sorted("em2way", out.peek_list(), data)
    return machine.counter.block_reads, machine.counter.block_writes


def _run_parallel_samplesort(params, n, k, seed):
    from ..core.parallel_samplesort import parallel_samplesort
    from ..workloads import random_permutation

    data = random_permutation(n, seed=seed)
    result = parallel_samplesort(params, data, k=k or 1, seed=seed)
    _check_sorted("parallel-samplesort", result.output.peek_list(), data)
    counter = result.machine.counter
    return counter.block_reads, counter.block_writes


def _run_shard_merge(params, n, k, seed):
    from ..core.shard_merge import shard_merge
    from ..models.external_memory import AEMachine
    from ..workloads import random_permutation

    data = random_permutation(n, seed=seed)
    machine = AEMachine(params)
    # deal records round-robin into k shards (first n%k shards one longer —
    # the balanced split shard_merge_reads states), then sort each shard
    k_eff = max(1, min(k or 1, max(n, 1)))
    shards = [
        machine.from_list(sorted(data[i::k_eff]), name=f"shard{i}")
        for i in range(k_eff)
    ]
    out = shard_merge(machine, shards)
    _check_sorted("shardmerge", out.peek_list(), data)
    return machine.counter.block_reads, machine.counter.block_writes


def _run_buffer_tree(params, n, k, seed):
    from ..core.buffer_tree import BufferTree
    from ..models.external_memory import AEMachine
    from ..workloads import random_permutation

    data = random_permutation(n, seed=seed)
    machine = AEMachine(params)
    tree = BufferTree(machine, k or 1)
    tree.insert_many(data)
    _check_sorted("buffer-tree", tree.drain_sorted(), data)
    return machine.counter.block_reads, machine.counter.block_writes


# --------------------------------------------------------------------------- #
# the contract table — one declaration per registered kernel
# --------------------------------------------------------------------------- #
declare_contract(
    "mergesort",
    theorem="Theorem 4.3",
    kind=EXACT,
    reads_bound=lambda n, p, k: formulas.mergesort_reads(n, p.M, p.B, k),
    writes_bound=lambda n, p, k: formulas.mergesort_writes(n, p.M, p.B, k),
    runner=_run_registry_sort("mergesort"),
)

declare_contract(
    "samplesort",
    theorem="Theorem 4.5",
    kind=FITTED,
    reads_bound=lambda n, p, k: formulas.samplesort_reads(n, p.M, p.B, k),
    writes_bound=lambda n, p, k: formulas.samplesort_writes(n, p.M, p.B, k),
    runner=_run_registry_sort("samplesort"),
)

declare_contract(
    "heapsort",
    theorem="Theorem 4.10",
    kind=FITTED,
    reads_bound=lambda n, p, k: formulas.pq_sort_reads(n, p.M, p.B, k),
    writes_bound=lambda n, p, k: formulas.pq_sort_writes(n, p.M, p.B, k),
    runner=_run_registry_sort("heapsort"),
)

declare_contract(
    "selection",
    theorem="Lemma 4.2",
    kind=EXACT,
    takes_k=False,
    reads_bound=lambda n, p, k: formulas.selection_sort_reads(n, p.M, p.B),
    writes_bound=lambda n, p, k: formulas.selection_sort_writes(n, p.B),
    runner=_run_registry_sort("selection"),
)

declare_contract(
    "em2way",
    theorem="Section 4.2 (2-way EM mergesort)",
    kind=EXACT,
    takes_k=False,
    reads_bound=lambda n, p, k: formulas.em2way_transfers(n, p.M, p.B),
    writes_bound=lambda n, p, k: formulas.em2way_transfers(n, p.M, p.B),
    runner=_run_em2way,
)

declare_contract(
    "parallel-samplesort",
    theorem="Theorem 4.5",
    kind=FITTED,
    reads_bound=lambda n, p, k: formulas.samplesort_reads(n, p.M, p.B, k),
    writes_bound=lambda n, p, k: formulas.samplesort_writes(n, p.M, p.B, k),
    runner=_run_parallel_samplesort,
)

declare_contract(
    "shardmerge",
    theorem="Section 4.1 (k-way shard merge)",
    kind=EXACT,
    reads_bound=lambda n, p, k: formulas.shard_merge_reads(n, p.B, k),
    writes_bound=lambda n, p, k: formulas.shard_merge_writes(n, p.B),
    runner=_run_shard_merge,
)

declare_contract(
    "buffer-tree",
    theorem="Theorem 4.10",
    kind=FITTED,
    reads_bound=lambda n, p, k: formulas.pq_sort_reads(n, p.M, p.B, k),
    writes_bound=lambda n, p, k: formulas.pq_sort_writes(n, p.M, p.B, k),
    runner=_run_buffer_tree,
)


# --------------------------------------------------------------------------- #
# certification
# --------------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class SampleCheck:
    """One (kernel, machine, n) measurement against its envelope."""

    n: int
    k: int | None
    measured_reads: int
    measured_writes: int
    bound_reads: float  # closed form, unit constant
    bound_writes: float
    envelope_reads: float  # fitted (or exact) envelope center, floor-clamped
    envelope_writes: float
    floor: int  # ceil(n/B) — the scan lower bound, both currencies
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclasses.dataclass(frozen=True)
class MachineCertificate:
    params: MachineParams
    read_constant: float
    write_constant: float
    samples: tuple[SampleCheck, ...]

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.samples)


@dataclasses.dataclass(frozen=True)
class KernelCertificate:
    kernel: str
    theorem: str
    kind: str
    iosan: bool
    seed: int
    machines: tuple[MachineCertificate, ...]

    @property
    def ok(self) -> bool:
        return all(m.ok for m in self.machines)


@dataclasses.dataclass(frozen=True)
class CertifyResult:
    certificates: tuple[KernelCertificate, ...]
    registry_errors: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.registry_errors and all(c.ok for c in self.certificates)

    def failures(self) -> list[str]:
        """Every failure across the run, rendered for the CLI."""
        out = list(self.registry_errors)
        for cert in self.certificates:
            for mach in cert.machines:
                for sample in mach.samples:
                    out.extend(
                        f"{cert.kernel} on {mach.params} at n={sample.n}: {msg}"
                        for msg in sample.failures
                    )
        return out


def _fit_constant(pairs: Sequence[tuple[float, float]]) -> float:
    """Least-squares-through-origin constant over (measured, bound) pairs,
    via the planner's calibration fit (lazy import — import-discipline)."""
    from ..planner.calibration import ls_through_origin

    return ls_through_origin(pairs)


def _currency_failures(
    contract: CostContract,
    label: str,
    measured: int,
    bound: float,
    constant: float,
    floor: int,
    external: bool,
) -> tuple[float, list[str]]:
    """Check one currency of one sample; return (envelope, failures)."""
    eps = 1e-9
    fails: list[str] = []
    if measured < floor:
        fails.append(
            f"{label}: measured {measured} below the scan floor {floor} — "
            "the kernel cannot have touched its whole input"
        )
    if contract.kind == EXACT:
        envelope = max(bound, float(floor))
        if measured > envelope + eps:
            fails.append(
                f"{label}: measured {measured} exceeds the exact "
                f"{contract.theorem} bound {bound:g}"
            )
        return envelope, fails
    center = constant * bound
    envelope = max(center, float(floor))
    if measured > contract.hi * envelope + eps:
        fails.append(
            f"{label}: measured {measured} above {contract.hi}x the fitted "
            f"{contract.theorem} envelope {envelope:g}"
        )
    if external and measured < contract.lo * center - eps:
        fails.append(
            f"{label}: measured {measured} below {contract.lo}x the fitted "
            f"{contract.theorem} envelope {center:g} — the bound is not "
            "tracking the implementation's shape"
        )
    return envelope, fails


def certify_kernel(
    contract: CostContract,
    machines: Sequence[MachineParams] = DEFAULT_MACHINES,
    sizes: Sequence[int] = DEFAULT_SIZES,
    seed: int = 1,
    use_iosan: bool = True,
) -> KernelCertificate:
    """Measure one contracted kernel across the sweep and check envelopes."""
    from .iosan import iosan

    machine_certs = []
    for params in machines:
        raw = []
        for n in sorted(set(sizes)):
            k = choose_k(params, n=n) if contract.takes_k else None
            if use_iosan:
                with iosan():
                    reads, writes = contract.runner(params, n, k, seed)
            else:
                reads, writes = contract.runner(params, n, k, seed)
            kb = k if k is not None else 1
            raw.append(
                (
                    n,
                    k,
                    reads,
                    writes,
                    float(contract.reads_bound(n, params, kb)),
                    float(contract.writes_bound(n, params, kb)),
                )
            )
        if contract.kind == EXACT:
            cr = cw = 1.0
        else:
            # fit over external samples only: n <= M degenerates to a
            # one-scan base case and would drag the constant off the
            # asymptotic shape the theorem states
            ext = [entry for entry in raw if entry[0] > params.M]
            fit_from = ext if ext else raw
            cr = _fit_constant([(r, rb) for (_, _, r, _, rb, _) in fit_from])
            cw = _fit_constant([(w, wb) for (_, _, _, w, _, wb) in fit_from])
        samples = []
        for n, k, reads, writes, rb, wb in raw:
            floor = math.ceil(n / params.B)
            external = n > params.M
            renv, rfail = _currency_failures(
                contract, "reads", reads, rb, cr, floor, external
            )
            wenv, wfail = _currency_failures(
                contract, "writes", writes, wb, cw, floor, external
            )
            samples.append(
                SampleCheck(
                    n=n,
                    k=k,
                    measured_reads=reads,
                    measured_writes=writes,
                    bound_reads=rb,
                    bound_writes=wb,
                    envelope_reads=renv,
                    envelope_writes=wenv,
                    floor=floor,
                    failures=tuple(rfail + wfail),
                )
            )
        machine_certs.append(
            MachineCertificate(
                params=params,
                read_constant=cr,
                write_constant=cw,
                samples=tuple(samples),
            )
        )
    return KernelCertificate(
        kernel=contract.kernel,
        theorem=contract.theorem,
        kind=contract.kind,
        iosan=use_iosan,
        seed=seed,
        machines=tuple(machine_certs),
    )


def registry_errors() -> list[str]:
    """Cross-check the kernel registry against the contract table."""
    from .. import core  # noqa: F401 — registration side effects
    from ..core.kernels import KERNEL_CONTRACTS, KERNEL_ENTRIES

    errors = []
    for name in sorted(set(KERNEL_ENTRIES) - set(CONTRACTS)):
        errors.append(
            f"registered kernel {name!r} has no cost contract — add a "
            "declare_contract(...) in repro.analysis.boundcheck"
        )
    for name in sorted(set(CONTRACTS) - set(KERNEL_ENTRIES)):
        errors.append(
            f"cost contract {name!r} names no registered kernel — register "
            "it via register_kernel_entry or drop the contract"
        )
    for name in sorted(set(KERNEL_ENTRIES) & set(CONTRACTS)):
        label = KERNEL_CONTRACTS.get(name)
        if label is None:
            errors.append(
                f"kernel {name!r} registered without contract= metadata — "
                f"pass contract={CONTRACTS[name].theorem!r}"
            )
        elif label != CONTRACTS[name].theorem:
            errors.append(
                f"kernel {name!r} registered under {label!r} but its "
                f"declared contract is {CONTRACTS[name].theorem!r}"
            )
    return errors


def certify(
    kernels: Sequence[str] | None = None,
    machines: Sequence[MachineParams] | None = None,
    sizes: Sequence[int] | None = None,
    quick: bool = False,
    seed: int = 1,
    use_iosan: bool = True,
) -> CertifyResult:
    """Run the full certification: registry cross-check + per-kernel sweep."""
    if machines is None:
        machines = QUICK_MACHINES if quick else DEFAULT_MACHINES
    if sizes is None:
        sizes = QUICK_SIZES if quick else DEFAULT_SIZES
    errors = registry_errors()
    if kernels is None:
        selected = sorted(CONTRACTS)
    else:
        unknown = sorted(set(kernels) - set(CONTRACTS))
        if unknown:
            raise KeyError(f"no cost contract for kernel(s): {unknown}")
        selected = list(kernels)
    certificates = tuple(
        certify_kernel(CONTRACTS[name], machines, sizes, seed=seed, use_iosan=use_iosan)
        for name in selected
    )
    return CertifyResult(certificates=certificates, registry_errors=tuple(errors))


# --------------------------------------------------------------------------- #
# certificate records
# --------------------------------------------------------------------------- #
_SAMPLE_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "required": [
        "n", "k", "measured_reads", "measured_writes", "bound_reads",
        "bound_writes", "envelope_reads", "envelope_writes", "floor",
        "passed", "failures",
    ],
    "properties": {
        "n": {"type": "integer", "minimum": 0},
        "k": {"type": ["integer", "null"]},
        "measured_reads": {"type": "integer", "minimum": 0},
        "measured_writes": {"type": "integer", "minimum": 0},
        "bound_reads": {"type": "number", "minimum": 0},
        "bound_writes": {"type": "number", "minimum": 0},
        "envelope_reads": {"type": "number", "minimum": 0},
        "envelope_writes": {"type": "number", "minimum": 0},
        "floor": {"type": "integer", "minimum": 0},
        "passed": {"type": "boolean"},
        "failures": {"type": "array", "items": {"type": "string"}},
    },
}

#: the schema every emitted CERT_<kernel>.json must satisfy
CERT_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "required": [
        "cert", "theorem", "kind", "iosan", "seed", "passed",
        "generated_utc", "machines",
    ],
    "properties": {
        "cert": {"type": "string"},
        "theorem": {"type": "string"},
        "kind": {"enum": [EXACT, FITTED]},
        "iosan": {"type": "boolean"},
        "seed": {"type": "integer"},
        "passed": {"type": "boolean"},
        "generated_utc": {"type": "string"},
        "machines": {
            "type": "array",
            "items": {
                "type": "object",
                "additionalProperties": False,
                "required": [
                    "M", "B", "omega", "read_constant", "write_constant",
                    "passed", "samples",
                ],
                "properties": {
                    "M": {"type": "integer", "minimum": 1},
                    "B": {"type": "integer", "minimum": 1},
                    "omega": {"type": "number", "minimum": 1},
                    "read_constant": {"type": "number", "minimum": 0},
                    "write_constant": {"type": "number", "minimum": 0},
                    "passed": {"type": "boolean"},
                    "samples": {"type": "array", "items": _SAMPLE_SCHEMA},
                },
            },
        },
    },
}

#: the schema of CERT_summary.json
CERT_SUMMARY_SCHEMA = {
    "type": "object",
    "additionalProperties": False,
    "required": ["cert", "passed", "generated_utc", "registry_errors", "kernels"],
    "properties": {
        "cert": {"enum": ["summary"]},
        "passed": {"type": "boolean"},
        "generated_utc": {"type": "string"},
        "registry_errors": {"type": "array", "items": {"type": "string"}},
        "kernels": {
            "type": "object",
            "additionalProperties": {"type": "boolean"},
        },
    },
}


def _utcnow() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def certificate_record(cert: KernelCertificate) -> dict:
    """The machine-readable form of one kernel certificate."""
    return {
        "cert": cert.kernel,
        "theorem": cert.theorem,
        "kind": cert.kind,
        "iosan": cert.iosan,
        "seed": cert.seed,
        "passed": cert.ok,
        "generated_utc": _utcnow(),
        "machines": [
            {
                "M": mach.params.M,
                "B": mach.params.B,
                "omega": mach.params.omega,
                "read_constant": round(mach.read_constant, 6),
                "write_constant": round(mach.write_constant, 6),
                "passed": mach.ok,
                "samples": [
                    {
                        "n": s.n,
                        "k": s.k,
                        "measured_reads": s.measured_reads,
                        "measured_writes": s.measured_writes,
                        "bound_reads": round(s.bound_reads, 6),
                        "bound_writes": round(s.bound_writes, 6),
                        "envelope_reads": round(s.envelope_reads, 6),
                        "envelope_writes": round(s.envelope_writes, 6),
                        "floor": s.floor,
                        "passed": s.ok,
                        "failures": list(s.failures),
                    }
                    for s in mach.samples
                ],
            }
            for mach in cert.machines
        ],
    }


def write_certificates(result: CertifyResult, out_dir: str) -> list[str]:
    """Emit CERT_<kernel>.json per certificate plus CERT_summary.json,
    each validated against its schema before writing; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for cert in result.certificates:
        record = certificate_record(cert)
        validate(record, CERT_SCHEMA)
        path = os.path.join(out_dir, f"CERT_{cert.kernel}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    summary = {
        "cert": "summary",
        "passed": result.ok,
        "generated_utc": _utcnow(),
        "registry_errors": list(result.registry_errors),
        "kernels": {c.kernel: c.ok for c in result.certificates},
    }
    validate(summary, CERT_SUMMARY_SCHEMA)
    path = os.path.join(out_dir, "CERT_summary.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    paths.append(path)
    return paths


# --------------------------------------------------------------------------- #
# static charge-site map
# --------------------------------------------------------------------------- #
#: every CostCounter charge method
CHARGE_METHODS = (
    "charge_read",
    "charge_write",
    "charge_block_read",
    "charge_block_write",
    "charge_reads",
    "charge_writes",
)
#: the block-granularity subset — the ones cost certificates exercise and
#: the orphan-charge rule polices (element charges are the RAM-model surface)
BLOCK_CHARGE_METHODS = (
    "charge_block_read",
    "charge_block_write",
    "charge_reads",
    "charge_writes",
)

#: the real files the charge map covers: every core kernel module plus the
#: machine model whose primitives they charge through
_CHARGE_SCOPE_DIR = "src/repro/core"
_CHARGE_SCOPE_EXTRA_FILES = ("src/repro/models/external_memory.py",)


@dataclasses.dataclass(frozen=True)
class ChargeSite:
    """One ``charge_*`` call site."""

    path: str
    line: int
    col: int
    function: str  # enclosing "Class.method" / "fn" / "<module>"
    method: str  # the charge method name


@dataclasses.dataclass(frozen=True)
class _DefSummary:
    name: str
    qualname: str
    cls: str | None
    calls: frozenset[str]
    sites: tuple[ChargeSite, ...]


@dataclasses.dataclass(frozen=True)
class ModuleChargeSummary:
    """Per-module facts the reachability pass needs (cacheable per file)."""

    path: str
    defs: tuple[_DefSummary, ...]
    #: (kernel_name, entry_symbol) pairs from register_kernel_entry calls
    entries: tuple[tuple[str, str], ...]
    #: charge sites at module level (import-time code; always "reached")
    module_sites: tuple[ChargeSite, ...]


def _callee_name(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Name):
        return call.func.id
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    return None


def _entry_pairs(call: ast.Call) -> Iterable[tuple[str, str]]:
    """(kernel, symbol) pairs out of one register_kernel_entry call."""
    name = None
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        name = call.args[0].value
    if name is None:
        return
    for kw in call.keywords:
        if kw.arg in ("vectorized", "slow_reference") \
                and isinstance(kw.value, ast.Constant) \
                and isinstance(kw.value.value, str) and ":" in kw.value.value:
            yield name, kw.value.value.rsplit(":", 1)[1]


def summarize_source(path: str, tree: ast.AST) -> ModuleChargeSummary:
    """Extract defs, call edges, charge sites and kernel entries from one
    parsed module."""
    defs: list[_DefSummary] = []
    entries: list[tuple[str, str]] = []
    module_sites: list[ChargeSite] = []

    def walk(node: ast.AST, cls: str | None, fn_calls, fn_sites, qual: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name, fn_calls, fn_sites, child.name)
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                calls: set[str] = set()
                sites: list[ChargeSite] = []
                inner_qual = f"{cls}.{child.name}" if cls else child.name
                walk(child, cls, calls, sites, inner_qual)
                defs.append(
                    _DefSummary(
                        name=child.name,
                        qualname=inner_qual,
                        cls=cls,
                        calls=frozenset(calls),
                        sites=tuple(sites),
                    )
                )
                continue
            if isinstance(child, ast.Call):
                callee = _callee_name(child)
                if callee is not None:
                    if fn_calls is not None:
                        fn_calls.add(callee)
                    if callee == "register_kernel_entry":
                        entries.extend(_entry_pairs(child))
                    if callee in CHARGE_METHODS:
                        site = ChargeSite(
                            path=path,
                            line=child.lineno,
                            col=child.col_offset,
                            function=qual,
                            method=callee,
                        )
                        (fn_sites if fn_sites is not None else module_sites).append(site)
            walk(child, cls, fn_calls, fn_sites, qual)

    walk(tree, None, None, None, "<module>")
    return ModuleChargeSummary(
        path=path,
        defs=tuple(defs),
        entries=tuple(dict.fromkeys(entries)),
        module_sites=tuple(module_sites),
    )


@dataclasses.dataclass(frozen=True)
class ChargeMap:
    """The charge-site map: per-kernel reachable sites plus orphans."""

    #: kernel name -> entry seed symbols
    entries: dict[str, tuple[str, ...]]
    #: kernel name -> every charge site reachable from its entry points
    sites_by_kernel: dict[str, tuple[ChargeSite, ...]]
    #: block-granularity sites in core code reachable from NO kernel
    orphans: tuple[ChargeSite, ...]


def _reachable_names(summaries: Sequence[ModuleChargeSummary],
                     seeds: Iterable[str]) -> set[str]:
    """Name-based flow-insensitive reachability over the def call graph.

    Seeding a class name seeds every method of every class with that name
    (entry classes are driven from outside the scope); calling a class name
    from reached code likewise pulls in its methods.  Over-approximate by
    construction — the orphan rule must never flag live accounting.
    """
    defs_by_name: dict[str, list[_DefSummary]] = {}
    methods_by_class: dict[str, set[str]] = {}
    for summary in summaries:
        for d in summary.defs:
            defs_by_name.setdefault(d.name, []).append(d)
            if d.cls is not None:
                methods_by_class.setdefault(d.cls, set()).add(d.name)

    reached: set[str] = set()
    stack: list[str] = []

    def add(name: str) -> None:
        if name in reached:
            return
        reached.add(name)
        if name in defs_by_name:
            stack.append(name)
        for method in methods_by_class.get(name, ()):
            if method not in reached:
                reached.add(method)
                stack.append(method)

    for seed in seeds:
        add(seed)
    while stack:
        for d in defs_by_name.get(stack.pop(), ()):
            for callee in d.calls:
                if callee in defs_by_name or callee in methods_by_class:
                    add(callee)
    return reached


def analyze_summaries(summaries: Sequence[ModuleChargeSummary]) -> ChargeMap:
    """Reachability + orphan detection over prebuilt module summaries."""
    entries: dict[str, list[str]] = {}
    for summary in summaries:
        for kernel, symbol in summary.entries:
            seeds = entries.setdefault(kernel, [])
            if symbol not in seeds:
                seeds.append(symbol)

    sites_by_kernel: dict[str, tuple[ChargeSite, ...]] = {}
    reached_union: set[str] = set()
    for kernel, seeds in sorted(entries.items()):
        reached = _reachable_names(summaries, seeds)
        reached_union |= reached
        sites = [
            site
            for summary in summaries
            for d in summary.defs
            if d.name in reached
            for site in d.sites
        ]
        sites.sort(key=lambda s: (s.path, s.line, s.col))
        sites_by_kernel[kernel] = tuple(sites)

    orphans = [
        site
        for summary in summaries
        for d in summary.defs
        if d.name not in reached_union
        for site in d.sites
        if site.method in BLOCK_CHARGE_METHODS
        and site.path.startswith(_CHARGE_SCOPE_DIR + "/")
    ]
    orphans.sort(key=lambda s: (s.path, s.line, s.col))
    return ChargeMap(
        entries={k: tuple(v) for k, v in sorted(entries.items())},
        sites_by_kernel=sites_by_kernel,
        orphans=tuple(orphans),
    )


def charge_scope_files(root: str = ".") -> list[str]:
    """Repo-relative paths of the modules the charge map covers."""
    paths = []
    core = os.path.join(root, _CHARGE_SCOPE_DIR)
    if os.path.isdir(core):
        paths += sorted(
            f"{_CHARGE_SCOPE_DIR}/{fn}"
            for fn in os.listdir(core)
            if fn.endswith(".py")
        )
    paths += [
        rel for rel in _CHARGE_SCOPE_EXTRA_FILES
        if os.path.isfile(os.path.join(root, rel))
    ]
    return paths


def charge_site_map(
    root: str = ".",
    extra_sources: Mapping[str, str] | None = None,
) -> ChargeMap:
    """The full static charge-site map of the repo at ``root``.

    ``extra_sources`` maps virtual paths to source text and *overlays* the
    real tree (replacing a real file on path collision) — how the lint rule
    analyzes a module that only exists as corpus text.
    """
    sources: dict[str, str] = {}
    for rel in charge_scope_files(root):
        try:
            with open(os.path.join(root, rel), encoding="utf-8") as fh:
                sources[rel] = fh.read()
        except OSError:
            continue
    if extra_sources:
        sources.update(extra_sources)
    summaries = []
    for rel in sorted(sources):
        try:
            tree = ast.parse(sources[rel], filename=rel)
        except SyntaxError:
            continue
        summaries.append(summarize_source(rel, tree))
    return analyze_summaries(summaries)
