"""The repo-specific lint rules.

Each rule enforces one invariant the cost model or the service layer
depends on; see the rule docstrings (surfaced by ``RULES``) for what and
why.  Rules receive a parsed :class:`~repro.analysis.reprolint.ModuleSource`
and the run's :class:`~repro.analysis.reprolint.LintContext` and yield
:class:`~repro.analysis.reprolint.Finding`\\ s; suppression and baseline
filtering happen in the framework.

Scoping: every rule keys off the module's *virtual path* (repo-relative,
overridable with the ``# reprolint: path=...`` pragma — which is how the
planted-violation corpus under ``tests/lint_corpus/`` opts in).
"""

from __future__ import annotations

import ast
import os

from .flow import (
    analyze_charges,
    analyze_lockset,
    analyze_pairing,
    build_project_index,
    flow_enabled,
)
from .reprolint import Finding, LintContext, ModuleSource, rule

#: modules allowed to touch physical storage directly: the model itself,
#: and the sanitizer layer whose whole job is auditing that storage
_UNCHARGED_IO_WHITELIST = ("src/repro/models/", "src/repro/analysis/")

#: attributes that ARE the physical storage of the AEM simulation
_PHYSICAL_ATTRS = ("_blocks", "_memory")

#: modules whose loops are kernel paths (the PR-5 vectorization boundary)
_LOOP_CHARGE_SCOPE = ("src/repro/core/",)

#: single-record charge methods that must not appear in kernel-path loops
_SINGLE_CHARGES = (
    "charge_read",
    "charge_write",
    "charge_block_read",
    "charge_block_write",
)

#: the lock-owning layers
_LOCK_SCOPE_PREFIXES = (
    "src/repro/service/",
    "src/repro/cluster/",
    "src/repro/testing/",
)
_LOCK_SCOPE_FILES = ("src/repro/planner/plan_cache.py",)

#: calls that block the calling thread — holding a lock across one of these
#: stalls every other thread contending for that lock (and invites deadlock
#: when the blocked-on work needs the same lock to finish)
_BLOCKING_CALLS = (
    "result",
    "join",
    "sendall",
    "recv",
    "readline",
    "accept",
    "connect",
    "sleep",
)

#: where the vectorized/slow-reference pins live
_PARITY_TEST_FILE = "tests/test_kernel_parity.py"

#: where the cost contracts are declared (parsed statically, never imported)
_BOUNDCHECK_FILE = "src/repro/analysis/boundcheck.py"

#: modules whose block-granularity charges must be reachable from a
#: contracted kernel entry point
_ORPHAN_CHARGE_SCOPE = ("src/repro/core/",)


def _in_scope(module: ModuleSource, prefixes=(), files=()) -> bool:
    vp = module.virtual_path
    return vp.startswith(tuple(prefixes)) or vp in files


# --------------------------------------------------------------------------- #
# uncharged-io
# --------------------------------------------------------------------------- #
@rule(
    "uncharged-io",
    "direct ._blocks/._memory access outside the model bypasses CostCounter "
    "charging — go through AEMachine primitives (or block_len for metadata)",
)
def check_uncharged_io(module: ModuleSource, ctx: LintContext):
    if _in_scope(module, prefixes=_UNCHARGED_IO_WHITELIST):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and node.attr in _PHYSICAL_ATTRS:
            yield Finding(
                rule="uncharged-io",
                path=module.virtual_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"direct access to physical storage `.{node.attr}` "
                    "outside repro.models — every block touch must go "
                    "through a charged AEMachine primitive (use "
                    "machine.block_len(bi) for free length metadata)"
                ),
            )


# --------------------------------------------------------------------------- #
# loop-charge
# --------------------------------------------------------------------------- #
def _under_slow_reference(module: ModuleSource, node: ast.AST) -> bool:
    """True when the call sits in a deliberate record-at-a-time path: a
    branch guarded on SLOW_REFERENCE or a function named for the slow
    kernel.  Those paths charge per record *by contract* (they must be
    I/O-identical to the historical implementation)."""
    for anc in module.ancestors(node):
        if isinstance(anc, ast.If) and "SLOW_REFERENCE" in module.segment(anc.test):
            return True
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            name = anc.name.lower()
            if "slow" in name or "reference" in name:
                return True
    return False


@rule(
    "loop-charge",
    "per-record charge calls inside kernel-path loops — use the batch "
    "charge_reads/charge_writes API (PR-5 contract) unless the loop is a "
    "slow_reference path",
)
def check_loop_charge(module: ModuleSource, ctx: LintContext):
    if not _in_scope(module, prefixes=_LOOP_CHARGE_SCOPE):
        return
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _SINGLE_CHARGES
        ):
            continue
        in_loop = any(
            isinstance(anc, (ast.For, ast.While)) for anc in module.ancestors(node)
        )
        if not in_loop or _under_slow_reference(module, node):
            continue
        yield Finding(
            rule="loop-charge",
            path=module.virtual_path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"per-record `{node.func.attr}` inside a kernel-path loop — "
                "hoist to one batched charge_reads/charge_writes call "
                "(vectorized-kernel contract), or move the loop under a "
                "SLOW_REFERENCE branch"
            ),
        )


# --------------------------------------------------------------------------- #
# lock-discipline
# --------------------------------------------------------------------------- #
_LOCK_CTORS = ("Lock", "RLock", "Condition", "wrap_lock", "wrap_condition")


def _call_name(node: ast.AST) -> str:
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name):
            return fn.id
        if isinstance(fn, ast.Attribute):
            return fn.attr
    return ""


def _self_attr(node: ast.AST) -> str | None:
    """`self.X` -> "X" (else None)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _written_self_attrs(target: ast.AST):
    """Self attributes written by one assignment target: ``self.x = …``,
    ``self.x[i] = …``, and tuple/list unpacking thereof."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _written_self_attrs(elt)
        return
    if isinstance(target, ast.Starred):
        yield from _written_self_attrs(target.value)
        return
    attr = _self_attr(target)
    if attr is not None:
        yield attr
        return
    if isinstance(target, ast.Subscript):
        attr = _self_attr(target.value)
        if attr is not None:
            yield attr


def _lock_attrs_of_class(cls: ast.ClassDef) -> set[str]:
    """Lock-holding attributes: ``self.X = threading.Lock()`` (or a
    ``wrap_lock``/``wrap_condition`` construction) anywhere in the class."""
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        if _call_name(node.value) in _LOCK_CTORS:
            for target in node.targets:
                attr = _self_attr(target)
                if attr is not None:
                    attrs.add(attr)
    return attrs


def _held_locks(module: ModuleSource, node: ast.AST, lock_attrs: set[str]) -> set[str]:
    """Lock attributes held at ``node`` via enclosing ``with self.X:``."""
    held: set[str] = set()
    for anc in module.ancestors(node):
        if isinstance(anc, ast.With):
            for item in anc.items:
                attr = _self_attr(item.context_expr)
                if attr in lock_attrs:
                    held.add(attr)
    return held


@rule(
    "lock-discipline",
    "in lock-owning classes (service layer, PlanCache): instance state must "
    "be written under the lock; when the flow engine is disabled "
    "(REPRO_LINT_NOFLOW) this rule also carries the syntactic "
    "blocking-under-lock check that flow-lockset otherwise subsumes",
)
def check_lock_discipline(module: ModuleSource, ctx: LintContext):
    if not _in_scope(
        module, prefixes=_LOCK_SCOPE_PREFIXES, files=_LOCK_SCOPE_FILES
    ):
        return
    # the interprocedural flow-lockset rule subsumes the blocking-call half
    # of this rule (and sees through helper indirection); the syntactic
    # check stays available as a fallback when flow analysis is disabled
    check_blocking = not flow_enabled()
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        lock_attrs = _lock_attrs_of_class(cls)
        if not lock_attrs:
            continue
        for node in ast.walk(cls):
            # ---- unlocked writes to instance state -----------------------
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                written = [
                    a for t in targets for a in _written_self_attrs(t)
                ]
                if not written:
                    continue
                fn = next(
                    (
                        a
                        for a in module.ancestors(node)
                        if isinstance(a, (ast.FunctionDef, ast.AsyncFunctionDef))
                    ),
                    None,
                )
                if fn is None or fn.name == "__init__":
                    continue  # construction is single-threaded by definition
                if _held_locks(module, node, lock_attrs):
                    continue
                for attr in written:
                    yield Finding(
                        rule="lock-discipline",
                        path=module.virtual_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"write to `self.{attr}` in "
                            f"`{cls.name}.{fn.name}` outside "
                            f"`with self.{'/'.join(sorted(lock_attrs))}:` — "
                            "lock-owning classes must write instance state "
                            "under their lock"
                        ),
                    )
            # ---- blocking calls while holding the lock -------------------
            # (fallback mode only — flow-lockset owns this check normally)
            elif isinstance(node, ast.Call):
                if not check_blocking:
                    continue
                name = _call_name(node)
                if name not in _BLOCKING_CALLS:
                    continue
                # the condition's own wait/wait_for are how you block
                # *correctly* under a lock, and notify is lock-internal
                if isinstance(node.func, ast.Attribute):
                    owner = _self_attr(node.func.value)
                    if owner in lock_attrs:
                        continue
                held = _held_locks(module, node, lock_attrs)
                if not held:
                    continue
                yield Finding(
                    rule="lock-discipline",
                    path=module.virtual_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"blocking call `{name}(...)` while holding "
                        f"`self.{'/'.join(sorted(held))}` in `{cls.name}` — "
                        "release the lock before blocking (or suppress with "
                        "a comment explaining why holding it is the point)"
                    ),
                )


# --------------------------------------------------------------------------- #
# kernel-parity
# --------------------------------------------------------------------------- #
def _entry_symbol(spec: str) -> str | None:
    """``"repro.core.aem_heapsort:aem_heapsort"`` -> ``"aem_heapsort"``."""
    if ":" not in spec:
        return None
    return spec.rsplit(":", 1)[1]


@rule(
    "kernel-parity",
    "every register_kernel_entry call must declare both a vectorized and a "
    "slow_reference entry point, each pinned in tests/test_kernel_parity.py",
)
def check_kernel_parity(module: ModuleSource, ctx: LintContext):
    parity_text = ctx.read_file(_PARITY_TEST_FILE)
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and _call_name(node) == "register_kernel_entry"):
            continue
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        for required in ("vectorized", "slow_reference"):
            value = kwargs.get(required)
            if value is None:
                yield Finding(
                    rule="kernel-parity",
                    path=module.virtual_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"register_kernel_entry without a `{required}=` "
                        "entry point — every kernel ships both modes"
                    ),
                )
                continue
            if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
                yield Finding(
                    rule="kernel-parity",
                    path=module.virtual_path,
                    line=value.lineno,
                    col=value.col_offset,
                    message=(
                        f"`{required}=` must be a string literal "
                        '("module:symbol") so the parity pin is statically '
                        "checkable"
                    ),
                )
                continue
            symbol = _entry_symbol(value.value)
            if symbol is None:
                yield Finding(
                    rule="kernel-parity",
                    path=module.virtual_path,
                    line=value.lineno,
                    col=value.col_offset,
                    message=(
                        f"`{required}={value.value!r}` is not of the form "
                        '"module:symbol"'
                    ),
                )
                continue
            if parity_text is None:
                yield Finding(
                    rule="kernel-parity",
                    path=module.virtual_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=f"parity test file {_PARITY_TEST_FILE} not found",
                )
            elif symbol not in parity_text:
                yield Finding(
                    rule="kernel-parity",
                    path=module.virtual_path,
                    line=value.lineno,
                    col=value.col_offset,
                    message=(
                        f"kernel entry point `{symbol}` has no pin in "
                        f"{_PARITY_TEST_FILE} — add a byte-identical "
                        "vectorized/slow_reference parity test"
                    ),
                )


# --------------------------------------------------------------------------- #
# missing-cost-contract
# --------------------------------------------------------------------------- #
def _declared_contracts(ctx: LintContext) -> dict | None:
    """``kernel -> theorem`` parsed from the ``declare_contract(...)`` calls
    in boundcheck.py (None when the file is unreadable/unparseable).  The
    declarations use literal names precisely so this never imports anything;
    cached on the run's context."""
    sentinel = getattr(ctx, "_declared_contracts_cache", False)
    if sentinel is not False:
        return sentinel
    declared = None
    text = ctx.read_file(_BOUNDCHECK_FILE)
    if text is not None:
        try:
            tree = ast.parse(text, filename=_BOUNDCHECK_FILE)
        except SyntaxError:
            tree = None
        if tree is not None:
            declared = {}
            for node in ast.walk(tree):
                if not (
                    isinstance(node, ast.Call)
                    and _call_name(node) == "declare_contract"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    continue
                for kw in node.keywords:
                    if (
                        kw.arg == "theorem"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        declared[node.args[0].value] = kw.value.value
    ctx._declared_contracts_cache = declared
    return declared


@rule(
    "missing-cost-contract",
    "every register_kernel_entry call must carry a literal contract= theorem "
    "label matching the kernel's declare_contract(...) declaration in "
    "repro.analysis.boundcheck — unbound kernels escape cost certification",
)
def check_missing_cost_contract(module: ModuleSource, ctx: LintContext):
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and _call_name(node) == "register_kernel_entry"
        ):
            continue
        value = next(
            (kw.value for kw in node.keywords if kw.arg == "contract"), None
        )
        if (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            who = f"kernel `{node.args[0].value}` registered"
        else:
            who = "register_kernel_entry"
        if value is None:
            yield Finding(
                rule="missing-cost-contract",
                path=module.virtual_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{who} without a `contract=` paper-bound "
                    "label — every registered kernel must be bound to a "
                    f"declare_contract(...) in {_BOUNDCHECK_FILE} so "
                    "`repro certify` covers it"
                ),
            )
            continue
        if not (isinstance(value, ast.Constant) and isinstance(value.value, str)):
            yield Finding(
                rule="missing-cost-contract",
                path=module.virtual_path,
                line=value.lineno,
                col=value.col_offset,
                message=(
                    "`contract=` must be a string literal (theorem label) so "
                    "the contract binding is statically checkable"
                ),
            )
            continue
        if not (
            node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            continue  # unnameable registration — kernel-parity territory
        kernel = node.args[0].value
        declared = _declared_contracts(ctx)
        if declared is None:
            yield Finding(
                rule="missing-cost-contract",
                path=module.virtual_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"cannot parse {_BOUNDCHECK_FILE} to cross-check the "
                    "contract declaration"
                ),
            )
        elif kernel not in declared:
            yield Finding(
                rule="missing-cost-contract",
                path=module.virtual_path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"kernel `{kernel}` has no declare_contract(...) "
                    f"declaration in {_BOUNDCHECK_FILE} — declare its "
                    "theorem envelope before registering it"
                ),
            )
        elif declared[kernel] != value.value:
            yield Finding(
                rule="missing-cost-contract",
                path=module.virtual_path,
                line=value.lineno,
                col=value.col_offset,
                message=(
                    f"contract label {value.value!r} does not match the "
                    f"declared theorem {declared[kernel]!r} for kernel "
                    f"`{kernel}` in {_BOUNDCHECK_FILE}"
                ),
            )


# --------------------------------------------------------------------------- #
# orphan-charge
# --------------------------------------------------------------------------- #
def _charge_base_summaries(ctx: LintContext) -> dict:
    """Charge-map summaries of the real in-scope tree, cached per run."""
    cached = getattr(ctx, "_charge_summaries_cache", None)
    if cached is not None:
        return cached
    from .boundcheck import charge_scope_files, summarize_source

    summaries = {}
    for rel in charge_scope_files(ctx.root):
        text = ctx.read_file(rel)
        if text is None:
            continue
        try:
            tree = ast.parse(text, filename=rel)
        except SyntaxError:
            continue
        summaries[rel] = summarize_source(rel, tree)
    ctx._charge_summaries_cache = summaries
    return summaries


@rule(
    "orphan-charge",
    "block-granularity charge_* call sites in core code must be statically "
    "reachable from a contracted kernel entry point — orphaned charges are "
    "cost accounting no certificate ever exercises",
)
def check_orphan_charge(module: ModuleSource, ctx: LintContext):
    if not _in_scope(module, prefixes=_ORPHAN_CHARGE_SCOPE):
        return
    from .boundcheck import analyze_summaries, summarize_source

    summaries = dict(_charge_base_summaries(ctx))
    # overlay the module under lint (it may exist only as corpus text, or
    # be an edited version of a real file)
    summaries[module.virtual_path] = summarize_source(
        module.virtual_path, module.tree
    )
    charge_map = analyze_summaries(list(summaries.values()))
    for site in charge_map.orphans:
        if site.path != module.virtual_path:
            continue
        yield Finding(
            rule="orphan-charge",
            path=site.path,
            line=site.line,
            col=site.col,
            message=(
                f"block-granularity `{site.method}` in `{site.function}` is "
                "reachable from no contracted kernel entry point — dead cost "
                "accounting that `repro certify` never exercises (wire it to "
                "a registered entry or remove it)"
            ),
        )


# --------------------------------------------------------------------------- #
# bench-emit
# --------------------------------------------------------------------------- #
@rule(
    "bench-emit",
    "every bench_* scenario in benchmarks/bench_*.py must route its results "
    "into the BENCH_* trajectory — take the `benchmark` fixture (the autouse "
    "conftest hook emits for it) or call emit_bench_json directly",
)
def check_bench_emit(module: ModuleSource, ctx: LintContext):
    vp = module.virtual_path
    basename = vp.rsplit("/", 1)[-1]
    if not (
        vp.startswith("benchmarks/")
        and basename.startswith("bench_")
        and basename.endswith(".py")
    ):
        return
    for node in module.tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not node.name.startswith("bench_"):
            continue
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        if "benchmark" in params:
            continue
        if any(
            isinstance(sub, ast.Call) and _call_name(sub) == "emit_bench_json"
            for sub in ast.walk(node)
        ):
            continue
        yield Finding(
            rule="bench-emit",
            path=vp,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"bench scenario `{node.name}` neither takes the `benchmark` "
                "fixture nor calls emit_bench_json — its results silently "
                "drop out of the BENCH_* trajectory"
            ),
        )


# --------------------------------------------------------------------------- #
# CFG-backed flow rules (interprocedural engine in repro.analysis.flow)
# --------------------------------------------------------------------------- #
#: all pairing checks apply inside the package; tickets only matter in the
#: service layer, sealed blocks only in core
_RESOURCE_SCOPE = ("src/repro/",)
_TICKET_SCOPE = ("src/repro/service/",)
_SEALED_SCOPE = ("src/repro/core/",)


def _flow_sources(ctx: LintContext) -> dict[str, str]:
    """``relpath → text`` for every module under src/repro, cached per run."""
    cached = getattr(ctx, "_flow_sources_cache", None)
    if cached is not None:
        return cached
    sources: dict[str, str] = {}
    pkg_root = os.path.join(ctx.root, "src", "repro")
    for dirpath, dirnames, filenames in os.walk(pkg_root):
        dirnames[:] = sorted(
            d for d in dirnames if not d.startswith(".") and d != "__pycache__"
        )
        for fn in sorted(filenames):
            if not fn.endswith(".py"):
                continue
            rel = os.path.relpath(
                os.path.join(dirpath, fn), ctx.root
            ).replace(os.sep, "/")
            text = ctx.read_file(rel)
            if text is not None:
                sources[rel] = text
    ctx._flow_sources_cache = sources
    return sources


def _flow_suppressions(ctx: LintContext) -> dict[str, dict[int, set[str]]]:
    """Per-line suppression tables for every project module (the analyses
    honor them inside summaries, not just at report time)."""
    cached = getattr(ctx, "_flow_suppressions_cache", None)
    if cached is not None:
        return cached
    from .reprolint import _collect_suppressions

    tables = {
        rel: _collect_suppressions(text.splitlines())
        for rel, text in _flow_sources(ctx).items()
    }
    ctx._flow_suppressions_cache = tables
    return tables


def _flow_base_index(ctx: LintContext):
    cached = getattr(ctx, "_flow_index_cache", None)
    if cached is None:
        cached = build_project_index(_flow_sources(ctx))
        ctx._flow_index_cache = cached
    return cached


def _module_is_overlay(module: ModuleSource, ctx: LintContext) -> bool:
    """True when the module under lint is NOT byte-identical to the indexed
    project file at its virtual path (corpus fixture or edited tree)."""
    sources = _flow_sources(ctx)
    vp = module.virtual_path
    return vp not in sources or sources[vp] != module.text


def _flow_lockset_result(module: ModuleSource, ctx: LintContext):
    """Whole-project lockset result, cached for the common (non-overlay)
    case; overlays re-run the analysis with the module's tree spliced in."""
    if not _module_is_overlay(module, ctx):
        cached = getattr(ctx, "_flow_lockset_cache", None)
        if cached is None:
            cached = analyze_lockset(
                _flow_base_index(ctx), _flow_suppressions(ctx)
            )
            ctx._flow_lockset_cache = cached
        return cached
    vp = module.virtual_path
    index = build_project_index(_flow_sources(ctx), extra={vp: module.tree})
    suppressions = dict(_flow_suppressions(ctx))
    suppressions[vp] = module.suppressions
    return analyze_lockset(index, suppressions, paths={vp})


def _flow_charge_findings(module: ModuleSource, ctx: LintContext):
    if not _module_is_overlay(module, ctx):
        cached = getattr(ctx, "_flow_charges_cache", None)
        if cached is None:
            cached = analyze_charges(
                _flow_base_index(ctx), _flow_suppressions(ctx)
            )
            ctx._flow_charges_cache = cached
        return cached
    vp = module.virtual_path
    index = build_project_index(_flow_sources(ctx), extra={vp: module.tree})
    suppressions = dict(_flow_suppressions(ctx))
    suppressions[vp] = module.suppressions
    return analyze_charges(index, suppressions, paths={vp})


@rule(
    "flow-lockset",
    "interprocedural lockset analysis over the project CFGs: no blocking "
    "call may be reachable (even through helpers) while a "
    "service-layer/PlanCache lock is statically held, and the inferred "
    "lock-order graph must be acyclic",
)
def check_flow_lockset(module: ModuleSource, ctx: LintContext):
    """Forward may-hold-lock dataflow per function plus call-graph
    summaries; also exports the static lock-order graph the test suite
    cross-validates against locksan's dynamic observations."""
    if not flow_enabled():
        return
    if not _in_scope(
        module, prefixes=_LOCK_SCOPE_PREFIXES, files=_LOCK_SCOPE_FILES
    ):
        return
    result = _flow_lockset_result(module, ctx)
    for f in result.findings:
        if f.path != module.virtual_path:
            continue
        yield Finding(
            rule="flow-lockset",
            path=f.path,
            line=f.line,
            col=f.col,
            message=f.message,
        )


@rule(
    "flow-resource",
    "must-release pairing over all CFG paths: MemoryGuard acquire/release "
    "(exception edges included), BlockWriter close-or-escape on normal "
    "paths, no discarded server result tickets, no sealed zero-copy blocks "
    "escaping their scope",
)
def check_flow_resource(module: ModuleSource, ctx: LintContext):
    """Forward may-open resource analysis per function — gen at the
    acquiring node, kill at release/escape, leak = open resource reaching
    an exit the discipline covers."""
    if not flow_enabled():
        return
    vp = module.virtual_path
    if not vp.startswith(_RESOURCE_SCOPE):
        return
    for kind, f in analyze_pairing(
        module.tree,
        check_tickets=vp.startswith(_TICKET_SCOPE),
        check_sealed=vp.startswith(_SEALED_SCOPE),
    ):
        yield Finding(
            rule="flow-resource",
            path=vp,
            line=f.line,
            col=f.col,
            message=f.message,
        )


@rule(
    "flow-charge",
    "charge placement by dominance: manual block loops in core must be "
    "dominated by an aggregate charge_*(n) at the same loop-nest depth, "
    "and no call chain may reach a bare per-record charge_*() from inside "
    "a loop (the helper-indirection gap of loop-charge)",
)
def check_flow_charge(module: ModuleSource, ctx: LintContext):
    """Dominator-based deepening of loop-charge, interprocedural via
    per-record summaries over the call graph; SLOW_REFERENCE regions are
    exempt by dominance, not just syntactic containment."""
    if not flow_enabled():
        return
    if not _in_scope(module, prefixes=_LOOP_CHARGE_SCOPE):
        return
    for f in _flow_charge_findings(module, ctx):
        if f.path != module.virtual_path:
            continue
        yield Finding(
            rule="flow-charge",
            path=f.path,
            line=f.line,
            col=f.col,
            message=f.message,
        )
