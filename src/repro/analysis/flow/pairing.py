"""Resource-pairing analysis: must-release on all paths.

Four resource disciplines, each checked per function over the CFG with a
forward may-open analysis (gen at the acquiring node, kill at the
releasing/escaping node; any open resource reaching an exit is a leak on
*some* path — exception edges included where the discipline demands it):

``MemoryGuard`` acquire/release
    ``g.acquire(n)`` on a plain local/parameter must reach ``g.release``
    on **every** path, *including exception paths* — guard footprints are
    the Theorem 4.x memory envelope, and an exception that skips the
    release corrupts every later measurement.  (``self.guard.acquire`` is
    an object-lifetime footprint and exempt.)  The practical fix is
    ``try/finally``.
``BlockWriter`` close
    A writer bound from ``machine.writer(...)`` / ``BlockWriter(...)``
    must be closed or escape (returned, yielded, stored, passed on) on
    every **normal** path.  Exception paths are deliberately exempt:
    ``BlockWriter.__exit__`` skips the close on error precisely so a
    failed sort does not flush (and charge for) garbage.
Server result tickets
    ``self._register(fut)`` returns the ticket clients later redeem;
    discarding the return value (a bare expression statement) strands the
    future in the registry forever — nobody can ever evict it.
``SealedBlock`` escape
    Names bound from ``read_block(..., copy=False)`` / iteration of
    ``scan_blocks(...)`` are zero-copy views of physical storage.  Storing
    one whole (append to a container, assignment to an attribute or
    subscript) or returning it raw lets it outlive its block and alias
    later writes; ``yield`` is allowed (streaming to an in-scope consumer
    is the idiom), as are copies (``list(b)``) and slices (``b[i:j]``).

Everything is intraprocedural by design: ownership transfer across calls
is escape (the kill), so no summaries are needed.
"""

from __future__ import annotations

import ast
import dataclasses

from .cfg import FOR, STMT, FunctionCFG, build_cfg
from .lockset import walk_executed
from .solver import solve_forward


@dataclasses.dataclass(frozen=True)
class PairFinding:
    line: int
    col: int
    message: str


#: factory callables whose result is a must-close writer
_WRITER_FACTORIES = ("writer", "BlockWriter")

#: sealed-view producers
_SEALED_SCAN = "scan_blocks"
_SEALED_READ = "read_block"


def _call_attr_or_name(call: ast.Call) -> str:
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def _receiver_local(call: ast.Call) -> str | None:
    """``x.m(...)`` → ``"x"`` when the receiver is a plain local name."""
    fn = call.func
    if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name):
        return fn.value.id
    return None


def _is_sealed_read(call: ast.Call) -> bool:
    if _call_attr_or_name(call) != _SEALED_READ:
        return False
    for kw in call.keywords:
        if (
            kw.arg == "copy"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
        ):
            return True
    return False


def _names_in(expr: ast.AST) -> set[str]:
    return {
        sub.id for sub in ast.walk(expr) if isinstance(sub, ast.Name)
    }


def _is_generator(fn_node: ast.AST) -> bool:
    return any(
        isinstance(sub, (ast.Yield, ast.YieldFrom))
        for sub in walk_executed(fn_node)
    )


# --------------------------------------------------------------------------- #
# guard + writer: forward may-open analysis
# --------------------------------------------------------------------------- #
@dataclasses.dataclass(frozen=True)
class _Site:
    name: str  # the local variable bound to the resource
    line: int
    col: int
    kind: str  # "guard" | "writer"


def _stmt_guard_acquire(stmt: ast.AST) -> ast.Call | None:
    """``<name>.acquire(...)`` executed as this statement (directly or
    inside an expression), receiver a plain local."""
    for sub in walk_executed(stmt):
        if (
            isinstance(sub, ast.Call)
            and _call_attr_or_name(sub) == "acquire"
            and _receiver_local(sub) not in (None, "self", "cls")
        ):
            return sub
    return None


def _stmt_writer_bindings(stmt: ast.AST):
    """``name = machine.writer(...)`` / ``name = BlockWriter(...)`` →
    yield (name, call).  Multi-target or non-Name targets are escapes by
    construction (stored immediately) and not tracked."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return
    value = stmt.value
    if isinstance(value, ast.Call) and _call_attr_or_name(value) in _WRITER_FACTORIES:
        yield target.id, value


def _stmt_kills(stmt: ast.AST, fn_node: ast.AST) -> set[tuple[str, str]]:
    """Resource names this statement releases/escapes: ``(kind, name)``
    pairs where kind is "guard" or "writer"."""
    kills: set[tuple[str, str]] = set()
    for sub in walk_executed(stmt):
        if isinstance(sub, ast.Call):
            attr = _call_attr_or_name(sub)
            recv = _receiver_local(sub)
            if recv is not None and attr == "release":
                kills.add(("guard", recv))
            if recv is not None and attr == "close":
                kills.add(("writer", recv))
            # a writer passed as an argument escapes (ownership transfer)
            for arg in (*sub.args, *(kw.value for kw in sub.keywords)):
                if isinstance(arg, ast.Name):
                    kills.add(("writer", arg.id))
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        for name in _names_in(stmt.value):
            kills.add(("writer", name))
    for sub in walk_executed(stmt):
        if isinstance(sub, (ast.Yield, ast.YieldFrom)) and sub.value is not None:
            for name in _names_in(sub.value):
                kills.add(("writer", name))
        # storing the writer anywhere (attribute, subscript, other name)
        if isinstance(sub, ast.Assign):
            if isinstance(sub.value, ast.Name):
                kills.add(("writer", sub.value.id))
    return kills


def _check_open_resources(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef, cfg: FunctionCFG
) -> list[PairFinding]:
    """The guard/writer forward analysis over one function."""
    # pre-scan: does this function track anything at all?
    gen_nodes: dict[int, _Site] = {}
    kill_map: dict[int, set[tuple[str, str]]] = {}
    for node in cfg.nodes:
        stmt = node.stmt
        if stmt is None or node.kind not in (STMT, FOR):
            continue
        if node.kind == STMT:
            acquire = _stmt_guard_acquire(stmt)
            if acquire is not None:
                recv = _receiver_local(acquire)
                gen_nodes[node.idx] = _Site(
                    recv, acquire.lineno, acquire.col_offset, "guard"
                )
            for name, call in _stmt_writer_bindings(stmt):
                gen_nodes[node.idx] = _Site(
                    name, call.lineno, call.col_offset, "writer"
                )
            kills = _stmt_kills(stmt, fn_node)
            if kills:
                kill_map[node.idx] = kills
    if not gen_nodes:
        return []

    def transfer(node, state: frozenset[_Site]) -> frozenset[_Site]:
        kills = kill_map.get(node.idx)
        if kills:
            state = frozenset(
                s for s in state if (s.kind, s.name) not in kills
            )
        site = gen_nodes.get(node.idx)
        if site is not None:
            # rebinding a name re-tracks it; drop the stale site
            state = frozenset(
                s for s in state if (s.kind, s.name) != (site.kind, site.name)
            ) | {site}
        return state

    def transfer_exc(node, state: frozenset[_Site]) -> frozenset[_Site]:
        # kills count even when the killing statement raises (a release
        # that explodes still released); gens do not (an acquire that
        # raised never acquired)
        kills = kill_map.get(node.idx)
        if kills:
            state = frozenset(
                s for s in state if (s.kind, s.name) not in kills
            )
        return state

    in_states, out_states = solve_forward(
        cfg, frozenset(), transfer, lambda a, b: a | b, transfer_exc
    )

    findings: list[PairFinding] = []
    preds_norm: dict[int, list[int]] = {cfg.exit: [], cfg.raise_exit: []}
    preds_exc: dict[int, list[int]] = {cfg.exit: [], cfg.raise_exit: []}
    for node in cfg.nodes:
        for dst in node.succ:
            if dst in preds_norm:
                preds_norm[dst].append(node.idx)
        for dst in node.esucc:
            if dst in preds_exc:
                preds_exc[dst].append(node.idx)

    leaked_normal: set[_Site] = set()
    for p in preds_norm[cfg.exit]:
        if out_states[p]:
            leaked_normal |= out_states[p]
    leaked_exc: set[_Site] = set()
    for p in preds_exc[cfg.raise_exit]:
        state = in_states[p]  # pre-state: the raise happens mid-statement
        kills = kill_map.get(p)
        if state and kills:
            state = frozenset(
                s for s in state if (s.kind, s.name) not in kills
            )
        if state:
            leaked_exc |= state

    for site in sorted(
        leaked_normal | leaked_exc, key=lambda s: (s.line, s.col, s.name)
    ):
        on_exc = site in leaked_exc
        on_norm = site in leaked_normal
        if site.kind == "guard":
            paths = (
                "an exception path"
                if on_exc and not on_norm
                else "some path to return"
                if on_norm and not on_exc
                else "both normal and exception paths"
            )
            findings.append(
                PairFinding(
                    site.line,
                    site.col,
                    f"`{site.name}.acquire(...)` may reach function exit "
                    f"without `{site.name}.release(...)` on {paths} — wrap "
                    "the guarded region in try/finally (the footprint IS "
                    "the theorem's memory envelope)",
                )
            )
        elif on_norm:  # writers: normal paths only (no flush-on-error)
            findings.append(
                PairFinding(
                    site.line,
                    site.col,
                    f"writer `{site.name}` may reach a normal function "
                    f"exit without `.close()` — close it (or return/store "
                    "it) on every non-exception path, or its tail blocks "
                    "are silently dropped",
                )
            )
    return findings


# --------------------------------------------------------------------------- #
# tickets + sealed blocks: syntactic walks over the same CFG nodes
# --------------------------------------------------------------------------- #
def _check_ticket_discard(fn_node: ast.AST) -> list[PairFinding]:
    findings = []
    for sub in walk_executed(fn_node):
        if (
            isinstance(sub, ast.Expr)
            and isinstance(sub.value, ast.Call)
            and _call_attr_or_name(sub.value) == "_register"
        ):
            findings.append(
                PairFinding(
                    sub.lineno,
                    sub.col_offset,
                    "result ticket from `_register(...)` is discarded — "
                    "the future is stranded in the registry (nothing can "
                    "ever evict it); return or store the ticket",
                )
            )
    return findings


def _sealed_names(fn_node: ast.AST) -> dict[str, int]:
    """Local names bound to sealed (zero-copy) block views → binding line."""
    names: dict[str, int] = {}
    for sub in walk_executed(fn_node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            if isinstance(target, ast.Name) and isinstance(sub.value, ast.Call):
                if _is_sealed_read(sub.value):
                    names[target.id] = sub.lineno
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            if (
                isinstance(sub.target, ast.Name)
                and isinstance(sub.iter, ast.Call)
                and _call_attr_or_name(sub.iter) == _SEALED_SCAN
            ):
                names[sub.target.id] = sub.lineno
    return names


def _check_sealed_escape(
    fn_node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[PairFinding]:
    sealed = _sealed_names(fn_node)
    if not sealed:
        return []
    findings = []
    is_gen = _is_generator(fn_node)

    def flag(node: ast.AST, name: str, how: str) -> None:
        findings.append(
            PairFinding(
                node.lineno,
                node.col_offset,
                f"sealed block `{name}` (zero-copy view bound at line "
                f"{sealed[name]}) escapes by {how} — it aliases physical "
                "storage and outliving its block corrupts later reads; "
                "copy it first (`list(...)`) or slice the records you keep",
            )
        )

    for sub in walk_executed(fn_node):
        if isinstance(sub, ast.Call):
            attr = _call_attr_or_name(sub)
            if attr in ("append", "insert", "add", "put"):
                for arg in sub.args:
                    if isinstance(arg, ast.Name) and arg.id in sealed:
                        flag(sub, arg.id, f"`.{attr}(...)` into a container")
        elif isinstance(sub, ast.Assign):
            value = sub.value
            if isinstance(value, ast.Name) and value.id in sealed:
                for target in sub.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        flag(sub, value.id, "assignment to outliving storage")
        elif isinstance(sub, ast.Return) and not is_gen:
            if isinstance(sub.value, ast.Name) and sub.value.id in sealed:
                flag(sub, sub.value.id, "being returned raw")
    return findings


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def analyze_pairing(
    tree: ast.Module,
    check_guards: bool = True,
    check_writers: bool = True,
    check_tickets: bool = True,
    check_sealed: bool = True,
) -> list[tuple[str, PairFinding]]:
    """All pairing findings for one module: ``(check, finding)`` pairs,
    deterministic order."""
    findings: list[tuple[str, PairFinding]] = []
    for fn in _all_functions(tree):
        if check_guards or check_writers:
            cfg = build_cfg(fn)
            for f in _check_open_resources(fn, cfg):
                kind = "guard" if "acquire" in f.message else "writer"
                if (kind == "guard" and check_guards) or (
                    kind == "writer" and check_writers
                ):
                    findings.append((kind, f))
        if check_tickets:
            findings.extend(("ticket", f) for f in _check_ticket_discard(fn))
        if check_sealed:
            findings.extend(("sealed", f) for f in _check_sealed_escape(fn))
    findings.sort(key=lambda kf: (kf[1].line, kf[1].col, kf[0]))
    return findings


def _all_functions(tree: ast.Module):
    """Every def in the module, including methods and nested defs, each
    analyzed as its own unit."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
