"""flow — the interprocedural dataflow engine behind the CFG-backed lint rules.

The syntactic rules in :mod:`~repro.analysis.lint_rules` see one AST node
at a time; anything that depends on a *path* through the code (an
exception edge skipping a ``release``, a blocking call reached through a
helper method while a lock is held, a charge hoisted to the wrong loop
depth) is invisible to them.  This subpackage supplies the machinery those
checks need:

:mod:`.cfg`
    Per-function control-flow graphs — statement-level nodes, branch /
    loop / exception edges, per-node loop-nest depth, and dominators.
:mod:`.callgraph`
    A project-wide call graph over ``src/repro`` with name- and
    type-annotation-based call resolution, serializable for CI artifacts.
:mod:`.solver`
    A generic forward/backward worklist fixpoint solver over one CFG plus
    an interprocedural summary fixpoint over the call graph.
:mod:`.lockset` / :mod:`.pairing` / :mod:`.charges`
    The three analyses surfaced as the ``flow-lockset`` /
    ``flow-resource`` / ``flow-charge`` reprolint rules.

Everything here works on ASTs only — nothing is imported or executed, so
the analyses are safe to run on the planted-violation corpus and on
arbitrary edited trees.
"""

from __future__ import annotations

import os

from .callgraph import ProjectIndex, build_project_index
from .cfg import CFGNode, FunctionCFG, build_cfg
from .charges import ChargeFinding, analyze_charges
from .lockset import LockFinding, LocksetResult, analyze_lockset
from .pairing import PairFinding, analyze_pairing
from .solver import interprocedural_fixpoint, solve_backward, solve_forward

#: set to disable the CFG-backed rules (the syntactic fallbacks take over)
NOFLOW_ENV = "REPRO_LINT_NOFLOW"


def flow_enabled() -> bool:
    """CFG-backed rules run unless ``REPRO_LINT_NOFLOW`` is set non-empty."""
    return not os.environ.get(NOFLOW_ENV)


__all__ = [
    "CFGNode",
    "ChargeFinding",
    "FunctionCFG",
    "LockFinding",
    "LocksetResult",
    "NOFLOW_ENV",
    "PairFinding",
    "ProjectIndex",
    "analyze_charges",
    "analyze_lockset",
    "analyze_pairing",
    "build_cfg",
    "build_project_index",
    "flow_enabled",
    "interprocedural_fixpoint",
    "solve_backward",
    "solve_forward",
]
