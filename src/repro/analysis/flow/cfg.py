"""Per-function control-flow graphs.

One :class:`FunctionCFG` per ``def``: statement-level nodes, normal edges
for sequencing / branches / loops, *exception edges* for every statement
that can raise (to the innermost handler, through ``finally`` blocks, and
ultimately to a synthetic raise-exit), per-node loop-nest depth, and
dominators.  The graph is deliberately an over-approximation — extra paths
are fine for the may-analyses (lockset) and make the must-analyses
(resource pairing) stricter, which is the conservative direction for a
linter backed by per-line suppressions.

Modeling choices worth knowing when reading analysis results:

* ``finally`` bodies are built once and act as a join: normal completion,
  exceptional completion, and ``return`` / ``break`` / ``continue`` all
  route through the same nodes and fan out to their continuations at the
  end.  This merges paths (infeasible combinations appear) but never
  drops one.
* A statement gets an exception edge iff it syntactically contains a
  ``Call``, ``Raise``, ``Assert`` or ``Subscript`` — the constructs the
  repo's invariants care about.  Exception-edge state is the *pre*-state
  of the statement by default (the solver lets an analysis override this,
  e.g. to let a ``release()`` count even when it raises).
* ``with`` statements produce paired ``with-enter`` / ``with-exit`` nodes;
  exceptions inside the body route through ``with-exit`` first, matching
  ``__exit__`` semantics (how lock regions end on every path).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

#: statement kinds a node can carry (see module docstring)
ENTRY = "entry"
EXIT = "exit"
RAISE_EXIT = "raise-exit"
STMT = "stmt"
TEST = "test"
FOR = "for"
WITH_ENTER = "with-enter"
WITH_EXIT = "with-exit"
EXCEPT = "except"
JOIN = "join"

_MAY_RAISE_NODES = (ast.Call, ast.Raise, ast.Assert, ast.Subscript)


class CFGNode:
    """One CFG node: a simple statement, a branch test, or a synthetic
    region marker (entry/exit, with-enter/with-exit, handler head)."""

    __slots__ = ("idx", "kind", "stmt", "depth", "line", "succ", "esucc")

    def __init__(self, idx: int, kind: str, stmt: ast.AST | None, depth: int):
        self.idx = idx
        self.kind = kind
        self.stmt = stmt
        self.depth = depth
        self.line = getattr(stmt, "lineno", 0)
        self.succ: list[int] = []  # normal-edge successors
        self.esucc: list[int] = []  # exception-edge successors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CFGNode({self.idx}, {self.kind}, line={self.line}, "
            f"depth={self.depth}, succ={self.succ}, esucc={self.esucc})"
        )


class FunctionCFG:
    """The control-flow graph of one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef):
        self.func = func
        self.nodes: list[CFGNode] = []
        self.entry = self._new(ENTRY, None, 0)
        self.exit = self._new(EXIT, None, 0)
        self.raise_exit = self._new(RAISE_EXIT, None, 0)
        self._dominators: list[set[int]] | None = None

    # ------------------------------------------------------------------ #
    def _new(self, kind: str, stmt: ast.AST | None, depth: int) -> int:
        node = CFGNode(len(self.nodes), kind, stmt, depth)
        self.nodes.append(node)
        return node.idx

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].succ:
            self.nodes[src].succ.append(dst)

    def _exc_edge(self, src: int, dst: int) -> None:
        if dst not in self.nodes[src].esucc:
            self.nodes[src].esucc.append(dst)

    # ------------------------------------------------------------------ #
    def iter_nodes(self, kind: str | None = None) -> Iterator[CFGNode]:
        for node in self.nodes:
            if kind is None or node.kind == kind:
                yield node

    def dominators(self) -> list[set[int]]:
        """``dom[i]`` = node indices dominating node ``i`` (both edge kinds
        count: an exception path around a block breaks its dominance)."""
        if self._dominators is not None:
            return self._dominators
        n = len(self.nodes)
        all_idx = set(range(n))
        dom = [all_idx.copy() for _ in range(n)]
        dom[self.entry] = {self.entry}
        preds: list[list[int]] = [[] for _ in range(n)]
        for node in self.nodes:
            for dst in (*node.succ, *node.esucc):
                preds[dst].append(node.idx)
        changed = True
        while changed:
            changed = False
            for i in range(n):
                if i == self.entry:
                    continue
                pred_doms = [dom[p] for p in preds[i]]
                new = set.intersection(*pred_doms) if pred_doms else set()
                new = new | {i}
                if new != dom[i]:
                    dom[i] = new
                    changed = True
        self._dominators = dom
        return dom

    def dominates(self, a: int, b: int) -> bool:
        return a in self.dominators()[b]


# --------------------------------------------------------------------------- #
# builder
# --------------------------------------------------------------------------- #
class _FinallyFrame:
    """One ``finally`` body, built once; jump statements inside the ``try``
    route through it and register where its end should continue to."""

    __slots__ = ("entry_idx", "continuations")

    def __init__(self, entry_idx: int):
        self.entry_idx = entry_idx
        self.continuations: set[int] = set()


class _LoopFrame:
    __slots__ = ("header", "after_hooks", "continue_hooks")

    def __init__(self, header: int):
        self.header = header
        self.after_hooks: list[int] = []  # break sources to wire to after
        self.continue_hooks: list[int] = []  # continue sources → header


def _may_raise(stmt: ast.AST) -> bool:
    return any(isinstance(sub, _MAY_RAISE_NODES) for sub in ast.walk(stmt))


class _Builder:
    def __init__(self, cfg: FunctionCFG):
        self.cfg = cfg
        self.depth = 0
        #: innermost-first stack of exception continuations: node indices an
        #: exception edge targets (handler heads, with-exits, finally heads)
        self.exc_targets: list[list[int]] = [[cfg.raise_exit]]
        #: innermost-first mixed frame stack for return/break/continue
        #: routing: entries are ("loop", _LoopFrame) or ("finally",
        #: _FinallyFrame) or ("with", with_exit_idx)
        self.frames: list[tuple[str, object]] = []

    # -- plumbing ------------------------------------------------------- #
    def _current_exc(self) -> list[int]:
        return self.exc_targets[-1]

    def _wire_exc(self, idx: int) -> None:
        for target in self._current_exc():
            self.cfg._exc_edge(idx, target)

    def _stmt_node(self, stmt: ast.stmt, kind: str = STMT) -> int:
        idx = self.cfg._new(kind, stmt, self.depth)
        if kind in (WITH_ENTER, WITH_EXIT, FOR) or _may_raise(stmt):
            self._wire_exc(idx)
        return idx

    def _connect(self, frontier: list[int], dst: int) -> None:
        for src in frontier:
            self.cfg._edge(src, dst)

    def _route_jump(self, src: int, stop: str | None) -> None:
        """Wire a ``return`` (stop=None), ``break`` or ``continue``
        (stop="loop") from ``src`` through enclosing finally/with frames to
        its ultimate target, chaining single-instance finally bodies."""
        hop = src
        for kind, frame in reversed(self.frames):
            if kind == "finally":
                assert isinstance(frame, _FinallyFrame)
                if hop == src:
                    self.cfg._edge(hop, frame.entry_idx)
                else:
                    # an inner finally must continue into this one
                    self._pending_chain.setdefault(hop, set()).add(
                        frame.entry_idx
                    )
                hop = frame.entry_idx
                continue
            if kind == "with":
                # __exit__ runs on the way out; route through the exit node
                exit_idx = frame  # type: ignore[assignment]
                if hop == src:
                    self.cfg._edge(hop, exit_idx)
                else:
                    self._pending_chain.setdefault(hop, set()).add(exit_idx)
                hop = exit_idx
                continue
            if kind == "loop" and stop == "loop":
                loop = frame
                assert isinstance(loop, _LoopFrame)
                if hop == src:
                    (loop.after_hooks if self._jump_is_break
                     else loop.continue_hooks).append(hop)
                else:
                    self._pending_exit_chain.append(
                        (hop, loop, self._jump_is_break)
                    )
                return
        # ran out of frames: a return (or a break outside any loop, which
        # is a syntax error upstream) — continue to the function exit
        if hop == src:
            self.cfg._edge(hop, self.cfg.exit)
        else:
            self._pending_chain.setdefault(hop, set()).add(self.cfg.exit)

    # pending continuations registered on finally/with frames whose end
    # frontier is not known yet: resolved when the frame finishes building
    _pending_chain: dict[int, set[int]]
    _pending_exit_chain: list[tuple[int, _LoopFrame, bool]]
    _jump_is_break: bool

    # -- statement dispatch --------------------------------------------- #
    def build(self, body: list[ast.stmt]) -> None:
        self._pending_chain = {}
        self._pending_exit_chain = []
        self._frame_ends: dict[int, list[int]] = {}
        frontier = self.visit_block(body, [self.cfg.entry])
        self._connect(frontier, self.cfg.exit)
        self._resolve_pending()

    def _resolve_pending(self) -> None:
        # chain finally/with frames whose ends were recorded during build
        for head, targets in self._pending_chain.items():
            for end in self._frame_ends.get(head, [head]):
                for target in targets:
                    self.cfg._edge(end, target)
        for head, loop, is_break in self._pending_exit_chain:
            hooks = loop.after_hooks if is_break else loop.continue_hooks
            hooks.extend(self._frame_ends.get(head, [head]))

    def visit_block(
        self, body: list[ast.stmt], frontier: list[int]
    ) -> list[int]:
        for stmt in body:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self.visit_stmt(stmt, frontier)
        return frontier

    def visit_stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(stmt, (ast.If,)):
            return self._visit_if(stmt, frontier)
        if isinstance(stmt, (ast.While,)):
            return self._visit_while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._visit_for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._visit_with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, frontier)
        if isinstance(stmt, ast.Return):
            idx = self._stmt_node(stmt)
            self._connect(frontier, idx)
            self._route_jump(idx, stop=None)
            return []
        if isinstance(stmt, ast.Raise):
            idx = self.cfg._new(STMT, stmt, self.depth)
            self._connect(frontier, idx)
            self._wire_exc(idx)
            return []
        if isinstance(stmt, ast.Break):
            idx = self._stmt_node(stmt)
            self._connect(frontier, idx)
            self._jump_is_break = True
            self._route_jump(idx, stop="loop")
            return []
        if isinstance(stmt, ast.Continue):
            idx = self._stmt_node(stmt)
            self._connect(frontier, idx)
            self._jump_is_break = False
            self._route_jump(idx, stop="loop")
            return []
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # nested definitions are opaque single statements here; their own
            # bodies get their own CFGs
            idx = self.cfg._new(STMT, stmt, self.depth)
            self._connect(frontier, idx)
            return [idx]
        # simple statement (assign, expr, assert, global, pass, ...)
        idx = self._stmt_node(stmt)
        self._connect(frontier, idx)
        return [idx]

    # -- compound statements -------------------------------------------- #
    def _visit_if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        test = self.cfg._new(TEST, stmt, self.depth)
        if _may_raise(stmt.test):
            self._wire_exc(test)
        self._connect(frontier, test)
        then_end = self.visit_block(stmt.body, [test])
        if stmt.orelse:
            else_end = self.visit_block(stmt.orelse, [test])
        else:
            else_end = [test]
        return then_end + else_end

    def _visit_while(self, stmt: ast.While, frontier: list[int]) -> list[int]:
        header = self.cfg._new(TEST, stmt, self.depth)
        if _may_raise(stmt.test):
            self._wire_exc(header)
        self._connect(frontier, header)
        loop = _LoopFrame(header)
        self.frames.append(("loop", loop))
        self.depth += 1
        body_end = self.visit_block(stmt.body, [header])
        self.depth -= 1
        self.frames.pop()
        self._connect(body_end, header)
        for src in loop.continue_hooks:
            self.cfg._edge(src, header)
        # the loop falls through unless the test is literally `while True`
        infinite = (
            isinstance(stmt.test, ast.Constant) and stmt.test.value is True
        )
        after: list[int] = [] if infinite else [header]
        after += loop.after_hooks
        if stmt.orelse:
            after = self.visit_block(stmt.orelse, [header] if not infinite else [])
            after += loop.after_hooks
        return after

    def _visit_for(self, stmt: ast.For | ast.AsyncFor, frontier: list[int]) -> list[int]:
        header = self._stmt_node(stmt, kind=FOR)
        self._connect(frontier, header)
        loop = _LoopFrame(header)
        self.frames.append(("loop", loop))
        self.depth += 1
        body_end = self.visit_block(stmt.body, [header])
        self.depth -= 1
        self.frames.pop()
        self._connect(body_end, header)
        for src in loop.continue_hooks:
            self.cfg._edge(src, header)
        after: list[int] = [header]
        if stmt.orelse:
            after = self.visit_block(stmt.orelse, [header])
        after = after + loop.after_hooks
        return after

    def _visit_with(self, stmt: ast.With | ast.AsyncWith, frontier: list[int]) -> list[int]:
        enter = self._stmt_node(stmt, kind=WITH_ENTER)
        self._connect(frontier, enter)
        exit_idx = self.cfg._new(WITH_EXIT, stmt, self.depth)
        # body exceptions run __exit__ before propagating
        self.exc_targets.append([exit_idx])
        self.frames.append(("with", exit_idx))
        body_end = self.visit_block(stmt.body, [enter])
        self.frames.pop()
        self.exc_targets.pop()
        self._connect(body_end, exit_idx)
        self._frame_ends[exit_idx] = [exit_idx]
        # exceptional continuation of __exit__ itself / of the body
        for target in self._current_exc():
            self.cfg._exc_edge(exit_idx, target)
        return [exit_idx]

    def _visit_try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        handler_heads: list[int] = []
        fin: _FinallyFrame | None = None
        if stmt.finalbody:
            # head placeholder (a pure join); the body is built after the
            # try body and handlers so jumps can register continuations
            fin_entry = self.cfg._new(JOIN, None, self.depth)
            fin = _FinallyFrame(fin_entry)

        # exception continuations inside the try body: every handler could
        # match; with no handler (or none matching) the finally runs and
        # re-raises
        body_exc: list[int] = []
        for handler in stmt.handlers:
            head = self.cfg._new(EXCEPT, handler, self.depth)
            handler_heads.append(head)
            body_exc.append(head)
        if fin is not None:
            body_exc.append(fin.entry_idx)
            fin.continuations.update(self._current_exc())
        if not body_exc:
            body_exc = list(self._current_exc())

        if fin is not None:
            self.frames.append(("finally", fin))
        self.exc_targets.append(body_exc)
        body_end = self.visit_block(stmt.body, list(frontier))
        self.exc_targets.pop()
        if stmt.orelse:
            body_end = self.visit_block(stmt.orelse, body_end)

        # handler bodies: their own exceptions go to the finally (if any)
        # and the outer targets
        handler_exc: list[int] = []
        if fin is not None:
            handler_exc.append(fin.entry_idx)
        handler_exc.extend(self._current_exc())
        normal_ends: list[int] = list(body_end)
        self.exc_targets.append(handler_exc)
        for head, handler in zip(handler_heads, stmt.handlers):
            h_end = self.visit_block(handler.body, [head])
            normal_ends.extend(h_end)
        self.exc_targets.pop()

        if fin is None:
            return normal_ends

        self.frames.pop()
        # build the finally body once; all normal completions flow in
        self._connect(normal_ends, fin.entry_idx)
        fin_end = self.visit_block(stmt.finalbody, [fin.entry_idx])
        self._frame_ends[fin.entry_idx] = fin_end or [fin.entry_idx]
        # exceptional inflow re-raises after the finally
        for end in self._frame_ends[fin.entry_idx]:
            for target in fin.continuations:
                self.cfg._exc_edge(end, target)
        return list(self._frame_ends[fin.entry_idx])


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionCFG:
    """Build the CFG of one function definition's body."""
    cfg = FunctionCFG(func)
    _Builder(cfg).build(func.body)
    return cfg
