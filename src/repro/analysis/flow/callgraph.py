"""Project call graph over ``src/repro``.

Pure-AST module indexing plus name/annotation-based call resolution — the
shared substrate under the interprocedural analyses.  Resolution is
deliberately *under*-approximate (an unresolved call contributes no edge):
the analyses that consume the graph treat unknown callees as no-ops, so a
spurious edge would manufacture false findings while a missing edge only
costs recall.  What does resolve:

* bare names — module-level functions, ``from x import f`` symbols, and
  class constructors (edge to ``Class.__init__``);
* ``self.m()`` — methods of the enclosing class and its project bases;
* ``obj.m()`` — when ``obj`` is a parameter/local whose project class is
  known from an annotation or a ``ClassName(...)`` assignment;
* ``self.attr.m()`` — when ``__init__`` binds ``self.attr`` from an
  annotated parameter or a ``ClassName(...)`` call;
* ``module.f()`` — through ``import x.y`` / ``from x import y`` bindings.

Function identity is ``"pkg.mod:Qual.name"``.  :meth:`ProjectIndex.to_dict`
serializes the whole graph for the CI artifact.
"""

from __future__ import annotations

import ast
import dataclasses

#: the package all project paths resolve under
_SRC_PREFIX = "src/"


def module_name(relpath: str) -> str:
    """``src/repro/service/server.py`` → ``repro.service.server``."""
    path = relpath.replace("\\", "/")
    if path.startswith(_SRC_PREFIX):
        path = path[len(_SRC_PREFIX):]
    if path.endswith(".py"):
        path = path[:-3]
    if path.endswith("/__init__"):
        path = path[: -len("/__init__")]
    return path.replace("/", ".")


@dataclasses.dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str  # "repro.service.server:EngineServer._register"
    path: str  # repo-relative (virtual) path of the defining module
    modname: str
    cls: str | None  # enclosing class name, None for module-level defs
    node: ast.FunctionDef | ast.AsyncFunctionDef = dataclasses.field(repr=False)

    @property
    def name(self) -> str:
        return self.node.name


@dataclasses.dataclass
class ClassInfo:
    name: str
    bases: list[str]
    methods: dict[str, FunctionInfo]
    #: self-attribute → project class qualifier ("modname:Class"), inferred
    #: from ``self.x = Class(...)`` and annotated ``__init__`` parameters
    attr_types: dict[str, str]


class ModuleInfo:
    """The indexed contents of one module."""

    def __init__(self, path: str, tree: ast.Module):
        self.path = path
        self.modname = module_name(path)
        self.tree = tree
        self.functions: dict[str, FunctionInfo] = {}  # qualname → info
        self.classes: dict[str, ClassInfo] = {}
        #: local name → ("module", modname) or ("symbol", modname, symbol)
        self.imports: dict[str, tuple] = {}
        self._index()

    def _index(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = ("module", alias.name)
            elif isinstance(stmt, ast.ImportFrom):
                source = self._resolve_from(stmt)
                if source is None:
                    continue
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    self.imports[local] = ("symbol", source, alias.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(stmt)

    def _resolve_from(self, stmt: ast.ImportFrom) -> str | None:
        """Absolute module a ``from ... import`` pulls from (or None)."""
        if stmt.level == 0:
            return stmt.module
        parts = self.modname.split(".")
        # a module's relative imports resolve against its package
        base = parts[: len(parts) - stmt.level]
        if not base:
            return None
        if stmt.module:
            base = base + stmt.module.split(".")
        return ".".join(base)

    def _add_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None
    ) -> FunctionInfo:
        qual = f"{self.modname}:{cls + '.' if cls else ''}{node.name}"
        info = FunctionInfo(qual, self.path, self.modname, cls, node)
        self.functions[qual] = info
        return info

    def _add_class(self, node: ast.ClassDef) -> None:
        methods: dict[str, FunctionInfo] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                methods[stmt.name] = self._add_function(stmt, cls=node.name)
        bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
        bases += [b.attr for b in node.bases if isinstance(b, ast.Attribute)]
        self.classes[node.name] = ClassInfo(node.name, bases, methods, {})


class ProjectIndex:
    """All indexed modules plus the resolved call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}  # modname → info
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: dict[str, list[str]] = {}  # caller qual → callee quals

    # -- indexing ------------------------------------------------------- #
    def add_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        mod = ModuleInfo(path, tree)
        self.modules[mod.modname] = mod
        return mod

    def finalize(self) -> None:
        """Infer attribute types, then resolve every call edge."""
        self.functions = {}
        for mod in self.modules.values():
            self.functions.update(mod.functions)
        for mod in self.modules.values():
            for cls in mod.classes.values():
                cls.attr_types = self._infer_attr_types(mod, cls)
        self.edges = {}
        for mod in self.modules.values():
            for info in mod.functions.values():
                callees: list[str] = []
                for call in self._calls_in(info.node):
                    target = self.resolve_call(info, call)
                    if target is not None and target not in callees:
                        callees.append(target)
                self.edges[info.qualname] = callees

    @staticmethod
    def _calls_in(fn: ast.AST):
        for sub in ast.walk(fn):
            if isinstance(sub, ast.Call):
                yield sub

    # -- type plumbing -------------------------------------------------- #
    def _class_qual(self, mod: ModuleInfo, name: str) -> str | None:
        """Resolve a class name used in ``mod`` to ``"modname:Class"``."""
        if name in mod.classes:
            return f"{mod.modname}:{name}"
        binding = mod.imports.get(name)
        if binding and binding[0] == "symbol":
            _, source, symbol = binding
            target = self.modules.get(source)
            if target is None:
                # re-exported through a package __init__ we did not index —
                # fall back to a unique project-wide class of that name
                owners = [
                    m for m in self.modules.values() if symbol in m.classes
                ]
                if len(owners) == 1:
                    return f"{owners[0].modname}:{symbol}"
                return None
            if symbol in target.classes:
                return f"{target.modname}:{symbol}"
        return None

    def _annotation_class(self, mod: ModuleInfo, ann: ast.expr | None) -> str | None:
        if ann is None:
            return None
        if isinstance(ann, ast.Name):
            return self._class_qual(mod, ann.id)
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            name = ann.value.strip().split("|")[0].strip()
            if name.isidentifier():
                return self._class_qual(mod, name)
        return None

    def _infer_attr_types(self, mod: ModuleInfo, cls: ClassInfo) -> dict[str, str]:
        types: dict[str, str] = {}
        init = cls.methods.get("__init__")
        if init is None:
            return types
        params: dict[str, str] = {}
        args = init.node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            qual = self._annotation_class(mod, a.annotation)
            if qual is not None:
                params[a.arg] = qual
        for stmt in ast.walk(init.node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                value = stmt.value
                if isinstance(value, ast.Name) and value.id in params:
                    types[target.attr] = params[value.id]
                elif isinstance(value, ast.Call) and isinstance(
                    value.func, ast.Name
                ):
                    qual = self._class_qual(mod, value.func.id)
                    if qual is not None:
                        types[target.attr] = qual
        return types

    def _local_types(self, mod: ModuleInfo, fn: FunctionInfo) -> dict[str, str]:
        """Parameter/local name → class qualifier within one function."""
        types: dict[str, str] = {}
        args = fn.node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            qual = self._annotation_class(mod, a.annotation)
            if qual is not None:
                types[a.arg] = qual
        for stmt in ast.walk(fn.node):
            value: ast.expr | None = None
            target: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                qual = self._annotation_class(mod, stmt.annotation)
                if isinstance(target, ast.Name) and qual is not None:
                    types[target.id] = qual
                continue
            if not isinstance(target, ast.Name):
                continue
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                qual = self._class_qual(mod, value.func.id)
                if qual is not None:
                    types[target.id] = qual
        return types

    # -- resolution ----------------------------------------------------- #
    def _method_of(self, class_qual: str, name: str) -> str | None:
        """Look ``name`` up on a class and its project bases."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            qual = stack.pop()
            if qual in seen:
                continue
            seen.add(qual)
            modname, _, clsname = qual.partition(":")
            mod = self.modules.get(modname)
            cls = mod.classes.get(clsname) if mod else None
            if cls is None:
                continue
            if name in cls.methods:
                return cls.methods[name].qualname
            for base in cls.bases:
                base_qual = self._class_qual(mod, base)
                if base_qual is not None:
                    stack.append(base_qual)
        return None

    def resolve_call(self, caller: FunctionInfo, call: ast.Call) -> str | None:
        """The callee's qualname, or None when resolution is not safe."""
        mod = self.modules.get(caller.modname)
        if mod is None:
            return None
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            qual = f"{mod.modname}:{name}"
            if qual in mod.functions:
                return qual
            class_qual = self._class_qual(mod, name)
            if class_qual is not None:
                return self._method_of(class_qual, "__init__")
            binding = mod.imports.get(name)
            if binding and binding[0] == "symbol":
                _, source, symbol = binding
                target_qual = f"{source}:{symbol}"
                if target_qual in self.functions:
                    return target_qual
            return None
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        if isinstance(recv, ast.Name):
            if recv.id == "self" and caller.cls is not None:
                return self._method_of(
                    f"{caller.modname}:{caller.cls}", func.attr
                )
            binding = mod.imports.get(recv.id)
            if binding and binding[0] == "module":
                target_qual = f"{binding[1]}:{func.attr}"
                if target_qual in self.functions:
                    return target_qual
            local = self._local_types(mod, caller).get(recv.id)
            if local is not None:
                return self._method_of(local, func.attr)
            return None
        if (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and caller.cls is not None
        ):
            cls = mod.classes.get(caller.cls)
            if cls is not None:
                attr_qual = cls.attr_types.get(recv.attr)
                if attr_qual is not None:
                    return self._method_of(attr_qual, func.attr)
        return None

    # -- serialization -------------------------------------------------- #
    def to_dict(self) -> dict:
        return {
            "functions": {
                qual: {"path": info.path, "line": info.node.lineno}
                for qual, info in sorted(self.functions.items())
            },
            "edges": {
                qual: sorted(callees)
                for qual, callees in sorted(self.edges.items())
                if callees
            },
        }


def build_project_index(
    sources: dict[str, str], extra: dict[str, ast.Module] | None = None
) -> ProjectIndex:
    """Index ``{relpath: text}`` sources (plus pre-parsed ``extra`` trees —
    the corpus-overlay hook: an extra tree *replaces* the real module at the
    same virtual path) and resolve the call graph."""
    index = ProjectIndex()
    overlay = extra or {}
    for relpath, text in sorted(sources.items()):
        if relpath in overlay:
            continue
        try:
            tree = ast.parse(text, filename=relpath)
        except SyntaxError:
            continue
        index.add_module(relpath, tree)
    for relpath, tree in sorted(overlay.items()):
        index.add_module(relpath, tree)
    index.finalize()
    return index
