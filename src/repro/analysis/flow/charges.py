"""Charge-placement analysis.

Deepens the syntactic ``loop-charge`` rule into a real dominance check
over the CFG, in two parts:

**C2 — per-record helpers called from loops** (interprocedural).  A
function whose straight-line body issues a bare aggregate charge
(``charge_read()`` with no argument charges *one* record) is a
"per-record" helper: calling it once is fine, calling it from a loop
charges one record per iteration while the loop may touch ``B`` records
per block.  The old rule only saw bare charges literally inside a loop;
this one follows call edges, closing the helper-indirection gap.

**C3 — manual block loops must be dominated by an aggregate charge.**
``for bi in range(run.num_blocks):`` iterates physical blocks.  If the
body performs no self-charging primitive (``read_block`` / ``scan`` /
writer ``append`` all charge internally) and is not metadata-only
arithmetic, then the I/O the loop represents must have been charged in
aggregate — concretely, a ``charge_*(n)`` call **at the same loop-nest
depth that dominates the loop header**.  Dominance (not mere textual
precedence) is the point: a charge inside one branch of an ``if`` does
not cover a loop that runs on both branches.

Both checks honor the ``slow_reference`` exemption the way the paper's
cost model does — the slow path is the *oracle*, deliberately uncharged.
A statement is slow-exempt when it sits in a ``SLOW_REFERENCE`` branch
syntactically, or when its CFG node is dominated by the head of such a
branch (so refactored layouts where the slow region falls through the
bottom of a guard still count).
"""

from __future__ import annotations

import ast
import dataclasses

from .callgraph import ProjectIndex
from .cfg import FOR, FunctionCFG, build_cfg
from .lockset import _executed_subtrees, walk_executed
from .solver import interprocedural_fixpoint

#: bare forms that charge exactly one record (mirrors lint_rules)
SINGLE_CHARGES = frozenset(
    {"charge_read", "charge_write", "charge_block_read", "charge_block_write"}
)

#: machine/writer primitives that charge internally — a loop body calling
#: one of these accounts for itself
CHARGED_PRIMITIVES = frozenset(
    {
        "read_block",
        "write_block",
        "scan",
        "scan_blocks",
        "append",
        "extend",
        "extend_blocks",
        "close",
    }
)

#: calls that touch only metadata — a loop made of these moves no records
META_CALLS = frozenset(
    {
        "block_len",
        "len",
        "range",
        "min",
        "max",
        "next",
        "isinstance",
        "enumerate",
        "zip",
        "sorted",
        "int",
        "float",
        "abs",
    }
)

#: attributes that count physical/logical blocks — looping over one is
#: looping over I/O
BLOCK_COUNT_ATTRS = ("num_blocks", "logical_blocks")

_SLOW_TOKEN = "SLOW_REFERENCE"

#: where charge placement is law (the paper's cost-model kernels)
SCOPE_PREFIXES = ("src/repro/core/",)


@dataclasses.dataclass(frozen=True)
class ChargeFinding:
    path: str
    line: int
    col: int
    message: str


def _call_name(call: ast.Call) -> str:
    fn = call.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def _mentions_slow(expr: ast.AST) -> bool:
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and sub.id == _SLOW_TOKEN:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == _SLOW_TOKEN:
            return True
    return False


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
    )


def _slow_regions(fn_node: ast.AST) -> list[list[ast.stmt]]:
    """Statement sequences that execute only on the SLOW_REFERENCE path.

    ``mode == SLOW_REFERENCE`` / ``is`` → the body; ``!=`` / ``is not`` →
    the orelse, or — when the (fast) body terminates — the remainder of
    the enclosing block; unknown comparison shapes exempt both branches
    (lenient, matching the old syntactic rule's generosity).
    """
    regions: list[list[ast.stmt]] = []

    def scan(body: list[ast.stmt]) -> None:
        for i, stmt in enumerate(body):
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if isinstance(stmt, ast.If) and _mentions_slow(stmt.test):
                positive = None  # does the *body* run on the slow path?
                if isinstance(stmt.test, ast.Compare) and len(stmt.test.ops) == 1:
                    op = stmt.test.ops[0]
                    if isinstance(op, (ast.Eq, ast.Is)):
                        positive = True
                    elif isinstance(op, (ast.NotEq, ast.IsNot)):
                        positive = False
                if positive is True or positive is None:
                    if stmt.body:
                        regions.append(stmt.body)
                if positive is False or positive is None:
                    if stmt.orelse:
                        regions.append(stmt.orelse)
                    elif positive is False and _terminates(stmt.body):
                        rest = body[i + 1:]
                        if rest:
                            regions.append(rest)
                # still scan the non-slow side for nested guards
                if positive is True:
                    scan(stmt.orelse)
                elif positive is False:
                    scan(stmt.body)
                continue
            for child_body in (
                getattr(stmt, "body", None),
                getattr(stmt, "orelse", None),
                getattr(stmt, "finalbody", None),
            ):
                if isinstance(child_body, list):
                    scan(child_body)
            for handler in getattr(stmt, "handlers", []) or []:
                scan(handler.body)

    scan(fn_node.body)
    return regions


class _FnFacts:
    """Everything the two checks need about one function, computed once."""

    def __init__(self, info, cfg: FunctionCFG):
        self.info = info
        self.cfg = cfg
        fn_name = info.node.name.lower()
        self.fn_is_slow = "slow" in fn_name or "reference" in fn_name

        regions = _slow_regions(info.node)
        self.slow_ids: set[int] = set()
        slow_head_stmts: set[int] = set()
        for region in regions:
            slow_head_stmts.add(id(region[0]))
            for stmt in region:
                for sub in ast.walk(stmt):
                    self.slow_ids.add(id(sub))
        self.slow_heads: list[int] = []
        for node in cfg.nodes:
            if node.stmt is not None and id(node.stmt) in slow_head_stmts:
                self.slow_heads.append(node.idx)

    def exempt(self, node_idx: int, ast_node: ast.AST | None = None) -> bool:
        if self.fn_is_slow:
            return True
        if ast_node is not None and id(ast_node) in self.slow_ids:
            return True
        return any(self.cfg.dominates(h, node_idx) for h in self.slow_heads)


def _fn_facts(index: ProjectIndex) -> dict[str, _FnFacts]:
    return {
        qual: _FnFacts(info, build_cfg(info.node))
        for qual, info in index.functions.items()
    }


def _suppressed(suppressions: dict[int, set[str]] | None, line: int) -> bool:
    if not suppressions:
        return False
    rules = suppressions.get(line)
    return rules is not None and (
        "*" in rules or "flow-charge" in rules or "loop-charge" in rules
    )


# --------------------------------------------------------------------------- #
# C2: per-record summaries over the call graph
# --------------------------------------------------------------------------- #
def compute_per_record(
    index: ProjectIndex, facts: dict[str, _FnFacts]
) -> dict[str, bool]:
    """``qualname → True`` when calling the function once charges exactly
    one record's worth on its straight-line path (so calling it from a
    loop multiplies the charge)."""
    bare0: dict[str, bool] = {}
    calls0: dict[str, list[str]] = {}
    for qual, f in facts.items():
        info = f.info
        has_bare = False
        depth0: list[str] = []
        if not info.path.startswith(SCOPE_PREFIXES):
            # the instrumented layers (models/, datastructures/) charge per
            # call by design — their bare charges ARE the cost model, not a
            # misplaced aggregate; only core/ is bound by the convention
            bare0[qual] = False
            calls0[qual] = []
            continue
        for node in f.cfg.nodes:
            if node.depth != 0:
                continue
            for fragment in _executed_subtrees(node):
                for sub in walk_executed(fragment):
                    if not isinstance(sub, ast.Call):
                        continue
                    name = _call_name(sub)
                    if (
                        name in SINGLE_CHARGES
                        and not sub.args
                        and not sub.keywords
                        and not f.exempt(node.idx, sub)
                    ):
                        has_bare = True
                    target = index.resolve_call(info, sub)
                    if target is not None:
                        depth0.append(target)
        bare0[qual] = has_bare
        calls0[qual] = depth0

    def summarize(qual: str, summaries: dict[str, bool]) -> bool:
        return bare0[qual] or any(
            summaries.get(c, False) for c in calls0[qual]
        )

    return interprocedural_fixpoint(
        sorted(facts), summarize, lambda q: bare0[q]
    )


# --------------------------------------------------------------------------- #
# C3: manual block loops need a dominating aggregate charge
# --------------------------------------------------------------------------- #
def _block_count_attr(for_stmt: ast.For | ast.AsyncFor) -> str | None:
    """``for _ in range(<x>.num_blocks)``-shaped header → the attribute."""
    it = for_stmt.iter
    if not (isinstance(it, ast.Call) and _call_name(it) == "range"):
        return None
    for sub in ast.walk(it):
        if isinstance(sub, ast.Attribute) and sub.attr in BLOCK_COUNT_ATTRS:
            return sub.attr
    return None


def _body_calls(for_stmt: ast.For | ast.AsyncFor):
    for stmt in (*for_stmt.body, *for_stmt.orelse):
        for sub in walk_executed(stmt):
            if isinstance(sub, ast.Call):
                yield sub


def _loop_needs_charge(for_stmt: ast.For | ast.AsyncFor) -> bool:
    names = [_call_name(c) for c in _body_calls(for_stmt)]
    for name in names:
        if name in CHARGED_PRIMITIVES or name.startswith("charge_"):
            return False  # the body accounts for itself
    if all(name in META_CALLS for name in names):
        return False  # metadata-only loop, no records move
    return True


def _charge_nodes(f: _FnFacts) -> list[tuple[int, int]]:
    """``(node_idx, depth)`` of every aggregate ``charge_*(n)`` call."""
    out: list[tuple[int, int]] = []
    for node in f.cfg.nodes:
        for fragment in _executed_subtrees(node):
            for sub in walk_executed(fragment):
                if (
                    isinstance(sub, ast.Call)
                    and _call_name(sub).startswith("charge_")
                    and (sub.args or sub.keywords)
                ):
                    out.append((node.idx, node.depth))
    return out


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def analyze_charges(
    index: ProjectIndex,
    suppressions: dict[str, dict[int, set[str]]] | None = None,
    paths: set[str] | None = None,
) -> list[ChargeFinding]:
    """Both checks over the project; findings restricted to core/ (and to
    ``paths`` when given)."""
    suppressions = suppressions or {}
    facts = _fn_facts(index)
    per_record = compute_per_record(index, facts)

    findings: list[ChargeFinding] = []
    for qual in sorted(facts):
        f = facts[qual]
        info = f.info
        if not info.path.startswith(SCOPE_PREFIXES):
            continue
        if paths is not None and info.path not in paths:
            continue
        table = suppressions.get(info.path)

        for node in f.cfg.nodes:
            # C2: per-record helper invoked from inside a loop
            if node.depth >= 1:
                for fragment in _executed_subtrees(node):
                    for sub in walk_executed(fragment):
                        if not isinstance(sub, ast.Call):
                            continue
                        target = index.resolve_call(info, sub)
                        if (
                            target is not None
                            and per_record.get(target, False)
                            and not f.exempt(node.idx, sub)
                            and not _suppressed(table, sub.lineno)
                        ):
                            findings.append(
                                ChargeFinding(
                                    info.path,
                                    sub.lineno,
                                    sub.col_offset,
                                    f"call to `{target}` at loop depth "
                                    f"{node.depth} reaches a bare "
                                    "`charge_*()` — the helper charges one "
                                    "record per invocation, so the loop "
                                    "multiplies the charge; hoist an "
                                    "aggregate `charge_*(n)` and strip the "
                                    "bare charge from the helper",
                                )
                            )
            # C3: manual block loop without a dominating aggregate charge
            if node.kind != FOR or not isinstance(
                node.stmt, (ast.For, ast.AsyncFor)
            ):
                continue
            attr = _block_count_attr(node.stmt)
            if attr is None or not _loop_needs_charge(node.stmt):
                continue
            if f.exempt(node.idx, node.stmt):
                continue
            if _suppressed(table, node.line):
                continue
            charges = _charge_nodes(f)
            if any(
                depth == node.depth and f.cfg.dominates(c_idx, node.idx)
                for c_idx, depth in charges
            ):
                continue
            findings.append(
                ChargeFinding(
                    info.path,
                    node.line,
                    node.stmt.col_offset,
                    f"block loop over `.{attr}` performs no self-charging "
                    "primitive and is not dominated by an aggregate "
                    "`charge_*(n)` at the same loop depth — the I/O this "
                    "loop represents is invisible to the cost model",
                )
            )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
    return findings
