"""Generic fixpoint solvers.

Two layers:

* :func:`solve_forward` / :func:`solve_backward` — the classic worklist
  fixpoint over one :class:`~repro.analysis.flow.cfg.FunctionCFG`.  The
  analysis supplies the lattice as plain callables (``join``,
  ``transfer``); states are compared with ``==``, so immutable values
  (frozensets, tuples) are the natural representation.
* :func:`interprocedural_fixpoint` — a summary fixpoint over the call
  graph: each function's summary is recomputed from its callees' current
  summaries until nothing changes.  Recursion converges because the
  per-function summarizers are monotone over finite lattices (sets of
  lock names / blocking-call names drawn from the program text).

Exception edges carry the *pre*-state of the raising node by default;
``transfer_exc`` lets an analysis override that (e.g. resource pairing
counts a ``release()`` even when the release call itself raises — the
conservative direction for leak detection is "kills apply, gens do not").
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from .cfg import FunctionCFG


def solve_forward(
    cfg: FunctionCFG,
    init,
    transfer: Callable,
    join: Callable,
    transfer_exc: Callable | None = None,
):
    """Forward dataflow: returns ``(in_states, out_states)`` lists indexed
    by node.  ``init`` seeds the entry; unreachable nodes keep ``None``
    (analyses should treat None as bottom/skip)."""
    n = len(cfg.nodes)
    in_states: list = [None] * n
    out_norm: list = [None] * n
    out_exc: list = [None] * n
    in_states[cfg.entry] = init

    preds_norm: list[list[int]] = [[] for _ in range(n)]
    preds_exc: list[list[int]] = [[] for _ in range(n)]
    for node in cfg.nodes:
        for dst in node.succ:
            preds_norm[dst].append(node.idx)
        for dst in node.esucc:
            preds_exc[dst].append(node.idx)

    work = deque(range(n))
    while work:
        idx = work.popleft()
        node = cfg.nodes[idx]
        state = in_states[idx]
        if idx != cfg.entry:
            state = None
            for p in preds_norm[idx]:
                if out_norm[p] is not None:
                    state = out_norm[p] if state is None else join(state, out_norm[p])
            for p in preds_exc[idx]:
                if out_exc[p] is not None:
                    state = out_exc[p] if state is None else join(state, out_exc[p])
            if state is None:
                continue  # not reachable (yet)
            if state == in_states[idx] and out_norm[idx] is not None:
                continue  # no change
            in_states[idx] = state
        new_norm = transfer(node, state)
        new_exc = (
            transfer_exc(node, state) if transfer_exc is not None else state
        )
        if new_norm != out_norm[idx] or new_exc != out_exc[idx]:
            out_norm[idx] = new_norm
            out_exc[idx] = new_exc
            for dst in (*node.succ, *node.esucc):
                work.append(dst)
    return in_states, out_norm


def solve_backward(
    cfg: FunctionCFG,
    init,
    transfer: Callable,
    join: Callable,
):
    """Backward dataflow: ``init`` seeds both exits; returns the state
    *before* each node (i.e. what holds on entry to it), indexed by node.
    Exception edges are traversed like normal edges."""
    n = len(cfg.nodes)
    out_states: list = [None] * n  # state after the node (join of successors)
    in_states: list = [None] * n  # state before the node
    in_states[cfg.exit] = init
    in_states[cfg.raise_exit] = init

    succs: list[list[int]] = [
        list(node.succ) + list(node.esucc) for node in cfg.nodes
    ]
    preds: list[list[int]] = [[] for _ in range(n)]
    for node in cfg.nodes:
        for dst in succs[node.idx]:
            preds[dst].append(node.idx)

    work = deque(range(n - 1, -1, -1))
    while work:
        idx = work.popleft()
        node = cfg.nodes[idx]
        if idx in (cfg.exit, cfg.raise_exit):
            state = in_states[idx]
        else:
            state = None
            for s in succs[idx]:
                if in_states[s] is not None:
                    state = (
                        in_states[s] if state is None else join(state, in_states[s])
                    )
            if state is None:
                continue
            out_states[idx] = state
            state = transfer(node, state)
        if state != in_states[idx] or out_states[idx] is None:
            in_states[idx] = state
            for p in preds[idx]:
                work.append(p)
    return in_states


def interprocedural_fixpoint(
    qualnames,
    summarize: Callable,
    initial: Callable,
    max_rounds: int = 50,
) -> dict:
    """Compute per-function summaries to a fixpoint.

    ``summarize(qualname, summaries) -> summary`` recomputes one function
    from the current summary map; ``initial(qualname)`` seeds it.  Rounds
    are bounded as a safety net — the analyses' lattices are finite so the
    bound never binds in practice.
    """
    summaries = {q: initial(q) for q in qualnames}
    for _ in range(max_rounds):
        changed = False
        for q in summaries:
            new = summarize(q, summaries)
            if new != summaries[q]:
                summaries[q] = new
                changed = True
        if not changed:
            break
    return summaries
