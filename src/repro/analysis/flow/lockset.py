"""Static lockset analysis.

Forward may-hold-lock sets over each function's CFG, with interprocedural
summaries over the project call graph: which locks a function may acquire,
and which blocking calls it may reach (directly or through callees).  The
``flow-lockset`` rule reports

* a blocking call executed while a lock may be held — including calls
  reached *through helper methods*, the known false-negative of the
  syntactic ``lock-discipline`` rule; and
* statically inferred lock-order cycles: acquiring B while holding A adds
  the edge A→B to the project lock-order graph (nested ``with`` or a call
  edge into a function that acquires), and any cycle in that graph is a
  latent deadlock.

The same machinery exports the static lock-order graph, which the test
suite cross-validates against the edges :mod:`~repro.analysis.locksan`
records dynamically (static ⊇ dynamic — the analysis may over-approximate
but must never miss an order the runtime exhibits).

Lock identity matches locksan's: the ``"Class._attr"`` string passed to
``wrap_lock`` / ``wrap_condition`` when present, ``"Class._attr"``
synthesized from the assignment otherwise.  ``with self._x:`` resolves
against the enclosing class; ``with other._x:`` resolves by attribute name
and may be ambiguous, in which case *all* candidate locks are considered
held (over-approximation, the safe direction for a may-analysis).
"""

from __future__ import annotations

import ast
import dataclasses

from .callgraph import FunctionInfo, ProjectIndex
from .cfg import FOR, STMT, TEST, WITH_ENTER, WITH_EXIT, CFGNode, build_cfg
from .solver import interprocedural_fixpoint, solve_forward

#: constructions that make an attribute a lock (mirrors lint_rules)
LOCK_CTORS = ("Lock", "RLock", "Condition", "wrap_lock", "wrap_condition")

#: calls that block the calling thread (mirrors lint_rules)
BLOCKING_CALLS = (
    "result",
    "join",
    "sendall",
    "recv",
    "readline",
    "accept",
    "connect",
    "sleep",
)


@dataclasses.dataclass(frozen=True)
class LockFinding:
    path: str
    line: int
    col: int
    message: str


@dataclasses.dataclass
class LocksetResult:
    """Per-project analysis output."""

    findings: list[LockFinding]
    #: static lock-order graph: (held, acquired) → "path:line" witness
    order_edges: dict[tuple[str, str], str]
    #: lock-order cycles, each a tuple of lock names in acquisition order
    cycles: list[tuple[str, ...]]

    def order_graph_dict(self) -> dict:
        """JSON-ready serialization (the CI artifact)."""
        return {
            "locks": sorted({n for e in self.order_edges for n in e}),
            "edges": [
                {"held": held, "acquired": acquired, "site": site}
                for (held, acquired), site in sorted(self.order_edges.items())
            ],
            "cycles": [list(c) for c in self.cycles],
        }


class LockModel:
    """The project's lock table: which class attributes are locks and what
    locksan calls them."""

    def __init__(self) -> None:
        #: "modname:Class" → {attr → display name}
        self.class_locks: dict[str, dict[str, str]] = {}
        #: attr → all display names using that attribute (for non-self
        #: receivers, where the owning class is unknown)
        self.attr_candidates: dict[str, set[str]] = {}

    def add(self, class_qual: str, attr: str, display: str) -> None:
        self.class_locks.setdefault(class_qual, {})[attr] = display
        self.attr_candidates.setdefault(attr, set()).add(display)


def _lock_display_name(call: ast.Call, cls_name: str, attr: str) -> str:
    """The locksan name: the string literal handed to wrap_lock /
    wrap_condition, else ``Class._attr``."""
    fn = call.func
    name = fn.id if isinstance(fn, ast.Name) else getattr(fn, "attr", "")
    if name in ("wrap_lock", "wrap_condition"):
        for arg in call.args[1:]:
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
        for kw in call.keywords:
            if (
                kw.arg == "name"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                return kw.value.value
    return f"{cls_name}.{attr}"


def build_lock_model(index: ProjectIndex) -> LockModel:
    model = LockModel()
    for mod in index.modules.values():
        for cls_name, cls in mod.classes.items():
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    value = node.value
                    if not isinstance(value, ast.Call):
                        continue
                    fn = value.func
                    ctor = (
                        fn.id
                        if isinstance(fn, ast.Name)
                        else getattr(fn, "attr", "")
                    )
                    if ctor not in LOCK_CTORS:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            model.add(
                                f"{mod.modname}:{cls_name}",
                                target.attr,
                                _lock_display_name(value, cls_name, target.attr),
                            )
    return model


# --------------------------------------------------------------------------- #
# per-function lock effects
# --------------------------------------------------------------------------- #
def _with_item_locks(
    item_expr: ast.expr, info: FunctionInfo, model: LockModel
) -> frozenset[str]:
    """Lock display names a ``with <expr>:`` item acquires (empty when the
    context manager is not a known lock)."""
    if not isinstance(item_expr, ast.Attribute):
        return frozenset()
    attr = item_expr.attr
    recv = item_expr.value
    if isinstance(recv, ast.Name) and recv.id == "self" and info.cls is not None:
        class_qual = f"{info.modname}:{info.cls}"
        locks = model.class_locks.get(class_qual, {})
        if attr in locks:
            return frozenset({locks[attr]})
        return frozenset()
    # non-self receiver: resolve by attribute name (may be ambiguous)
    return frozenset(model.attr_candidates.get(attr, ()))


def _stmt_with_locks(node_stmt: ast.AST, info: FunctionInfo, model: LockModel):
    acquired: frozenset[str] = frozenset()
    if isinstance(node_stmt, (ast.With, ast.AsyncWith)):
        for item in node_stmt.items:
            acquired |= _with_item_locks(item.context_expr, info, model)
    return acquired


def _executed_subtrees(node: CFGNode) -> list[ast.AST]:
    """The AST fragments that actually run *at* this CFG node — compound
    statements' bodies belong to their own nodes, nested function/class
    definitions merely bind (their bodies run when called, not here)."""
    stmt = node.stmt
    if stmt is None:
        return []
    if node.kind == TEST:
        return [stmt.test]  # If / While header
    if node.kind == FOR:
        return [stmt.iter]
    if node.kind == WITH_ENTER:
        return [item.context_expr for item in stmt.items]
    if node.kind != STMT or isinstance(
        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [stmt]


def walk_executed(root: ast.AST):
    """``ast.walk`` that does not descend into nested function/class
    definitions — defining a closure is not running it.  ``root`` itself
    may be a function definition (its own body is walked)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            stack.append(child)


def _blocking_calls_in(stmt: ast.AST, info: FunctionInfo, model: LockModel):
    """Yield ``(call, name)`` for blocking calls in one statement, skipping
    calls *on a lock object itself* (``self._cond.wait`` territory — the
    lock's own methods are how you block correctly under it)."""
    for sub in walk_executed(stmt):
        if not isinstance(sub, ast.Call):
            continue
        fn = sub.func
        name = fn.attr if isinstance(fn, ast.Attribute) else (
            fn.id if isinstance(fn, ast.Name) else ""
        )
        if name not in BLOCKING_CALLS:
            continue
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Attribute):
            recv_attr = fn.value.attr
            if recv_attr in model.attr_candidates:
                continue  # method of a lock attribute
        yield sub, name


@dataclasses.dataclass(frozen=True)
class FnSummary:
    """May-effects of calling one function (transitively)."""

    acquires: frozenset[str] = frozenset()
    blocking: frozenset[str] = frozenset()


def _suppressed(suppressions: dict[int, set[str]] | None, line: int) -> bool:
    """Is a blocking call waived at its own line?  Both the new rule name
    and the subsumed ``lock-discipline`` name count — existing suppressions
    keep working when the flow rule takes over."""
    if not suppressions:
        return False
    rules = suppressions.get(line)
    return rules is not None and (
        "*" in rules or "flow-lockset" in rules or "lock-discipline" in rules
    )


def compute_summaries(
    index: ProjectIndex,
    model: LockModel,
    suppressions: dict[str, dict[int, set[str]]],
) -> dict[str, FnSummary]:
    """Interprocedural may-summaries: locks acquired and blocking calls
    reachable (suppressed blocking sites are deliberate and excluded)."""

    def initial(qual: str) -> FnSummary:
        return FnSummary()

    def summarize(qual: str, summaries: dict[str, FnSummary]) -> FnSummary:
        info = index.functions[qual]
        acquires: set[str] = set()
        blocking: set[str] = set()
        table = suppressions.get(info.path)
        for sub in walk_executed(info.node):
            if isinstance(sub, (ast.With, ast.AsyncWith)):
                for item in sub.items:
                    acquires |= _with_item_locks(item.context_expr, info, model)
        for call, name in _blocking_calls_in(info.node, info, model):
            if not _suppressed(table, call.lineno):
                blocking.add(name)
        for callee in index.edges.get(qual, ()):
            summary = summaries.get(callee)
            if summary is not None:
                acquires |= summary.acquires
                blocking |= summary.blocking
        return FnSummary(frozenset(acquires), frozenset(blocking))

    return interprocedural_fixpoint(
        sorted(index.functions), summarize, initial
    )


# --------------------------------------------------------------------------- #
# the analysis proper
# --------------------------------------------------------------------------- #
def analyze_lockset(
    index: ProjectIndex,
    suppressions: dict[str, dict[int, set[str]]] | None = None,
    paths: set[str] | None = None,
) -> LocksetResult:
    """Run the lockset analysis over the whole project.

    ``suppressions`` maps path → per-line suppression table (so deliberate,
    commented blocking sites drop out of both findings and summaries).
    ``paths`` restricts *findings* to the given virtual paths; the order
    graph is always project-wide.
    """
    suppressions = suppressions or {}
    model = build_lock_model(index)
    summaries = compute_summaries(index, model, suppressions)

    findings: list[LockFinding] = []
    order_edges: dict[tuple[str, str], str] = {}

    for qual in sorted(index.functions):
        info = index.functions[qual]
        report_here = paths is None or info.path in paths
        cfg = build_cfg(info.node)

        def transfer(node, state, _info=info):
            stmt = node.stmt
            if stmt is None:
                return state
            if node.kind == WITH_ENTER:
                return state | _stmt_with_locks(stmt, _info, model)
            if node.kind == WITH_EXIT:
                return state - _stmt_with_locks(stmt, _info, model)
            return state

        in_states, _ = solve_forward(
            cfg,
            frozenset(),
            transfer,
            lambda a, b: a | b,
            transfer_exc=transfer,
        )

        table = suppressions.get(info.path)
        for node in cfg.nodes:
            held = in_states[node.idx]
            if not held or node.stmt is None:
                continue
            if node.kind == WITH_ENTER:
                # nested acquisition: order edges held → acquired
                acquired = _stmt_with_locks(node.stmt, info, model)
                for h in sorted(held):
                    for a in sorted(acquired):
                        if h != a:
                            order_edges.setdefault(
                                (h, a), f"{info.path}:{node.line}"
                            )
            for fragment in _executed_subtrees(node):
                # direct blocking calls under a lock
                for call, name in _blocking_calls_in(fragment, info, model):
                    if report_here and not _suppressed(table, call.lineno):
                        findings.append(
                            LockFinding(
                                info.path,
                                call.lineno,
                                call.col_offset,
                                f"blocking call `{name}(...)` while holding "
                                f"`{'/'.join(sorted(held))}` in `{qual}` — "
                                "release the lock before blocking (or "
                                "suppress with a comment explaining why "
                                "holding it is the point)",
                            )
                        )
                # calls into functions that acquire or (transitively) block
                for sub in walk_executed(fragment):
                    if not isinstance(sub, ast.Call):
                        continue
                    callee = index.resolve_call(info, sub)
                    if callee is None:
                        continue
                    summary = summaries.get(callee, FnSummary())
                    for a in sorted(summary.acquires):
                        for h in sorted(held):
                            if h != a:
                                order_edges.setdefault(
                                    (h, a), f"{info.path}:{sub.lineno}"
                                )
                    if summary.blocking and report_here and not _suppressed(
                        table, sub.lineno
                    ):
                        names = "/".join(sorted(summary.blocking))
                        findings.append(
                            LockFinding(
                                info.path,
                                sub.lineno,
                                sub.col_offset,
                                f"call to `{callee}` while holding "
                                f"`{'/'.join(sorted(held))}` reaches "
                                f"blocking call(s) `{names}(...)` — helper "
                                "indirection does not release the lock",
                            )
                        )

    cycles = _find_cycles(order_edges)
    for cycle in cycles:
        witness = order_edges.get((cycle[0], cycle[1 % len(cycle)]), "")
        site_path = witness.rsplit(":", 1)[0] if witness else ""
        line = int(witness.rsplit(":", 1)[1]) if witness else 0
        if paths is None or site_path in paths:
            findings.append(
                LockFinding(
                    site_path,
                    line,
                    0,
                    "statically inferred lock-order cycle: "
                    + " -> ".join((*cycle, cycle[0]))
                    + " — some interleaving of these acquisitions deadlocks",
                )
            )

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.message))
    return LocksetResult(findings, order_edges, cycles)


def _find_cycles(
    order_edges: dict[tuple[str, str], str]
) -> list[tuple[str, ...]]:
    """Elementary cycles in the order graph (DFS; deterministic order)."""
    graph: dict[str, list[str]] = {}
    for held, acquired in order_edges:
        graph.setdefault(held, []).append(acquired)
        graph.setdefault(acquired, [])
    for dests in graph.values():
        dests.sort()

    cycles: set[tuple[str, ...]] = set()

    def dfs(start: str, node: str, path: list[str], on_path: set[str]) -> None:
        for nxt in graph[node]:
            if nxt == start and len(path) > 1:
                # canonicalize on the lexicographically smallest rotation
                best = min(
                    tuple(path[i:] + path[:i]) for i in range(len(path))
                )
                cycles.add(best)
            elif nxt not in on_path and nxt > start:
                # only explore nodes after `start` to visit each cycle once
                path.append(nxt)
                on_path.add(nxt)
                dfs(start, nxt, path, on_path)
                on_path.discard(nxt)
                path.pop()

    for start in sorted(graph):
        dfs(start, start, [start], {start})
    return sorted(cycles)
