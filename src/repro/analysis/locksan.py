"""locksan — the lock-order recorder.

The service layer holds several locks with well-defined, but so far only
*conventional*, discipline: :class:`~repro.service.SortService` serializes
queue state under one condition, :class:`~repro.service.EngineServer` guards
its ticket registry, :class:`~repro.planner.plan_cache.PlanCache` guards the
memo table.  A new code path that nests two of them in opposite orders in
two threads is a latent deadlock that no amount of passing tests will
surface — lock inversions are timing bugs.  locksan makes the discipline
machine-checked: every acquisition of a registered lock is recorded against
the locks the acquiring thread already holds, building a global
*lock-order graph*; an edge observed in both directions is an inversion and
is reported as a violation (as is re-acquiring a held non-reentrant lock,
which is a guaranteed self-deadlock).

Integration is at construction time, not by monkeypatching: the lock-owning
classes create their locks through :func:`wrap_lock` /
:func:`wrap_condition`, which return the lock unchanged while the recorder
is disabled (zero overhead on the hot path) and a recording proxy while it
is enabled.  Enable *before* constructing the objects under test::

    from repro.analysis import locksan
    locksan.enable()
    service = SortService(engine)          # locks are now recorded
    ...
    assert locksan.violations() == []

``REPRO_LOCKSAN=1`` in the environment enables recording at ``import
repro``.  Violations are *recorded* by default (so a stress test can drive
the system hard and assert at the end); :func:`set_raise_on_violation`
turns them into immediate :class:`LockOrderError`\\ s for debugging.
"""

from __future__ import annotations

import threading

_enabled = False
_raise_on_violation = False
_state_lock = threading.Lock()  # guards the graph + violation list
_edges: dict[tuple[str, str], str] = {}  # (held, acquired) -> description
_violations: list[str] = []
_held = threading.local()  # per-thread stack of (name, id) pairs


class LockOrderError(RuntimeError):
    """Raised on a recorded violation when raise-on-violation is set, and
    always on re-acquisition of a held non-reentrant lock (proceeding would
    deadlock the calling thread)."""


def enable() -> None:
    """Start handing out recording proxies from :func:`wrap_lock` /
    :func:`wrap_condition` (affects locks created *after* this call)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def locksan_enabled() -> bool:
    return _enabled


def set_raise_on_violation(flag: bool) -> None:
    global _raise_on_violation
    _raise_on_violation = flag


def reset() -> None:
    """Clear the recorded order graph and violations (between tests)."""
    with _state_lock:
        _edges.clear()
        _violations.clear()


def violations() -> list[str]:
    """Inversions observed so far (empty = discipline held)."""
    with _state_lock:
        return list(_violations)


def order_graph() -> dict[tuple[str, str], str]:
    """Snapshot of the dynamic lock-order graph: ``(held, acquired) →
    description``.  The static lockset analysis must cover every edge here
    (static ⊇ dynamic) — the cross-check test enforces exactly that."""
    with _state_lock:
        return dict(_edges)


def dump_order_graph(path: str) -> None:
    """Serialize the observed order graph + violations as JSON."""
    import json

    with _state_lock:
        payload = {
            "edges": [
                {"held": held, "acquired": acquired, "via": via}
                for (held, acquired), via in sorted(_edges.items())
            ],
            "violations": list(_violations),
        }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _install_dump_hook() -> None:
    """When ``REPRO_LOCKSAN_DUMP`` names a file, write the order graph
    there at interpreter exit — how a stress-suite subprocess hands its
    observations to the static/dynamic cross-check."""
    import atexit
    import os

    target = os.environ.get("REPRO_LOCKSAN_DUMP")
    if target:
        atexit.register(dump_order_graph, target)


_install_dump_hook()


def _stack() -> list[tuple[str, int]]:
    stack = getattr(_held, "stack", None)
    if stack is None:
        stack = _held.stack = []
    return stack


def _record_violation(message: str) -> None:
    with _state_lock:
        _violations.append(message)
    if _raise_on_violation:
        raise LockOrderError(message)


def _note_acquire(name: str, ident: int) -> None:
    stack = _stack()
    thread = threading.current_thread().name
    for held_name, held_ident in stack:
        if held_ident == ident:
            # same instance twice in one thread: guaranteed self-deadlock —
            # always raise, because delegating acquire would hang forever
            message = (
                f"self-deadlock: thread {thread!r} re-acquired held lock "
                f"{name}"
            )
            with _state_lock:
                _violations.append(message)
            raise LockOrderError(message)
        if held_name == name:
            continue  # two instances of one class: no class-level ordering
        edge = (held_name, name)
        reverse = (name, held_name)
        with _state_lock:
            if reverse in _edges and edge not in _edges:
                _violations.append(
                    f"lock-order inversion: thread {thread!r} acquired "
                    f"{name} while holding {held_name}, but the opposite "
                    f"order was seen earlier ({_edges[reverse]})"
                )
            _edges.setdefault(edge, f"thread {thread!r}")
        if reverse in _edges and edge in _edges and _raise_on_violation:
            raise LockOrderError(_violations[-1])
    stack.append((name, ident))


def _note_release(name: str, ident: int) -> None:
    stack = _stack()
    for i in range(len(stack) - 1, -1, -1):
        if stack[i] == (name, ident):
            del stack[i]
            return


class RecordingLock:
    """Order-recording proxy around a :class:`threading.Lock`."""

    def __init__(self, inner, name: str):
        self._inner = inner
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        _note_acquire(self.name, id(self._inner))
        got = self._inner.acquire(blocking, timeout)
        if not got:
            _note_release(self.name, id(self._inner))
        return got

    def release(self) -> None:
        self._inner.release()
        _note_release(self.name, id(self._inner))

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "RecordingLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordingLock({self.name})"


class RecordingCondition(RecordingLock):
    """Order-recording proxy around a :class:`threading.Condition`.

    ``wait`` / ``wait_for`` release the underlying lock while blocked, so
    the proxy pops the condition from the held stack for the duration and
    re-records it on wakeup (the re-acquisition cannot introduce a new
    edge: the thread held exactly the same locks before the wait).
    """

    def wait(self, timeout: float | None = None):
        ident = id(self._inner)
        _note_release(self.name, ident)
        try:
            return self._inner.wait(timeout)
        finally:
            _stack().append((self.name, ident))

    def wait_for(self, predicate, timeout: float | None = None):
        ident = id(self._inner)
        _note_release(self.name, ident)
        try:
            return self._inner.wait_for(predicate, timeout)
        finally:
            _stack().append((self.name, ident))

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


def wrap_lock(lock, name: str):
    """Return ``lock`` untouched while disabled, a recording proxy while
    enabled.  ``name`` should be the owning ``Class.attribute`` so
    violations read like the source."""
    if not _enabled:
        return lock
    return RecordingLock(lock, name)


def wrap_condition(cond, name: str):
    """Condition counterpart of :func:`wrap_lock`."""
    if not _enabled:
        return cond
    return RecordingCondition(cond, name)
