"""One function per paper bound: the closed forms experiments compare against.

Unless stated otherwise the functions return the bound with its leading
constant set to 1 — experiments report the measured/predicted *ratio*, whose
stability across a parameter sweep is the evidence that the asymptotic shape
holds (constants are not claimed by the paper).
"""

from __future__ import annotations

import math


def _log(x: float, base: float) -> float:
    return math.log(max(x, base)) / math.log(base)


# ---------------------------------------------------------------------- #
# §3 — Asymmetric PRAM sorting (Theorem 3.2)
# ---------------------------------------------------------------------- #
def pram_sort_reads(n: int) -> float:
    """Theorem 3.2: ``O(n log n)`` reads."""
    return n * math.log2(max(n, 2))


def pram_sort_writes(n: int) -> float:
    """Theorem 3.2: ``O(n)`` writes."""
    return float(n)


def pram_sort_depth(n: int, omega: int) -> float:
    """Theorem 3.2: ``O(omega log n)`` depth."""
    return omega * math.log2(max(n, 2))


# ---------------------------------------------------------------------- #
# §4 — (A)EM sorting
# ---------------------------------------------------------------------- #
def em_sort_transfers(n: int, M: int, B: int) -> float:
    """Equation (1): the optimal symmetric EM bound
    ``(n/B) log_{M/B}(n/B)`` (total transfers, unit constant)."""
    return (n / B) * max(1.0, _log(n / B, M / B))


def mergesort_levels(n: int, M: int, B: int, k: int) -> int:
    """``ceil(log_{kM/B}(n/B))`` — Theorem 4.3's level count."""
    if n <= B:
        return 1
    return max(1, math.ceil(math.log(n / B) / math.log(k * M / B)))


def mergesort_reads(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.3 (exact upper bound): ``(k+1) ceil(n/B) ceil(log...)``."""
    return (k + 1) * math.ceil(n / B) * mergesort_levels(n, M, B, k)


def mergesort_writes(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.3 (exact upper bound): ``ceil(n/B) ceil(log...)``."""
    return math.ceil(n / B) * mergesort_levels(n, M, B, k)


def mergesort_io_cost(n: int, M: int, B: int, k: int, omega: int) -> float:
    """Appendix A: ``(omega + k + 1) ceil(n/B) ceil(log_{kM/B}(n/B))``."""
    return (omega + k + 1) * math.ceil(n / B) * mergesort_levels(n, M, B, k)


def samplesort_reads(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.5: ``O((kn/B) ceil(log_{kM/B}(n/B)))`` (unit constant)."""
    return k * math.ceil(n / B) * mergesort_levels(n, M, B, k)


def samplesort_writes(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.5: ``O((n/B) ceil(log_{kM/B}(n/B)))`` (unit constant)."""
    return math.ceil(n / B) * mergesort_levels(n, M, B, k)


def selection_sort_reads(n: int, M: int, B: int) -> float:
    """Lemma 4.2 (exact upper bound): ``ceil(n/M)`` full scans of the
    input, each ``ceil(n/B)`` block reads (one scan selects the next
    memory-load of smallest records)."""
    return max(1, math.ceil(n / M)) * math.ceil(n / B)


def selection_sort_writes(n: int, B: int) -> float:
    """Lemma 4.2 (exact upper bound): the output is written once,
    ``ceil(n/B)`` block writes total."""
    return float(math.ceil(n / B))


def em2way_transfers(n: int, M: int, B: int) -> float:
    """Classic 2-way EM mergesort (§4.2's sample-sort subroutine), per
    currency: one scan to form the ``ceil(n/M)`` base runs plus one scan
    per binary merge level, ``ceil(n/B) (1 + ceil(log2(n/M)))`` —
    reads and writes are symmetric (exact upper bound, met with equality
    on power-of-two run counts)."""
    levels = 1 + max(0, math.ceil(math.log2(max(1.0, n / M))))
    return math.ceil(n / B) * levels


def shard_merge_reads(n: int, B: int, k: int) -> float:
    """§4.1 merge step (exact upper bound): merging ``k`` sorted shards of
    total length ``n`` loads every input block once.  With the coordinator's
    balanced contiguous split — shard sizes ``ceil(n/k)`` or ``floor(n/k)``
    — that is ``sum_i ceil(n_i/B)`` reads."""
    if n == 0:
        return 0.0
    k = max(1, min(k, n))
    q, r = divmod(n, k)
    return float(r * math.ceil((q + 1) / B) + (k - r) * math.ceil(q / B))


def shard_merge_writes(n: int, B: int) -> float:
    """§4.1 merge step (exact upper bound): the merged output is written
    once, ``ceil(n/B)`` block writes total."""
    return float(math.ceil(n / B))


def pq_sort_reads(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.10's sorting corollary: ``n`` INSERTs + ``n`` DELETE-MINs
    at the amortized per-operation read cost (unit constant)."""
    return 2 * n * pq_amortized_reads(n, M, B, k)


def pq_sort_writes(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.10's sorting corollary: ``2n`` operations at the
    amortized per-operation write cost (unit constant)."""
    return 2 * n * pq_amortized_writes(n, M, B, k)


def pq_amortized_reads(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.10: ``O((k/B)(1 + log_{kM/B} n))`` per operation."""
    return (k / B) * (1 + _log(n, k * M / B))


def pq_amortized_writes(n: int, M: int, B: int, k: int) -> float:
    """Theorem 4.10: ``O((1/B)(1 + log_{kM/B} n))`` per operation."""
    return (1 / B) * (1 + _log(n, k * M / B))


# ---------------------------------------------------------------------- #
# §5 — cache-oblivious algorithms
# ---------------------------------------------------------------------- #
def co_sort_reads(n: int, M: int, B: int, omega: int) -> float:
    """Theorem 5.1: ``O((omega n / B) log_{omega M}(omega n))``."""
    return (omega * n / B) * max(1.0, _log(omega * n, max(omega * M, 2)))


def co_sort_writes(n: int, M: int, B: int, omega: int) -> float:
    """Theorem 5.1: ``O((n/B) log_{omega M}(omega n))``."""
    return (n / B) * max(1.0, _log(omega * n, max(omega * M, 2)))


def co_classic_sort_transfers(n: int, M: int, B: int) -> float:
    """[9]'s symmetric bound ``O((n/B) log_M n)`` (reads ~= writes)."""
    return (n / B) * max(1.0, _log(n, max(M, 2)))


def fft_reads(n: int, M: int, B: int, omega: int) -> float:
    """§5.2: ``O((omega n / B) log_{omega M}(omega n))`` reads."""
    return (omega * n / B) * max(1.0, _log(omega * n, max(omega * M, 2)))


def fft_writes(n: int, M: int, B: int, omega: int) -> float:
    """§5.2: ``O((n/B) log_{omega M}(omega n))`` writes."""
    return (n / B) * max(1.0, _log(omega * n, max(omega * M, 2)))


def matmul_em_reads(n: int, M: int, B: int) -> float:
    """Theorem 5.2: ``O(n^3 / (B sqrt(M)))`` reads."""
    return n**3 / (B * math.sqrt(M))


def matmul_em_writes(n: int, B: int) -> float:
    """Theorem 5.2: ``O(n^2 / B)`` writes."""
    return n**2 / B


def matmul_co_reads(n: int, M: int, B: int, omega: int) -> float:
    """Theorem 5.3: expected ``O(n^3 omega / (B sqrt(M) log omega))``."""
    return n**3 * omega / (B * math.sqrt(M) * max(1.0, math.log2(omega)))


def matmul_co_writes(n: int, M: int, B: int, omega: int) -> float:
    """Theorem 5.3: expected ``O(n^3 / (B sqrt(M) log omega))``."""
    return n**3 / (B * math.sqrt(M) * max(1.0, math.log2(omega)))


def matmul_co_classic_transfers(n: int, M: int, B: int) -> float:
    """Standard cache-oblivious matmul: ``Theta(n^3 / (B sqrt(M)))``."""
    return n**3 / (B * math.sqrt(M))


# ---------------------------------------------------------------------- #
# §2 — scheduler bounds
# ---------------------------------------------------------------------- #
def work_stealing_extra_misses(p: int, depth: float, M: int, B: int) -> float:
    """§2: additional misses under work stealing, ``O(p D M / B)``."""
    return p * depth * M / B


def lru_competitive_bound(
    q_ideal: float, m_lru: int, m_ideal: int, B: int, omega: int
) -> float:
    """Lemma 2.1's right-hand side: ``M_L/(M_L - M_I) * Q_I + (1+omega)M_I/B``."""
    if m_lru <= m_ideal:
        raise ValueError("Lemma 2.1 requires M_L > M_I")
    return m_lru / (m_lru - m_ideal) * q_ideal + (1 + omega) * m_ideal / B
