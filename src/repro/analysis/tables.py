"""ASCII table rendering shared by experiments, examples, and benchmarks."""

from __future__ import annotations


def format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: list[dict], columns: list[str] | None = None, title: str = "") -> str:
    """Render a list of row-dicts as a fixed-width ASCII table.

    ``columns`` defaults to the keys of the first row, in insertion order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) for i, col in enumerate(columns)
    ]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(col.ljust(w) for col, w in zip(columns, widths))
    body = "\n".join(
        " | ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    )
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)
