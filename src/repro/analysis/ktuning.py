"""Appendix A / Corollary 4.4: choosing the branching factor k.

The AEM mergesort (and sample sort, heapsort) beats its classic ``k = 1``
counterpart whenever

    k / log k  <  omega / log(M/B)            (Corollary 4.4)

(assuming ``n`` large enough to drop ceilings; the paper notes any integer
``k <= 0.3 omega`` satisfies it for real-world parameters).  This module
provides the feasibility test, a sweep utility, and the paper's practical
recipe: with ``p = ceil(log_{M/B}(n/B))`` levels (usually 2–6), try
``k = ceil((n/B)^{1/p'} / (M/B))`` for every ``1 <= p' <= p`` and keep the
minimiser of the exact Theorem 4.3 cost.
"""

from __future__ import annotations

import math

from ..models.params import MachineParams
from .formulas import mergesort_io_cost


def k_improves(k: int, params: MachineParams) -> bool:
    """Corollary 4.4 feasibility: does branching factor ``k`` lower the
    asymptotic I/O complexity versus ``k = 1``?"""
    if k < 1:
        raise ValueError("k must be >= 1")
    if k == 1:
        return True  # k=1 *is* the classic algorithm
    mb = params.M / params.B
    if mb <= 1:
        return False
    return k / math.log2(k) < params.omega / math.log2(mb)


def feasible_k_region(params: MachineParams, k_max: int | None = None) -> list[int]:
    """All integer ``k`` in ``[1, k_max]`` satisfying Corollary 4.4."""
    if k_max is None:
        k_max = 4 * params.omega
    return [k for k in range(1, k_max + 1) if k_improves(k, params)]


def sweep_k(n: int, params: MachineParams, k_max: int | None = None) -> list[dict]:
    """Exact Theorem 4.3 cost ``(omega + k + 1) ceil(n/B) ceil(log...)`` for
    each ``k``; rows sorted by ``k``."""
    if k_max is None:
        k_max = 4 * params.omega
    rows = []
    for k in range(1, k_max + 1):
        cost = mergesort_io_cost(n, params.M, params.B, k, params.omega)
        rows.append(
            {
                "k": k,
                "predicted_cost": cost,
                "feasible": k_improves(k, params),
            }
        )
    return rows


def choose_k(params: MachineParams, n: int | None = None) -> int:
    """The paper's practical k: minimise the exact Theorem 4.3 cost.

    With ``n`` given, tries the Appendix-A candidates
    ``k = ceil((n/B)^{1/p'} / (M/B))`` for every level budget ``p'`` (plus
    ``k = 1``); without ``n``, falls back to the ``0.3 omega`` rule of thumb
    (clamped to at least 1).
    """
    if n is None:
        return max(1, int(0.3 * params.omega))
    nb = max(2.0, n / params.B)
    mb = params.M / params.B
    p = max(1, math.ceil(math.log(nb) / math.log(max(mb, 2))))
    # k = 1 (the classic algorithm) is always a candidate; every k > 1 must
    # pass the Corollary 4.4 feasibility test before entering the tournament.
    candidates = {1}
    for p_prime in range(1, p + 1):
        k = math.ceil(nb ** (1.0 / p_prime) / mb)
        if k > 1 and k_improves(k, params):
            candidates.add(k)
    best = min(
        candidates,
        key=lambda k: mergesort_io_cost(n, params.M, params.B, k, params.omega),
    )
    return best
