"""Numeric verification of the paper's §5 recurrences.

The §5 theorems assert closed-form solutions to divide-and-conquer
recurrences (Theorem 5.1's sort, §5.2's FFT, Theorem 5.3's matmul).  This
module iterates each recurrence *numerically* (memoized, worst-case
sub-problem sizes) and checks the growth against the claimed closed form —
a bridge between the implementation's measured counts and the theorems'
algebra, and a regression net for the formulas in
:mod:`repro.analysis.formulas`.

All recurrences are evaluated with unit constants on the additive terms, so
"matches" means: the ratio ``T(n) / closed_form(n)`` is bounded and slowly
varying over a geometric range of ``n``.
"""

from __future__ import annotations

import math
from functools import lru_cache


def co_sort_write_recurrence(n: float, M: int, omega: int, B: int) -> float:
    """Theorem 5.1's write recurrence:

        W(n) = n/B + sqrt(omega n) * W(sqrt(n/omega)) + sum_i W(n_i)

    evaluated with the worst-case sub-bucket split (all sub-buckets at the
    bound ``sqrt(n/omega) log n``, summing to ``n``).
    """

    @lru_cache(maxsize=None)
    def W(m: float) -> float:
        if m <= M:
            return m / B
        row = math.sqrt(m / omega)
        rows = math.sqrt(m * omega)
        sub = min(m, row * math.log2(max(m, 2)))
        n_subs = max(1.0, m / sub)
        return m / B + rows * W(_q(row)) + n_subs * W(_q(sub))

    return W(_q(n))


def co_sort_read_recurrence(n: float, M: int, omega: int, B: int) -> float:
    """Theorem 5.1's read recurrence (the ``omega n / B`` additive term)."""

    @lru_cache(maxsize=None)
    def R(m: float) -> float:
        if m <= M:
            return m / B
        row = math.sqrt(m / omega)
        rows = math.sqrt(m * omega)
        sub = min(m, row * math.log2(max(m, 2)))
        n_subs = max(1.0, m / sub)
        return omega * m / B + rows * R(_q(row)) + n_subs * R(_q(sub))

    return R(_q(n))


def fft_write_recurrence(n: float, M: int, omega: int, B: int) -> float:
    """§5.2: ``W(n) = 2 omega sqrt(n/omega) W(sqrt(n/omega)) + n/B``."""

    @lru_cache(maxsize=None)
    def W(m: float) -> float:
        if m <= M:
            return m / B
        child = math.sqrt(m / omega)
        return 2 * omega * child * W(_q(child)) + m / B

    return W(_q(n))


def matmul_write_recurrence(n: float, M: int, omega: int, B: int) -> float:
    """Theorem 5.3 (fixed branching, no randomized first round):
    ``W(n) = omega^3 W(n/omega)`` with base ``W(omega sqrt(M)) = n^2/B``."""

    @lru_cache(maxsize=None)
    def W(m: float) -> float:
        if m <= omega * math.sqrt(M):
            return m * m / B
        return omega**3 * W(_q(m / omega))

    return W(_q(n))


def matmul_write_recurrence_randomized(
    n: float, M: int, omega: int, B: int
) -> float:
    """Theorem 5.3 *with* the randomized first round: expectation over
    ``b`` uniform in ``1..log2(omega)`` of a ``2^b``-way first split
    followed by the fixed ``omega``-way recursion.

    The fixed recursion's write saving oscillates between 1 and ``omega``
    with ``n``'s position between powers of ``omega`` (the base case lands
    at varying sizes); the random first round averages the landing spot,
    which is exactly where the expected ``O(log omega)`` improvement of
    Theorem 5.3 comes from.
    """
    k_max = max(1, int(math.log2(omega)))
    total = 0.0
    for b in range(1, k_max + 1):
        g = 1 << b
        total += g**3 * matmul_write_recurrence(_q(n / g), M, omega, B)
    return total / k_max


def _q(x: float) -> float:
    """Quantize recursion arguments so memoization terminates."""
    return round(x, 6)


# ---------------------------------------------------------------------- #
def ratio_track(
    recurrence,
    closed_form,
    sizes: list[int],
    M: int,
    omega: int,
    B: int,
) -> list[float]:
    """``recurrence(n)/closed_form(n)`` across ``sizes`` — flatness is the
    evidence that the closed form solves the recurrence."""
    out = []
    for n in sizes:
        num = recurrence(n, M, omega, B)
        den = closed_form(n, M, B, omega)
        out.append(num / den if den else float("inf"))
    return out
