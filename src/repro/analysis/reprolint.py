"""reprolint — the repo-specific static linter.

Generic linters keep the Python honest; nothing keeps the *cost model*
honest.  The invariants this repo lives by — every physical block touch
goes through a charged :class:`~repro.models.external_memory.AEMachine`
primitive, kernel-path loops use the batch charge API, service-layer state
is written under its lock, every vectorized kernel has a pinned
slow-reference twin — are all statically checkable, so this module checks
them.  It is a small AST lint framework (rule registry, per-line
suppression, text/JSON reporters, a committed-baseline filter for CI) plus
the repo's rules, which live in :mod:`~repro.analysis.lint_rules`.

Usage::

    PYTHONPATH=src python -m repro lint src benchmarks
    PYTHONPATH=src python -m repro lint --format json src
    PYTHONPATH=src python -m repro lint --baseline tests/lint_baseline.json src

Suppression
-----------
Append ``# reprolint: disable=<rule>[,<rule>...]`` to a line to waive named
rules on that line, or ``# reprolint: disable`` to waive all of them.  A
suppression comment is a claim that the flagged code is *deliberate* —
pair it with a prose comment saying why.

Virtual paths
-------------
Most rules are scoped to parts of the tree (the lock rules to the service
layer, the loop rule to the kernel paths).  Scoping keys off the file's
repo-relative path; a file may override it with a first-lines pragma::

    # reprolint: path=src/repro/service/example.py

which exists so the planted-violation corpus under ``tests/lint_corpus/``
can opt into any rule's scope while living outside it.

Exit codes: 0 — clean (after baseline filtering), 1 — findings, 2 — usage
or parse error.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import os
import re
import sys
from collections.abc import Callable, Iterable, Iterator

#: matches a suppression comment anywhere in a line
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable(?:=([\w\-, ]+))?")
#: matches the virtual-path pragma (first 5 lines of a file)
_PATH_PRAGMA_RE = re.compile(r"^#\s*reprolint:\s*path=(\S+)\s*$")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # virtual (repo-relative) path — what scoping and reports use
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift under unrelated edits, so
        the committed baseline matches on (rule, path, message) only."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class ModuleSource:
    """One parsed file: AST plus the side tables every rule needs."""

    def __init__(self, path: str, text: str, virtual_path: str | None = None):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.virtual_path = virtual_path or _find_path_pragma(self.lines) or path
        # parent map: every rule wants "is this node inside a loop / a
        # with-lock / a function named X" — one upfront pass answers all
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.suppressions = _collect_suppressions(self.lines)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        while node in self.parents:
            node = self.parents[node]
            yield node

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty string if unavailable)."""
        return ast.get_source_segment(self.text, node) or ""

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and ("*" in rules or rule in rules)


def _find_path_pragma(lines: list[str]) -> str | None:
    for raw in lines[:5]:
        m = _PATH_PRAGMA_RE.match(raw.strip())
        if m:
            return m.group(1)
    return None


def _collect_suppressions(lines: list[str]) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    for i, raw in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(raw)
        if not m:
            continue
        names = m.group(1)
        if names is None:
            table[i] = {"*"}
        else:
            table[i] = {n.strip() for n in names.split(",") if n.strip()}
    return table


class LintContext:
    """Cross-file state shared by one lint run (cached reads, repo root)."""

    def __init__(self, root: str = "."):
        self.root = os.path.abspath(root)
        self._file_cache: dict[str, str | None] = {}

    def read_file(self, relpath: str) -> str | None:
        """Text of a repo file by root-relative path, or None (cached)."""
        if relpath not in self._file_cache:
            full = os.path.join(self.root, relpath)
            try:
                with open(full, encoding="utf-8") as fh:
                    self._file_cache[relpath] = fh.read()
            except OSError:
                self._file_cache[relpath] = None
        return self._file_cache[relpath]


@dataclasses.dataclass(frozen=True)
class Rule:
    name: str
    doc: str
    check: Callable[[ModuleSource, LintContext], Iterable[Finding]]


#: the global rule registry — populated by the @rule decorator
RULES: dict[str, Rule] = {}


def rule(name: str, doc: str):
    """Register a rule function ``(module, ctx) -> iterable of Finding``."""

    def decorate(fn):
        if name in RULES:
            raise ValueError(f"duplicate rule name {name!r}")
        RULES[name] = Rule(name, doc, fn)
        return fn

    return decorate


# --------------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------------- #
def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    full = os.path.join(dirpath, fn)
                    if full not in seen:
                        seen.add(full)
                        yield full


def lint_file(
    path: str,
    ctx: LintContext,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    rel = os.path.relpath(path, ctx.root).replace(os.sep, "/")
    module = ModuleSource(rel, text)
    findings: list[Finding] = []
    for r in rules if rules is not None else RULES.values():
        for f in r.check(module, ctx):
            if not module.suppressed(f.rule, f.line):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Iterable[str],
    root: str = ".",
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` with all (or named) rules."""
    # importing the rules module populates RULES as a side effect
    from . import lint_rules  # noqa: F401

    ctx = LintContext(root)
    if rules is None:
        selected = list(RULES.values())
    else:
        unknown = set(rules) - set(RULES)
        if unknown:
            raise KeyError(f"unknown rule(s): {sorted(unknown)}")
        selected = [RULES[name] for name in rules]
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, ctx, selected))
    return findings


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #
def load_baseline(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"baseline {path} must be a JSON list of findings")
    return data


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump([f.to_dict() for f in findings], fh, indent=2, sort_keys=True)
        fh.write("\n")


def filter_baseline(
    findings: Iterable[Finding], baseline: Iterable[dict]
) -> list[Finding]:
    """Drop findings whose fingerprint is grandfathered by the baseline."""
    known = {
        (e.get("rule", ""), e.get("path", ""), e.get("message", ""))
        for e in baseline
    }
    return [f for f in findings if f.fingerprint not in known]


# --------------------------------------------------------------------------- #
# reporting / CLI
# --------------------------------------------------------------------------- #
def render_text(findings: list[Finding], out) -> None:
    for f in findings:
        print(f.render(), file=out)
    n = len(findings)
    print(f"reprolint: {n} finding{'s' if n != 1 else ''}", file=out)


def render_json(findings: list[Finding], out) -> None:
    json.dump([f.to_dict() for f in findings], out, indent=2)
    out.write("\n")


def main(argv: list[str] | None = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Cost-accounting and lock-discipline linter for this repo.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "benchmarks"],
                        help="files or directories to lint (default: src benchmarks)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--rule", action="append", dest="rules", metavar="NAME",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of grandfathered findings to ignore")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--root", default=".",
                        help="repo root that scoped rule paths are relative to")
    args = parser.parse_args(argv)
    out = out if out is not None else sys.stdout

    try:
        findings = lint_paths(args.paths or ["src", "benchmarks"],
                              root=args.root, rules=args.rules)
    except (OSError, SyntaxError, KeyError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(args.write_baseline, findings)
        print(f"reprolint: wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}", file=out)
        return 0

    if args.baseline:
        try:
            findings = filter_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        render_json(findings, out)
    else:
        render_text(findings, out)
    return 1 if findings else 0
