"""reprolint — the repo-specific static linter.

Generic linters keep the Python honest; nothing keeps the *cost model*
honest.  The invariants this repo lives by — every physical block touch
goes through a charged :class:`~repro.models.external_memory.AEMachine`
primitive, kernel-path loops use the batch charge API, service-layer state
is written under its lock, every vectorized kernel has a pinned
slow-reference twin — are all statically checkable, so this module checks
them.  It is a small AST lint framework (rule registry, per-line
suppression, text/JSON reporters, a committed-baseline filter for CI) plus
the repo's rules, which live in :mod:`~repro.analysis.lint_rules`.

Usage::

    PYTHONPATH=src python -m repro lint src benchmarks
    PYTHONPATH=src python -m repro lint --format json src
    PYTHONPATH=src python -m repro lint --baseline tests/lint_baseline.json src

Suppression
-----------
Append ``# reprolint: disable=<rule>[,<rule>...]`` to a line to waive named
rules on that line, or ``# reprolint: disable`` to waive all of them.  A
suppression comment is a claim that the flagged code is *deliberate* —
pair it with a prose comment saying why.

Virtual paths
-------------
Most rules are scoped to parts of the tree (the lock rules to the service
layer, the loop rule to the kernel paths).  Scoping keys off the file's
repo-relative path; a file may override it with a first-lines pragma::

    # reprolint: path=src/repro/service/example.py

which exists so the planted-violation corpus under ``tests/lint_corpus/``
can opt into any rule's scope while living outside it.

Exit codes: 0 — clean (after baseline filtering), 1 — findings, 2 — usage
or parse error.

Caching and parallelism
-----------------------
The CLI keeps an mtime-keyed findings cache (default
``<root>/.reprolint_cache.json``; ``--no-cache`` disables, ``--cache-file``
relocates) so the CI lint gate stays fast as the tree grows: a file is
re-analyzed only when its ``(mtime_ns, size)`` changes or the *environment
fingerprint* — the rule set plus every cross-file input the rules read
(the parity test, boundcheck.py, the core tree, the rules themselves) —
changes.  ``--jobs N`` shards stale files across N worker processes.
Library calls to :func:`lint_paths` default to no cache and one process.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import hashlib
import json
import os
import re
import sys
from collections.abc import Callable, Iterable, Iterator

#: matches a suppression comment anywhere in a line
_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable(?:=([\w\-, ]+))?")
#: matches the virtual-path pragma (first 5 lines of a file)
_PATH_PRAGMA_RE = re.compile(r"^#\s*reprolint:\s*path=(\S+)\s*$")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # virtual (repo-relative) path — what scoping and reports use
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Baseline identity: line numbers drift under unrelated edits, so
        the committed baseline matches on (rule, path, message) only."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class ModuleSource:
    """One parsed file: AST plus the side tables every rule needs."""

    def __init__(self, path: str, text: str, virtual_path: str | None = None):
        self.path = path
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        self.virtual_path = virtual_path or _find_path_pragma(self.lines) or path
        # parent map: every rule wants "is this node inside a loop / a
        # with-lock / a function named X" — one upfront pass answers all
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        self.suppressions = _collect_suppressions(self.lines)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        while node in self.parents:
            node = self.parents[node]
            yield node

    def segment(self, node: ast.AST) -> str:
        """Source text of ``node`` (empty string if unavailable)."""
        return ast.get_source_segment(self.text, node) or ""

    def suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        return rules is not None and ("*" in rules or rule in rules)


def _find_path_pragma(lines: list[str]) -> str | None:
    for raw in lines[:5]:
        m = _PATH_PRAGMA_RE.match(raw.strip())
        if m:
            return m.group(1)
    return None


def _collect_suppressions(lines: list[str]) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    for i, raw in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(raw)
        if not m:
            continue
        names = m.group(1)
        if names is None:
            table[i] = {"*"}
        else:
            table[i] = {n.strip() for n in names.split(",") if n.strip()}
    return table


class LintContext:
    """Cross-file state shared by one lint run (cached reads, repo root)."""

    def __init__(self, root: str = "."):
        self.root = os.path.abspath(root)
        self._file_cache: dict[str, str | None] = {}

    def read_file(self, relpath: str) -> str | None:
        """Text of a repo file by root-relative path, or None (cached)."""
        if relpath not in self._file_cache:
            full = os.path.join(self.root, relpath)
            try:
                with open(full, encoding="utf-8") as fh:
                    self._file_cache[relpath] = fh.read()
            except OSError:
                self._file_cache[relpath] = None
        return self._file_cache[relpath]


@dataclasses.dataclass(frozen=True)
class Rule:
    name: str
    doc: str
    check: Callable[[ModuleSource, LintContext], Iterable[Finding]]


#: the global rule registry — populated by the @rule decorator
RULES: dict[str, Rule] = {}


def rule(name: str, doc: str):
    """Register a rule function ``(module, ctx) -> iterable of Finding``."""

    def decorate(fn):
        if name in RULES:
            raise ValueError(f"duplicate rule name {name!r}")
        RULES[name] = Rule(name, doc, fn)
        return fn

    return decorate


# --------------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------------- #
def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted stream of ``.py`` paths."""
    seen = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for fn in sorted(filenames):
                if fn.endswith(".py"):
                    full = os.path.join(dirpath, fn)
                    if full not in seen:
                        seen.add(full)
                        yield full


def lint_file(
    path: str,
    ctx: LintContext,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    rel = os.path.relpath(path, ctx.root).replace(os.sep, "/")
    module = ModuleSource(rel, text)
    findings: list[Finding] = []
    for r in rules if rules is not None else RULES.values():
        for f in r.check(module, ctx):
            if not module.suppressed(f.rule, f.line):
                findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Iterable[str],
    root: str = ".",
    rules: Iterable[str] | None = None,
    jobs: int = 1,
    cache_path: str | None = None,
    stats: dict | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` with all (or named) rules.

    ``cache_path`` names an mtime-keyed findings cache: files whose
    ``(mtime_ns, size)`` signature matches the cache (under an unchanged
    environment fingerprint — see :func:`_env_fingerprint`) reuse their
    stored findings without re-parsing.  ``jobs > 1`` shards the stale
    files across worker processes.  ``stats``, if given, is populated with
    ``{"files", "cached", "linted", "jobs"}`` counters for reporting.
    """
    # importing the rules module populates RULES as a side effect
    from . import lint_rules  # noqa: F401

    if rules is None:
        selected = list(RULES.values())
    else:
        unknown = set(rules) - set(RULES)
        if unknown:
            raise KeyError(f"unknown rule(s): {sorted(unknown)}")
        selected = [RULES[name] for name in rules]
    rule_names = [r.name for r in selected]

    files = list(iter_python_files(paths))
    fingerprint = _env_fingerprint(root, rule_names)
    cached_findings: dict[str, list[Finding]] = {}
    signatures: dict[str, tuple[int, int] | None] = {
        os.path.abspath(p): _stat_signature(p) for p in files
    }
    if cache_path is not None:
        cache = _load_cache(cache_path, fingerprint)
        for path in files:
            key = os.path.abspath(path)
            entry = cache.get(key)
            sig = signatures[key]
            if entry is not None and sig is not None and entry.get(
                "signature"
            ) == list(sig):
                cached_findings[key] = [
                    Finding(**f) for f in entry.get("findings", [])
                ]

    stale = [p for p in files if os.path.abspath(p) not in cached_findings]
    fresh: dict[str, list[Finding]]
    if jobs > 1 and len(stale) > 1:
        fresh = _lint_parallel(stale, root, rule_names, jobs)
    else:
        ctx = LintContext(root)
        fresh = {
            os.path.abspath(p): lint_file(p, ctx, selected) for p in stale
        }

    if cache_path is not None:
        entries = {}
        for path in files:
            key = os.path.abspath(path)
            sig = signatures[key]
            if sig is None:
                continue
            found = cached_findings.get(key)
            if found is None:
                found = fresh[key]
            entries[key] = {
                "signature": list(sig),
                "findings": [f.to_dict() for f in found],
            }
        _save_cache(cache_path, fingerprint, entries)

    if stats is not None:
        stats["files"] = len(files)
        stats["cached"] = len(cached_findings)
        stats["linted"] = len(stale)
        stats["jobs"] = jobs

    findings: list[Finding] = []
    for path in files:
        key = os.path.abspath(path)
        findings.extend(cached_findings.get(key, fresh.get(key, [])))
    return findings


# --------------------------------------------------------------------------- #
# cache + parallelism
# --------------------------------------------------------------------------- #
#: bump when the cache entry format (not rule behavior) changes
CACHE_VERSION = 1


def _cache_dependencies(root: str) -> list[str]:
    """Cross-file inputs the rules read: a change to any of these can flip
    findings in *other* files, so they all feed the environment fingerprint
    (changing one invalidates the whole cache)."""
    deps = [
        os.path.join(root, "src", "repro", "analysis", "boundcheck.py"),
        os.path.join(root, "src", "repro", "analysis", "lint_rules.py"),
        os.path.join(root, "src", "repro", "analysis", "reprolint.py"),
        os.path.join(root, "src", "repro", "models", "external_memory.py"),
        os.path.join(root, "tests", "test_kernel_parity.py"),
    ]
    # the flow rules read the whole project (call graph + lock model), so
    # every module a summary can flow through is a cache input
    for sub in (
        ("src", "repro", "core"),
        ("src", "repro", "service"),
        ("src", "repro", "planner"),
        ("src", "repro", "analysis", "flow"),
    ):
        subdir = os.path.join(root, *sub)
        if os.path.isdir(subdir):
            deps.extend(
                os.path.join(subdir, fn)
                for fn in sorted(os.listdir(subdir))
                if fn.endswith(".py")
            )
    return deps


def _stat_signature(path: str) -> tuple[int, int] | None:
    """Cheap change detector for one file: ``(mtime_ns, size)`` or None."""
    try:
        st = os.stat(path)
    except OSError:
        return None
    return (st.st_mtime_ns, st.st_size)


def _analysis_content_hash(root: str) -> str:
    """Content hash of every module in the analysis package.  The rules'
    *behavior* lives here; mtimes churn under checkouts and touch(1), so
    the fingerprint reads the bytes."""
    h = hashlib.sha256()
    pkg = os.path.join(root, "src", "repro", "analysis")
    for dirpath, dirnames, filenames in os.walk(pkg):
        dirnames[:] = sorted(
            d for d in dirnames if not d.startswith(".") and d != "__pycache__"
        )
        for fn in sorted(filenames):
            if not fn.endswith(".py"):
                continue
            full = os.path.join(dirpath, fn)
            h.update(b"\0file:" + os.path.relpath(full, pkg).encode())
            try:
                with open(full, "rb") as fh:
                    h.update(fh.read())
            except OSError:
                h.update(b"<unreadable>")
    return h.hexdigest()


def _env_fingerprint(root: str, rule_names: Iterable[str]) -> str:
    """Hash of everything that can change findings besides the linted file
    itself: cache format, interpreter version (AST shapes and analysis
    results can differ across Pythons), active rule set, the analysis
    package's own content, and cross-file dependency signatures."""
    h = hashlib.sha256()
    h.update(f"v{CACHE_VERSION}".encode())
    h.update(b"\0python:" + sys.version.encode())
    h.update(b"\0analysis:" + _analysis_content_hash(root).encode())
    for name in sorted(rule_names):
        h.update(b"\0rule:" + name.encode())
    for dep in _cache_dependencies(root):
        h.update(b"\0dep:" + dep.encode())
        h.update(repr(_stat_signature(dep)).encode())
    return h.hexdigest()


def _load_cache(path: str, fingerprint: str) -> dict:
    """Per-file cache entries, or {} when absent/corrupt/stale-environment."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("fingerprint") != fingerprint:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(path: str, fingerprint: str, entries: dict) -> None:
    """Best-effort atomic rewrite — a read-only checkout just skips caching."""
    payload = {"fingerprint": fingerprint, "files": entries}
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _lint_files_chunk(task: tuple[list[str], str, list[str]]) -> list[tuple]:
    """Worker-process entry: lint one chunk of files, return picklable pairs
    of ``(abspath, [finding dict, ...])``."""
    paths, root, rule_names = task
    from . import lint_rules  # noqa: F401  (populate RULES in the worker)

    ctx = LintContext(root)
    selected = [RULES[name] for name in rule_names]
    out = []
    for path in paths:
        findings = lint_file(path, ctx, selected)
        out.append((os.path.abspath(path), [f.to_dict() for f in findings]))
    return out


def _lint_parallel(
    paths: list[str], root: str, rule_names: list[str], jobs: int
) -> dict[str, list[Finding]]:
    """Shard ``paths`` round-robin across ``jobs`` worker processes."""
    import concurrent.futures

    jobs = max(1, min(jobs, len(paths)))
    chunks = [paths[i::jobs] for i in range(jobs)]
    tasks = [(chunk, root, rule_names) for chunk in chunks if chunk]
    results: dict[str, list[Finding]] = {}
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        for pairs in pool.map(_lint_files_chunk, tasks):
            for key, dicts in pairs:
                results[key] = [Finding(**d) for d in dicts]
    return results


# --------------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------------- #
def load_baseline(path: str) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"baseline {path} must be a JSON list of findings")
    return data


def save_baseline(path: str, findings: Iterable[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump([f.to_dict() for f in findings], fh, indent=2, sort_keys=True)
        fh.write("\n")


def filter_baseline(
    findings: Iterable[Finding], baseline: Iterable[dict]
) -> list[Finding]:
    """Drop findings whose fingerprint is grandfathered by the baseline."""
    known = {
        (e.get("rule", ""), e.get("path", ""), e.get("message", ""))
        for e in baseline
    }
    return [f for f in findings if f.fingerprint not in known]


# --------------------------------------------------------------------------- #
# reporting / CLI
# --------------------------------------------------------------------------- #
def render_text(findings: list[Finding], out) -> None:
    for f in findings:
        print(f.render(), file=out)
    n = len(findings)
    print(f"reprolint: {n} finding{'s' if n != 1 else ''}", file=out)


def render_json(findings: list[Finding], out) -> None:
    json.dump([f.to_dict() for f in findings], out, indent=2)
    out.write("\n")


def _explain_rule(name: str, out) -> int:
    """Print one rule's contract: its registry doc plus the check
    function's own docstring (the longer statement of what it proves)."""
    from . import lint_rules  # noqa: F401  (populate RULES)

    r = RULES.get(name)
    if r is None:
        print(
            f"reprolint: error: unknown rule {name!r} "
            f"(known: {', '.join(sorted(RULES))})",
            file=sys.stderr,
        )
        return 2
    print(f"{r.name}:", file=out)
    print(f"  {r.doc}", file=out)
    doc = getattr(r.check, "__doc__", None)
    if doc:
        print("", file=out)
        for line in doc.strip().splitlines():
            print(f"  {line.strip()}", file=out)
    return 0


def _dump_graphs(root: str, outdir: str, out) -> int:
    """Write callgraph.json and lock_order.json (the CI artifacts)."""
    from .flow import analyze_lockset, build_project_index
    from .lint_rules import _flow_sources, _flow_suppressions

    ctx = LintContext(root)
    index = build_project_index(_flow_sources(ctx))
    result = analyze_lockset(index, _flow_suppressions(ctx))
    try:
        os.makedirs(outdir, exist_ok=True)
        cg_path = os.path.join(outdir, "callgraph.json")
        lo_path = os.path.join(outdir, "lock_order.json")
        with open(cg_path, "w", encoding="utf-8") as fh:
            json.dump(index.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        with open(lo_path, "w", encoding="utf-8") as fh:
            json.dump(result.order_graph_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    except OSError as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2
    print(
        f"reprolint: wrote {cg_path} ({len(index.functions)} functions, "
        f"{sum(len(v) for v in index.edges.values())} edges) and {lo_path} "
        f"({len(result.order_edges)} lock-order edges, "
        f"{len(result.cycles)} cycles)",
        file=out,
    )
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Cost-accounting and lock-discipline linter for this repo.",
    )
    parser.add_argument("paths", nargs="*", default=["src", "benchmarks"],
                        help="files or directories to lint (default: src benchmarks)")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--rule", action="append", dest="rules", metavar="NAME",
                        help="run only the named rule (repeatable)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="JSON baseline of grandfathered findings to ignore")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--root", default=".",
                        help="repo root that scoped rule paths are relative to")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint stale files across N worker processes")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the mtime-keyed findings cache")
    parser.add_argument("--cache-file", metavar="FILE",
                        help="cache location (default: <root>/.reprolint_cache.json)")
    parser.add_argument("--explain", metavar="RULE",
                        help="print the named rule's contract and exit")
    parser.add_argument("--dump-graphs", metavar="DIR",
                        help="serialize the project call graph and static "
                             "lock-order graph under DIR and exit")
    args = parser.parse_args(argv)
    out = out if out is not None else sys.stdout

    if args.explain:
        return _explain_rule(args.explain, out)
    if args.dump_graphs:
        return _dump_graphs(args.root, args.dump_graphs, out)

    if args.no_cache:
        cache_path = None
    elif args.cache_file:
        cache_path = args.cache_file
    else:
        cache_path = os.path.join(args.root, ".reprolint_cache.json")

    try:
        findings = lint_paths(args.paths or ["src", "benchmarks"],
                              root=args.root, rules=args.rules,
                              jobs=max(1, args.jobs), cache_path=cache_path)
    except (OSError, SyntaxError, KeyError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(args.write_baseline, findings)
        print(f"reprolint: wrote {len(findings)} finding(s) to "
              f"{args.write_baseline}", file=out)
        return 0

    if args.baseline:
        try:
            findings = filter_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"reprolint: error: {exc}", file=sys.stderr)
            return 2

    if args.format == "json":
        render_json(findings, out)
    else:
        render_text(findings, out)
    return 1 if findings else 0
