"""Asynchronous sort-job service: submit/futures, priority dispatch, serving.

The execution surface up through the :class:`~repro.engine.SortEngine`
redesign was synchronous — every entry point blocked its caller until the
sort finished.  This subsystem adds the submission-oriented surface a
persistent, heavily-trafficked deployment needs:

* :mod:`~repro.service.futures` — :class:`SortFuture` result handles with
  result / exception / cancel / done-callback semantics;
* :mod:`~repro.service.scheduler` — :class:`SortService`, the
  priority-queue dispatcher over a **persistent** worker pool (thread or
  long-lived worker processes that survive across submissions, with
  worker-death isolation and respawn);
* :mod:`~repro.service.server` — ``python -m repro serve``: the
  newline-delimited-JSON line protocol over a local socket, plus
  :class:`ServiceClient` for Python callers.

``engine.batch()`` and the legacy ``run_batch`` shim are thin clients of
this layer (``submit_many`` + ``gather``), parity-tested against the
one-shot :func:`~repro.planner.batch.execute_batch` reference.
"""

from ..planner.sharding import WorkerDiedError
from .backoff import Deadline, backoff_delay, backoff_delays
from .futures import CANCELLED, FINISHED, PENDING, RUNNING, SortFuture, wait
from .scheduler import (
    ADMISSION_POLICIES,
    PRIORITY_CONTROL,
    QueueFullError,
    SortService,
    default_pool_width,
)
from .server import EngineServer, ServiceClient, ServiceError

__all__ = [
    "ADMISSION_POLICIES",
    "CANCELLED",
    "Deadline",
    "EngineServer",
    "FINISHED",
    "PENDING",
    "PRIORITY_CONTROL",
    "QueueFullError",
    "RUNNING",
    "ServiceClient",
    "ServiceError",
    "SortFuture",
    "SortService",
    "WorkerDiedError",
    "backoff_delay",
    "backoff_delays",
    "default_pool_width",
    "wait",
]
