"""The persistent engine server: sort jobs over a local socket.

``python -m repro serve`` turns a :class:`~repro.service.SortService` into a
long-running process other programs talk to — the ROADMAP's "accept jobs
over a socket/queue" item.  The protocol is deliberately primitive so any
language (or ``nc``) can speak it:

* one TCP connection per client, **newline-delimited JSON** both ways;
* every request is one object with an ``"op"`` field; every response is one
  object with ``"ok": true/false``;
* ``submit`` returns a **ticket id** immediately; ``result`` blocks (the
  server runs one handler thread per connection, so only that client
  waits) and *consumes* the ticket on a terminal reply unless ``"keep":
  true`` — the registry stays bounded by the in-flight work, not by
  history; ``cancel`` / ``status`` / ``stats`` / ``ping`` / ``shutdown``
  round out the surface.

Request → response examples::

    {"op": "submit", "data": [5, 3, 1], "priority": 0}
        → {"ok": true, "ticket": 0}
    {"op": "result", "ticket": 0}
        → {"ok": true, "ticket": 0, "n": 3, "output": [1, 3, 5],
           "algorithm": "...", "family": "...", "reads": 2, "writes": 2,
           "cost": 18.0}
    {"op": "cancel", "ticket": 7}   → {"ok": true, "cancelled": true}
    {"op": "status", "ticket": 7}   → {"ok": true, "state": "PENDING"}
    {"op": "stats"}                 → {"ok": true, "stats": {...}}
    {"op": "shutdown"}              → {"ok": true, "stopping": true}

:class:`ServiceClient` wraps the socket plumbing for Python callers (tests,
examples, the CI smoke): ``submit`` / ``result`` / ``sort`` /
``submit_many`` / ``gather`` and a ``retries`` knob that polls until the
server is up.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from concurrent.futures import CancelledError

from ..analysis.locksan import wrap_lock
from ..planner.batch import SortJob
from .futures import SortFuture
from .scheduler import SortService


class ServiceError(RuntimeError):
    """A server-side failure reported over the wire (``ok: false``)."""

    def __init__(self, message: str, reply: dict | None = None):
        super().__init__(message)
        self.reply = reply or {}


class _Handler(socketserver.StreamRequestHandler):
    """One thread per connection; requests are processed in arrival order
    on that connection (blocking ``result`` calls only stall their own
    client)."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                reply = {"ok": False, "error": f"invalid request: {exc}"}
            else:
                reply = self.server.engine_server.dispatch(request)
            try:
                self.wfile.write((json.dumps(reply) + "\n").encode("utf-8"))
                self.wfile.flush()
            except (OSError, BrokenPipeError):
                return  # client went away mid-reply
            if reply.get("stopping"):
                return


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    engine_server: "EngineServer"


class EngineServer:
    """Line-protocol façade over one :class:`SortService`.

    ``port=0`` binds an OS-assigned ephemeral port; read the real address
    from :attr:`address`.  ``start()`` serves in a background thread (for
    tests / embedding); :meth:`serve_forever` blocks (the CLI path).

    Registry bounds: default eviction is consumption — a terminal ``result``
    reply drops the ticket.  Clients that ask ``"keep": true`` (or never
    collect) would still grow the registry without bound, so two optional
    knobs cap it: ``ticket_ttl`` evicts *finished* tickets ``ttl`` seconds
    after completion, and ``max_tickets`` evicts the oldest finished
    tickets beyond the cap.  In-flight tickets are never evicted by either
    knob.  ``clock`` is injectable for tests (monotonic seconds).
    """

    def __init__(
        self,
        service: SortService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ticket_ttl: float | None = None,
        max_tickets: int | None = None,
        clock=time.monotonic,
    ):
        self.service = service
        self._server = _TCPServer((host, port), _Handler)
        self._server.engine_server = self
        self._tickets: dict[int, SortFuture] = {}
        self._lock = wrap_lock(threading.Lock(), "EngineServer._lock")
        self._thread: threading.Thread | None = None
        if ticket_ttl is not None and ticket_ttl < 0:
            raise ValueError(f"ticket_ttl must be >= 0, got {ticket_ttl}")
        if max_tickets is not None and max_tickets < 1:
            raise ValueError(f"max_tickets must be >= 1, got {max_tickets}")
        self._ticket_ttl = ticket_ttl
        self._max_tickets = max_tickets
        self._clock = clock
        #: completion stamps for finished-but-unconsumed tickets (subset of
        #: ``_tickets`` keys; maintained lazily by :meth:`_purge`)
        self._done_at: dict[int, float] = {}
        self._evictions = 0

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> "EngineServer":
        thread = threading.Thread(
            target=self._server.serve_forever, daemon=True, name="sort-serve"
        )
        with self._lock:
            self._thread = thread
        thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def close(self) -> None:
        """Stop the listener (idempotent).  The service is left to its
        owner — the CLI shuts it down, embedded users may keep it."""
        self._server.shutdown()
        self._server.server_close()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5)

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #
    def dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return handler(request)
        except ServiceError as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _job_from(self, spec: dict) -> tuple[SortJob, float, bool]:
        data = spec.get("data")
        if not isinstance(data, list):
            raise ServiceError("submit needs 'data': a JSON array of records")
        job = SortJob(
            data=data,
            label=str(spec.get("label", "")),
            algorithm=spec.get("algorithm"),
            k=spec.get("k"),
        )
        return job, spec.get("priority", 0), bool(spec.get("check_sorted", False))

    def _purge(self) -> int:
        """TTL / capacity sweep over the ticket registry; returns evictions.

        Piggybacked on registry traffic (:meth:`_register`, :meth:`_lookup`,
        ``stats``) rather than run on a timer thread.  Finished tickets are
        stamped on first sight via the non-blocking ``SortFuture.done()``
        (never ``result()`` — this runs under the registry lock), then
        dropped once older than ``ticket_ttl``; if ``max_tickets`` is still
        exceeded, the oldest-finished tickets go next.  In-flight tickets
        always survive.
        """
        if self._ticket_ttl is None and self._max_tickets is None:
            return 0
        now = self._clock()
        evicted = 0
        with self._lock:
            for ticket, future in self._tickets.items():
                if ticket not in self._done_at and future.done():
                    self._done_at[ticket] = now
            if self._ticket_ttl is not None:
                for ticket in [
                    t for t, at in self._done_at.items()
                    if now - at >= self._ticket_ttl
                ]:
                    del self._tickets[ticket]
                    del self._done_at[ticket]
                    evicted += 1
            if self._max_tickets is not None and len(self._tickets) > self._max_tickets:
                for _, ticket in sorted((at, t) for t, at in self._done_at.items()):
                    if len(self._tickets) <= self._max_tickets:
                        break
                    del self._tickets[ticket]
                    del self._done_at[ticket]
                    evicted += 1
            self._evictions += evicted
        return evicted

    def _register(self, future: SortFuture) -> int:
        self._purge()
        with self._lock:
            self._tickets[future.ticket] = future
        return future.ticket

    def _lookup(self, request: dict) -> SortFuture:
        self._purge()
        ticket = request.get("ticket")
        with self._lock:
            future = self._tickets.get(ticket)
        if future is None:
            raise ServiceError(f"unknown ticket {ticket!r}")
        return future

    # ---- ops --------------------------------------------------------- #
    def _op_ping(self, request: dict) -> dict:
        return {"ok": True, "pong": True}

    def _op_submit(self, request: dict) -> dict:
        job, priority, check_sorted = self._job_from(request)
        future = self.service.submit(job, priority, check_sorted=check_sorted)
        return {"ok": True, "ticket": self._register(future)}

    def _op_submit_many(self, request: dict) -> dict:
        specs = request.get("jobs")
        if not isinstance(specs, list):
            raise ServiceError("submit_many needs 'jobs': an array of job objects")
        tickets = []
        for spec in specs:
            job, priority, check_sorted = self._job_from(spec)
            future = self.service.submit(job, priority, check_sorted=check_sorted)
            tickets.append(self._register(future))
        return {"ok": True, "tickets": tickets}

    def _evict(self, ticket, keep: bool) -> None:
        """Drop a consumed ticket unless the client asked to keep it.

        Retained futures hold the job's input *and* its sorted output; a
        long-running server that never evicted would grow without bound, so
        a terminal ``result`` reply consumes the ticket by default
        (``"keep": true`` opts into re-reading it later)."""
        if keep:
            return
        with self._lock:
            self._tickets.pop(ticket, None)
            self._done_at.pop(ticket, None)

    def _op_result(self, request: dict) -> dict:
        future = self._lookup(request)
        timeout = request.get("timeout")
        keep = bool(request.get("keep", False))
        try:
            rep = future.result(timeout)
        except TimeoutError:  # not terminal: the ticket stays retrievable
            return {"ok": False, "error": "timeout", "pending": True,
                    "state": future.state}
        except CancelledError:
            self._evict(future.ticket, keep)
            return {"ok": False, "error": "cancelled", "cancelled": True}
        except Exception as exc:  # noqa: BLE001 — job failures travel as replies
            self._evict(future.ticket, keep)
            return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        self._evict(future.ticket, keep)
        return {
            "ok": True,
            "ticket": future.ticket,
            "n": rep.n,
            "algorithm": rep.algorithm,
            "family": rep.family,
            "output": rep.output,
            "reads": rep.reads,
            "writes": rep.writes,
            "cost": rep.cost(),
            "wall_seconds": future.wall_seconds or 0.0,
            "cpu_seconds": future.cpu_seconds or 0.0,
        }

    def _op_status(self, request: dict) -> dict:
        return {"ok": True, "state": self._lookup(request).state}

    def _op_cancel(self, request: dict) -> dict:
        return {"ok": True, "cancelled": self._lookup(request).cancel()}

    def _op_stats(self, request: dict) -> dict:
        self._purge()
        with self._lock:
            tickets = len(self._tickets)
            evictions = self._evictions
        return {
            "ok": True,
            "stats": {
                **self.service.stats(),
                "tickets": tickets,
                "ticket_evictions": evictions,
            },
        }

    def _op_shutdown(self, request: dict) -> dict:
        # stop the listener from a helper thread: shutdown() blocks until
        # serve_forever exits, which must not happen on a handler thread
        threading.Thread(target=self._server.shutdown, daemon=True).start()
        return {"ok": True, "stopping": True}


class ServiceClient:
    """Python-side speaker of the serve line protocol.

    One TCP connection, blocking request/response.  ``retries`` polls the
    connect until the server is listening (handy right after launching
    ``python -m repro serve`` in the background).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retries: int = 0,
        retry_delay: float = 0.1,
        timeout: float | None = None,
    ):
        last_error: Exception | None = None
        for _ in range(max(1, retries + 1)):
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError as exc:
                last_error = exc
                time.sleep(retry_delay)
        else:
            raise ConnectionError(
                f"cannot reach sort server at {host}:{port}: {last_error}"
            )
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def request(self, payload: dict) -> dict:
        """Send one raw request object; return the raw reply object."""
        line = json.dumps(payload) + "\n"
        # deliberate: the lock IS the request pipeline — it serializes the
        # send/recv pair so concurrent callers cannot interleave replies
        with self._lock:
            self._sock.sendall(line.encode("utf-8"))  # reprolint: disable=lock-discipline
            reply = self._rfile.readline()  # reprolint: disable=lock-discipline
        if not reply:
            raise ConnectionError("server closed the connection")
        return json.loads(reply)

    def _checked(self, payload: dict) -> dict:
        reply = self.request(payload)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request failed"), reply)
        return reply

    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def submit(
        self,
        data,
        priority: float = 0,
        *,
        algorithm: str | None = None,
        k: int | None = None,
        label: str = "",
        check_sorted: bool = False,
    ) -> int:
        """Submit one job; return its ticket id."""
        return self._checked(
            {
                "op": "submit",
                "data": list(data),
                "priority": priority,
                "algorithm": algorithm,
                "k": k,
                "label": label,
                "check_sorted": check_sorted,
            }
        )["ticket"]

    def submit_many(self, datasets, priority: float = 0) -> list[int]:
        return self._checked(
            {
                "op": "submit_many",
                "jobs": [{"data": list(d), "priority": priority} for d in datasets],
            }
        )["tickets"]

    def result(
        self, ticket: int, timeout: float | None = None, *, keep: bool = False
    ) -> dict:
        """Block until the job finishes; return the result record
        (``output``, ``algorithm``, ``reads``, ``writes``, ``cost`` …).
        Raises :class:`ServiceError` on job failure / cancellation /
        timeout.

        A terminal reply *consumes* the ticket server-side (re-asking
        reports it unknown) so the server's memory stays bounded; pass
        ``keep=True`` to leave it retrievable again."""
        payload: dict = {"op": "result", "ticket": ticket}
        if timeout is not None:
            payload["timeout"] = timeout
        if keep:
            payload["keep"] = True
        return self._checked(payload)

    def gather(self, tickets, timeout: float | None = None) -> list[dict]:
        return [self.result(t, timeout) for t in tickets]

    def sort(self, data, **kwargs) -> list:
        """Synchronous convenience: submit + result → the sorted records."""
        return self.result(self.submit(data, **kwargs))["output"]

    def status(self, ticket: int) -> str:
        return self._checked({"op": "status", "ticket": ticket})["state"]

    def cancel(self, ticket: int) -> bool:
        return bool(self._checked({"op": "cancel", "ticket": ticket})["cancelled"])

    def stats(self) -> dict:
        return self._checked({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        """Ask the server to stop listening (in-flight work still drains
        server-side)."""
        self._checked({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
