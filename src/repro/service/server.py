"""The persistent engine server: sort jobs over a local socket.

``python -m repro serve`` turns a :class:`~repro.service.SortService` into a
long-running process other programs talk to — the ROADMAP's "accept jobs
over a socket/queue" item.  The protocol is deliberately primitive so any
language (or ``nc``) can speak it:

* one TCP connection per client, **newline-delimited JSON** both ways;
* every request is one object with an ``"op"`` field; every response is one
  object with ``"ok": true/false``;
* ``submit`` returns a **ticket id** immediately; ``result`` blocks (the
  server runs one handler thread per connection, so only that client
  waits) and *consumes* the ticket on a terminal reply unless ``"keep":
  true`` — the registry stays bounded by the in-flight work, not by
  history; ``cancel`` / ``status`` / ``stats`` / ``ping`` / ``shutdown``
  round out the surface.

Request → response examples::

    {"op": "submit", "data": [5, 3, 1], "priority": 0}
        → {"ok": true, "ticket": 0}
    {"op": "result", "ticket": 0}
        → {"ok": true, "ticket": 0, "n": 3, "output": [1, 3, 5],
           "algorithm": "...", "family": "...", "reads": 2, "writes": 2,
           "cost": 18.0}
    {"op": "cancel", "ticket": 7}   → {"ok": true, "cancelled": true}
    {"op": "status", "ticket": 7}   → {"ok": true, "state": "PENDING"}
    {"op": "stats"}                 → {"ok": true, "stats": {...}}
    {"op": "shutdown"}              → {"ok": true, "stopping": true}

:class:`ServiceClient` wraps the socket plumbing for Python callers (tests,
examples, the CI smoke): ``submit`` / ``result`` / ``sort`` /
``submit_many`` / ``gather`` and a ``retries`` knob that polls until the
server is up.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from concurrent.futures import CancelledError

from ..analysis.locksan import wrap_lock
from ..planner.batch import SortJob
from ..testing import faults
from .backoff import backoff_delay
from .futures import SortFuture
from .scheduler import QueueFullError, SortService

#: hard cap on one request line — a runaway (or malicious) client must not
#: be able to buffer unbounded bytes into the handler thread
MAX_LINE_BYTES = 64 * 1024 * 1024


class ServiceError(RuntimeError):
    """A server-side failure reported over the wire (``ok: false``)."""

    def __init__(self, message: str, reply: dict | None = None):
        super().__init__(message)
        self.reply = reply or {}

    @property
    def overloaded(self) -> bool:
        """Did the server shed this request for load (``overloaded`` /
        ``quota exceeded``)?  Retryable after ``retry_after`` seconds."""
        return self.reply.get("error") in ("overloaded", "quota exceeded")

    @property
    def retry_after(self) -> float | None:
        return self.reply.get("retry_after")


class _Handler(socketserver.StreamRequestHandler):
    """One thread per connection; requests are processed in arrival order
    on that connection (blocking ``result`` calls only stall their own
    client).

    Hardening contract: no client byte stream may tear this thread down.
    Garbage, truncated lines (a client dying mid-send), oversized lines and
    mid-reply disconnects all end in an ``ok: false`` reply or a clean
    connection close — the *server* and its other connections are
    unaffected either way.
    """

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        try:
            self._serve_lines()
        except (OSError, ValueError):
            # connection reset / torn stream mid-read: close this
            # connection quietly, never the handler pool
            return

    def _serve_lines(self) -> None:  # pragma: no cover - exercised via sockets
        while True:
            raw = self.rfile.readline(MAX_LINE_BYTES + 1)
            if not raw:
                return  # clean EOF (includes a trailing truncated send)
            if len(raw) > MAX_LINE_BYTES:
                # the stream is desynchronized beyond repair: reply, close
                self._reply({
                    "ok": False,
                    "error": f"request line exceeds {MAX_LINE_BYTES} bytes",
                })
                return
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                reply = {"ok": False, "error": f"invalid request: {exc}"}
            else:
                reply = self.server.engine_server.dispatch(
                    request, client=self.client_address
                )
            if not self._reply(reply):
                return  # client went away mid-reply
            if reply.get("stopping"):
                return

    def _reply(self, reply: dict) -> bool:  # pragma: no cover - via sockets
        try:
            payload = json.dumps(reply)
        except (TypeError, ValueError):
            # a handler produced an unserializable value; degrade to an
            # error reply instead of killing the connection
            payload = json.dumps(
                {"ok": False, "error": "server produced an unserializable reply"}
            )
        try:
            self.wfile.write((payload + "\n").encode("utf-8"))
            self.wfile.flush()
        except (OSError, BrokenPipeError):
            return False
        return True


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    engine_server: "EngineServer"


class EngineServer:
    """Line-protocol façade over one :class:`SortService`.

    ``port=0`` binds an OS-assigned ephemeral port; read the real address
    from :attr:`address`.  ``start()`` serves in a background thread (for
    tests / embedding); :meth:`serve_forever` blocks (the CLI path).

    Registry bounds: default eviction is consumption — a terminal ``result``
    reply drops the ticket.  Clients that ask ``"keep": true`` (or never
    collect) would still grow the registry without bound, so two optional
    knobs cap it: ``ticket_ttl`` evicts *finished* tickets ``ttl`` seconds
    after completion, and ``max_tickets`` evicts the oldest finished
    tickets beyond the cap.  In-flight tickets are never evicted by either
    knob.  ``clock`` is injectable for tests (monotonic seconds).
    """

    def __init__(
        self,
        service: SortService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ticket_ttl: float | None = None,
        max_tickets: int | None = None,
        max_client_tickets: int | None = None,
        clock=time.monotonic,
    ):
        self.service = service
        self._server = _TCPServer((host, port), _Handler)
        self._server.engine_server = self
        self._tickets: dict[int, SortFuture] = {}
        self._lock = wrap_lock(threading.Lock(), "EngineServer._lock")
        self._thread: threading.Thread | None = None
        if ticket_ttl is not None and ticket_ttl < 0:
            raise ValueError(f"ticket_ttl must be >= 0, got {ticket_ttl}")
        if max_tickets is not None and max_tickets < 1:
            raise ValueError(f"max_tickets must be >= 1, got {max_tickets}")
        if max_client_tickets is not None and max_client_tickets < 1:
            raise ValueError(
                f"max_client_tickets must be >= 1, got {max_client_tickets}"
            )
        self._ticket_ttl = ticket_ttl
        self._max_tickets = max_tickets
        self._max_client_tickets = max_client_tickets
        self._clock = clock
        #: completion stamps for finished-but-unconsumed tickets (subset of
        #: ``_tickets`` keys; maintained lazily by :meth:`_purge`)
        self._done_at: dict[int, float] = {}
        #: per-client quota bookkeeping: which client owns each live ticket,
        #: and how many each client currently holds
        self._ticket_owner: dict[int, tuple] = {}
        self._client_tickets: dict[tuple, int] = {}
        self._evictions = 0
        self._quota_rejections = 0

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> "EngineServer":
        thread = threading.Thread(
            target=self._server.serve_forever, daemon=True, name="sort-serve"
        )
        with self._lock:
            self._thread = thread
        thread.start()
        return self

    def serve_forever(self) -> None:
        self._server.serve_forever()

    def close(self) -> None:
        """Stop the listener (idempotent).  The service is left to its
        owner — the CLI shuts it down, embedded users may keep it."""
        self._server.shutdown()
        self._server.server_close()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5)

    def __enter__(self) -> "EngineServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #
    def dispatch(self, request: dict, client: tuple | None = None) -> dict:
        """Route one request object to its ``_op_*`` handler.

        ``client`` is the peer address of the connection the request came
        in on — the identity per-client ticket quotas are charged to.
        Overload is a *reply*, not an exception: a bounded-queue rejection
        surfaces as ``{"ok": false, "error": "overloaded", "retry_after"}``
        so shed clients learn when to come back.
        """
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        plan = faults.active()
        if plan is not None and plan.should_fire("slow-host"):
            time.sleep(plan.slow_seconds)  # injected stall: server is "slow"
        try:
            return handler(request, client)
        except QueueFullError as exc:
            return {
                "ok": False,
                "error": "overloaded",
                "retry_after": exc.retry_after,
                "queued": exc.queued,
                "max_queue": exc.max_queue,
                "policy": exc.policy,
            }
        except ServiceError as exc:
            return {"ok": False, **exc.reply, "error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — a bad request must not kill the server
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _job_from(self, spec: dict) -> tuple[SortJob, float, bool]:
        data = spec.get("data")
        if not isinstance(data, list):
            raise ServiceError("submit needs 'data': a JSON array of records")
        job = SortJob(
            data=data,
            label=str(spec.get("label", "")),
            algorithm=spec.get("algorithm"),
            k=spec.get("k"),
        )
        return job, spec.get("priority", 0), bool(spec.get("check_sorted", False))

    def _purge(self) -> int:
        """TTL / capacity sweep over the ticket registry; returns evictions.

        Piggybacked on registry traffic (:meth:`_register`, :meth:`_lookup`,
        ``stats``) rather than run on a timer thread.  Finished tickets are
        stamped on first sight via the non-blocking ``SortFuture.done()``
        (never ``result()`` — this runs under the registry lock), then
        dropped once older than ``ticket_ttl``; if ``max_tickets`` is still
        exceeded, the oldest-finished tickets go next.  In-flight tickets
        always survive.
        """
        if self._ticket_ttl is None and self._max_tickets is None:
            return 0
        now = self._clock()
        evicted = 0
        with self._lock:
            for ticket, future in self._tickets.items():
                if ticket not in self._done_at and future.done():
                    self._done_at[ticket] = now
            if self._ticket_ttl is not None:
                for ticket in [
                    t for t, at in self._done_at.items()
                    if now - at >= self._ticket_ttl
                ]:
                    self._drop_ticket_locked(ticket)
                    evicted += 1
            if self._max_tickets is not None and len(self._tickets) > self._max_tickets:
                for _, ticket in sorted((at, t) for t, at in self._done_at.items()):
                    if len(self._tickets) <= self._max_tickets:
                        break
                    self._drop_ticket_locked(ticket)
                    evicted += 1
            self._evictions += evicted
        return evicted

    def _drop_ticket_locked(self, ticket: int) -> None:
        """Remove one ticket and release its owner's quota charge (caller
        holds ``_lock``)."""
        self._tickets.pop(ticket, None)
        self._done_at.pop(ticket, None)
        owner = self._ticket_owner.pop(ticket, None)
        if owner is not None:
            held = self._client_tickets.get(owner, 0) - 1
            if held > 0:
                # caller holds _lock (the _locked suffix is the contract)
                self._client_tickets[owner] = held  # reprolint: disable=lock-discipline
            else:
                self._client_tickets.pop(owner, None)

    def _check_quota(self, client: tuple | None) -> None:
        """Refuse a submit that would push ``client`` past its ticket quota
        — a per-client bound so one greedy connection cannot starve the
        fleet even when the global queue still has room."""
        if self._max_client_tickets is None or client is None:
            return
        with self._lock:
            held = self._client_tickets.get(client, 0)
            if held < self._max_client_tickets:
                return
            self._quota_rejections += 1
        raise ServiceError(
            "quota exceeded",
            {
                "retry_after": self.service.retry_hint(),
                "held": held,
                "max_client_tickets": self._max_client_tickets,
            },
        )

    def _register(self, future: SortFuture, client: tuple | None = None) -> int:
        self._purge()
        with self._lock:
            self._tickets[future.ticket] = future
            if client is not None:
                self._ticket_owner[future.ticket] = client
                self._client_tickets[client] = self._client_tickets.get(client, 0) + 1
        return future.ticket

    def _lookup(self, request: dict) -> SortFuture:
        self._purge()
        ticket = request.get("ticket")
        with self._lock:
            future = self._tickets.get(ticket)
        if future is None:
            raise ServiceError(f"unknown ticket {ticket!r}")
        return future

    # ---- ops --------------------------------------------------------- #
    def _op_ping(self, request: dict, client: tuple | None = None) -> dict:
        return {"ok": True, "pong": True}

    def _op_submit(self, request: dict, client: tuple | None = None) -> dict:
        self._check_quota(client)
        job, priority, check_sorted = self._job_from(request)
        future = self.service.submit(job, priority, check_sorted=check_sorted)
        return {"ok": True, "ticket": self._register(future, client)}

    def _op_submit_many(self, request: dict, client: tuple | None = None) -> dict:
        specs = request.get("jobs")
        if not isinstance(specs, list):
            raise ServiceError("submit_many needs 'jobs': an array of job objects")
        tickets: list[int] = []
        for spec in specs:
            # partial acceptance: jobs admitted before the queue (or this
            # client's quota) filled stay live, and the overload reply
            # carries their tickets so the client can still collect them
            try:
                self._check_quota(client)
                job, priority, check_sorted = self._job_from(spec)
                future = self.service.submit(job, priority, check_sorted=check_sorted)
            except QueueFullError as exc:
                return {
                    "ok": False,
                    "error": "overloaded",
                    "retry_after": exc.retry_after,
                    "queued": exc.queued,
                    "max_queue": exc.max_queue,
                    "policy": exc.policy,
                    "tickets": tickets,
                }
            except ServiceError as exc:
                return {"ok": False, **exc.reply, "error": str(exc),
                        "tickets": tickets}
            tickets.append(self._register(future, client))
        return {"ok": True, "tickets": tickets}

    def _evict(self, ticket, keep: bool) -> None:
        """Drop a consumed ticket unless the client asked to keep it.

        Retained futures hold the job's input *and* its sorted output; a
        long-running server that never evicted would grow without bound, so
        a terminal ``result`` reply consumes the ticket by default
        (``"keep": true`` opts into re-reading it later)."""
        if keep:
            return
        with self._lock:
            self._drop_ticket_locked(ticket)

    def _op_result(self, request: dict, client: tuple | None = None) -> dict:
        future = self._lookup(request)
        timeout = request.get("timeout")
        keep = bool(request.get("keep", False))
        try:
            rep = future.result(timeout)
        except TimeoutError:  # not terminal: the ticket stays retrievable
            return {"ok": False, "error": "timeout", "pending": True,
                    "state": future.state}
        except CancelledError:
            self._evict(future.ticket, keep)
            return {"ok": False, "error": "cancelled", "cancelled": True}
        except Exception as exc:  # noqa: BLE001 — job failures travel as replies
            self._evict(future.ticket, keep)
            return {"ok": False, "error": str(exc), "kind": type(exc).__name__}
        self._evict(future.ticket, keep)
        return {
            "ok": True,
            "ticket": future.ticket,
            "n": rep.n,
            "algorithm": rep.algorithm,
            "family": rep.family,
            "output": rep.output,
            "reads": rep.reads,
            "writes": rep.writes,
            "cost": rep.cost(),
            "wall_seconds": future.wall_seconds or 0.0,
            "cpu_seconds": future.cpu_seconds or 0.0,
        }

    def _op_status(self, request: dict, client: tuple | None = None) -> dict:
        return {"ok": True, "state": self._lookup(request).state}

    def _op_cancel(self, request: dict, client: tuple | None = None) -> dict:
        return {"ok": True, "cancelled": self._lookup(request).cancel()}

    def _op_stats(self, request: dict, client: tuple | None = None) -> dict:
        self._purge()
        with self._lock:
            tickets = len(self._tickets)
            evictions = self._evictions
            clients = len(self._client_tickets)
            quota_rejections = self._quota_rejections
        return {
            "ok": True,
            "stats": {
                **self.service.stats(),
                "tickets": tickets,
                "ticket_evictions": evictions,
                "clients": clients,
                "quota_rejections": quota_rejections,
            },
        }

    def _op_shutdown(self, request: dict, client: tuple | None = None) -> dict:
        # stop the listener from a helper thread: shutdown() blocks until
        # serve_forever exits, which must not happen on a handler thread
        threading.Thread(target=self._server.shutdown, daemon=True).start()
        return {"ok": True, "stopping": True}


class ServiceClient:
    """Python-side speaker of the serve line protocol.

    One TCP connection, blocking request/response.  ``retries`` polls the
    connect until the server is listening (handy right after launching
    ``python -m repro serve`` in the background); connect attempts back off
    exponentially from ``retry_delay`` with jitter (capped at
    ``retry_cap``) instead of hammering a booting server at a fixed rate.
    ``request_timeout`` is a per-request deadline on the socket — a stalled
    server surfaces as :class:`TimeoutError` instead of a silent hang.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retries: int = 0,
        retry_delay: float = 0.1,
        retry_cap: float = 2.0,
        timeout: float | None = None,
        request_timeout: float | None = None,
    ):
        last_error: Exception | None = None
        attempts = max(1, retries + 1)
        for attempt in range(attempts):
            try:
                self._sock = socket.create_connection((host, port), timeout=timeout)
                break
            except OSError as exc:
                last_error = exc
                if attempt + 1 < attempts:  # no sleep after the final failure
                    time.sleep(backoff_delay(attempt, base=retry_delay, cap=retry_cap))
        else:
            raise ConnectionError(
                f"cannot reach sort server at {host}:{port}: {last_error}"
            )
        self._rfile = self._sock.makefile("r", encoding="utf-8")
        self._lock = threading.Lock()
        self._base_timeout = timeout
        self._request_timeout = request_timeout

    # ------------------------------------------------------------------ #
    def _fault_point(self, line: str) -> None:
        """Client-side fault seams (no-ops unless a plan is installed):
        ``timeout`` storms, dropped connections, and truncated sends."""
        plan = faults.active()
        if plan is None:
            return
        if plan.should_fire("timeout"):
            # fires *before* the send so a retry cannot double-submit
            raise TimeoutError("injected client timeout")
        if plan.should_fire("wire-drop"):
            self._sock.close()
            raise ConnectionError("injected wire drop")
        if plan.should_fire("partial-line"):
            # really put a truncated line on the wire so the server's
            # torn-stream handling is exercised, then die mid-send
            encoded = line.encode("utf-8")
            self._sock.sendall(encoded[: max(1, len(encoded) // 2)])
            self._sock.close()
            raise ConnectionError("injected partial-line drop")

    def request(self, payload: dict, timeout: float | None = None) -> dict:
        """Send one raw request object; return the raw reply object.

        ``timeout`` (or the client-wide ``request_timeout``) bounds this
        round-trip; expiry raises :class:`TimeoutError` and the connection
        is no longer usable (the reply stream may be desynchronized).
        """
        line = json.dumps(payload) + "\n"
        self._fault_point(line)
        deadline = timeout if timeout is not None else self._request_timeout
        # deliberate: the lock IS the request pipeline — it serializes the
        # send/recv pair so concurrent callers cannot interleave replies
        with self._lock:
            if deadline is not None:
                self._sock.settimeout(deadline)
            try:
                self._sock.sendall(line.encode("utf-8"))  # reprolint: disable=lock-discipline
                reply = self._rfile.readline()  # reprolint: disable=lock-discipline
            except socket.timeout as exc:
                raise TimeoutError(
                    f"no reply within {deadline}s for op {payload.get('op')!r}"
                ) from exc
            finally:
                if deadline is not None:
                    self._sock.settimeout(self._base_timeout)
        if not reply:
            raise ConnectionError("server closed the connection")
        return json.loads(reply)

    def _checked(self, payload: dict, timeout: float | None = None) -> dict:
        reply = self.request(payload, timeout)
        if not reply.get("ok"):
            raise ServiceError(reply.get("error", "request failed"), reply)
        return reply

    # ------------------------------------------------------------------ #
    def ping(self) -> bool:
        return bool(self._checked({"op": "ping"}).get("pong"))

    def submit(
        self,
        data,
        priority: float = 0,
        *,
        algorithm: str | None = None,
        k: int | None = None,
        label: str = "",
        check_sorted: bool = False,
    ) -> int:
        """Submit one job; return its ticket id."""
        return self._checked(
            {
                "op": "submit",
                "data": list(data),
                "priority": priority,
                "algorithm": algorithm,
                "k": k,
                "label": label,
                "check_sorted": check_sorted,
            }
        )["ticket"]

    def submit_many(self, datasets, priority: float = 0) -> list[int]:
        return self._checked(
            {
                "op": "submit_many",
                "jobs": [{"data": list(d), "priority": priority} for d in datasets],
            }
        )["tickets"]

    def result(
        self, ticket: int, timeout: float | None = None, *, keep: bool = False
    ) -> dict:
        """Block until the job finishes; return the result record
        (``output``, ``algorithm``, ``reads``, ``writes``, ``cost`` …).
        Raises :class:`ServiceError` on job failure / cancellation /
        timeout.

        A terminal reply *consumes* the ticket server-side (re-asking
        reports it unknown) so the server's memory stays bounded; pass
        ``keep=True`` to leave it retrievable again."""
        payload: dict = {"op": "result", "ticket": ticket}
        if timeout is not None:
            payload["timeout"] = timeout
        if keep:
            payload["keep"] = True
        return self._checked(payload)

    def gather(self, tickets, timeout: float | None = None) -> list[dict]:
        return [self.result(t, timeout) for t in tickets]

    def sort(self, data, **kwargs) -> list:
        """Synchronous convenience: submit + result → the sorted records."""
        return self.result(self.submit(data, **kwargs))["output"]

    def status(self, ticket: int) -> str:
        return self._checked({"op": "status", "ticket": ticket})["state"]

    def cancel(self, ticket: int) -> bool:
        return bool(self._checked({"op": "cancel", "ticket": ticket})["cancelled"])

    def stats(self) -> dict:
        return self._checked({"op": "stats"})["stats"]

    def shutdown_server(self) -> None:
        """Ask the server to stop listening (in-flight work still drains
        server-side)."""
        self._checked({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
