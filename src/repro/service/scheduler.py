"""The asynchronous :class:`SortService`: submit jobs, get futures back.

Every pre-existing execution surface blocks: ``engine.sort`` until one sort
finishes, ``engine.batch`` until a whole list does.  A service that must
absorb heavy concurrent traffic needs the opposite shape — accept a job
*now*, return a handle, execute when a worker frees up — so this module
turns the engine into a job service:

* :meth:`SortService.submit` enqueues one job and returns a
  :class:`~repro.service.futures.SortFuture` immediately;
* dispatch is a **priority queue** (lower priority value runs first, FIFO
  within a priority — the submission ticket breaks ties), so latency-
  sensitive jobs overtake bulk backfill;
* the worker pool is **persistent**: thread workers or long-lived worker
  processes (:func:`repro.planner.sharding.spawn_persistent_worker`) that
  survive across submissions instead of being rebuilt per batch call, each
  keeping its plan cache warm across jobs;
* a worker process that dies (OOM kill, segfault) fails *only* its
  in-flight future with
  :class:`~repro.planner.sharding.WorkerDiedError` — the service respawns
  the worker and later submissions run normally;
* :meth:`SortService.gather` folds a list of futures back into the familiar
  :class:`~repro.planner.batch.BatchReport`, which is how
  :meth:`repro.engine.SortEngine.batch` (and the legacy ``run_batch`` shim)
  are now expressed: ``submit_many`` + ``gather`` over a service the engine
  keeps alive between calls.

Cost-model note: the *simulated* I/O accounting is unchanged — every job
still runs :func:`repro.planner.batch.execute_and_check` on its own
simulated machine.  The service only changes *scheduling*, which is why the
batch shims can promise byte-identical reports.

Admission control
-----------------
An unbounded queue is how overload corrupts a service: accepted work piles
up faster than workers drain it, every future's latency grows without
bound, and the process eventually dies holding everybody's jobs.  With
``max_queue`` set, :meth:`SortService.submit` applies one of three
admission policies when the queue is full:

* ``"reject"`` (default) — raise :class:`QueueFullError` immediately; the
  caller (or the wire protocol, which translates it to an ``overloaded``
  reply with a ``retry_after`` hint) decides when to come back;
* ``"block"`` — wait for a slot, bounded by the submit's
  ``admission_timeout`` (falling back to the service's ``block_timeout``);
  :class:`QueueFullError` on deadline expiry;
* ``"shed-lowest"`` — cancel the lowest-priority *pending* future to make
  room, provided the incoming job outranks it (strictly lower priority
  value); otherwise the incoming job is the lowest-value work and is
  rejected.  The shed future reports ``CANCELLED`` exactly like a caller
  cancellation.

Only queued (undispatched) jobs count against ``max_queue``; in-flight
jobs and control messages do not.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections.abc import Iterable, Sequence
from concurrent.futures import CancelledError

from ..analysis.locksan import wrap_condition
from ..core.kernels import get_default_kernel
from ..models.params import MachineParams
from ..planner.batch import BatchReport, JobFailure, SortJob, execute_and_check
from ..planner.plan_cache import PlanCache
from ..planner.sharding import (
    WorkerDiedError,
    spawn_persistent_worker,
    stop_persistent_worker,
)
from ..testing import faults
from .backoff import Deadline
from .futures import SortFuture

#: priority used for internal control messages (cache seeding) — beats any
#: caller priority so a warm() lands before jobs queued behind it
PRIORITY_CONTROL = float("-inf")

#: recognised admission policies for a bounded queue
ADMISSION_POLICIES = ("reject", "block", "shed-lowest")


class QueueFullError(RuntimeError):
    """Raised by :meth:`SortService.submit` when the bounded queue cannot
    admit the job under the configured policy.

    ``retry_after`` is the service's estimate (seconds) of when a retry is
    worth attempting — one average job's drain time — which the wire
    protocol forwards in its ``overloaded`` reply.
    """

    def __init__(self, message: str, *, queued: int = 0, max_queue: int = 0,
                 policy: str = "reject", retry_after: float = 0.05):
        super().__init__(message)
        self.queued = queued
        self.max_queue = max_queue
        self.policy = policy
        self.retry_after = retry_after


def default_pool_width(executor: str) -> int:
    """Pool width when the caller does not pin one: one worker per core for
    processes (that is the scale-out unit), the familiar capped-at-8 pool
    for GIL-bound threads."""
    cores = os.cpu_count() or 1
    return cores if executor == "process" else min(8, cores)


class _CacheView:
    """Duck-typed :class:`PlanCache` facade that counts one job's own
    hits/misses while delegating storage to the shared cache.

    Thread workers share the engine's cache; per-job deltas read off the
    shared counters would race, so each job plans through a private view.
    The shared cache's totals still advance (the view delegates), meaning
    cache-wide stats and per-job stats agree in sum.
    """

    __slots__ = ("inner", "hits", "misses")

    def __init__(self, inner: PlanCache):
        self.inner = inner
        self.hits = 0
        self.misses = 0

    def plan(self, n, params, algorithms=None, k_max=None, constants=None):
        plan, hit = self.inner.planned(n, params, algorithms, k_max, constants)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        return plan


class _Entry:
    """One queue element: a job (with its future) or a control message."""

    __slots__ = ("priority", "seq", "future", "job", "check_sorted", "index", "control")

    def __init__(self, priority, seq, future=None, job=None, check_sorted=False,
                 index=0, control=None):
        self.priority = priority
        self.seq = seq
        self.future = future
        self.job = job
        self.check_sorted = check_sorted
        #: index passed to execute_and_check (batch position or ticket) —
        #: appears in check-sorted failure messages
        self.index = index
        #: ``("seed", entries)`` for control messages, ``None`` for jobs
        self.control = control

    def key(self):
        return (self.priority, self.seq)


class SortService:
    """Asynchronous job service over one :class:`~repro.engine.SortEngine`.

    Parameters
    ----------
    engine:
        The engine whose machine, plan cache and calibrated constants every
        job inherits.  A bare :class:`~repro.models.params.MachineParams`
        is also accepted (a private engine is built around it).
    workers / executor:
        Pool width and backend, defaulting to the engine's configuration
        (``executor="thread"`` shares the engine's plan cache under the
        GIL; ``executor="process"`` runs persistent worker processes, one
        worker-local plan cache each, for real multi-core throughput).
    warm_cache:
        A :class:`PlanCache` or snapshot entries to pre-seed planning with:
        thread mode seeds the shared cache once, process mode spawns every
        worker already holding the entries.
    max_queue / admission / block_timeout:
        Admission control (see the module docstring): with ``max_queue``
        set, a full queue rejects, blocks (up to ``block_timeout`` seconds
        unless the submit names its own ``admission_timeout``), or sheds
        the lowest-priority pending job per ``admission``.

    The service starts its pool immediately and accepts submissions until
    :meth:`shutdown`.  Usable as a context manager (drains on exit).
    """

    def __init__(
        self,
        engine=None,
        *,
        workers: int | None = None,
        executor: str | None = None,
        warm_cache=None,
        max_queue: int | None = None,
        admission: str = "reject",
        block_timeout: float | None = None,
    ):
        from ..engine import SortEngine

        if isinstance(engine, MachineParams):
            engine = SortEngine(engine)
        if engine is None:
            raise TypeError("SortService needs a SortEngine or MachineParams")
        self.engine = engine
        self.params = engine.params
        self.cache = engine.cache
        self.constants = engine.constants
        self.executor = executor if executor is not None else engine.executor
        if self.executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {self.executor!r}; choose 'thread' or 'process'"
            )
        if workers is None:
            workers = engine.workers
        if workers is None:
            workers = default_pool_width(self.executor)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if admission not in ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {admission!r}; "
                f"choose from {ADMISSION_POLICIES}"
            )
        if block_timeout is not None and block_timeout < 0:
            raise ValueError(f"block_timeout must be >= 0, got {block_timeout}")
        self.max_queue = max_queue
        self.admission = admission
        self.block_timeout = block_timeout

        self._cond = wrap_condition(threading.Condition(), "SortService._cond")
        self._shared: list = []  # heap of (priority, seq, entry)
        self._pinned: list[list] = [[] for _ in range(workers)]
        self._pending_jobs = 0  # job entries currently queued (not control)
        self._seq = itertools.count()
        self._tickets = itertools.count()
        self._shutdown = False
        self.submitted = 0
        self.completed = 0
        self.cancelled = 0
        self.rejected = 0
        self.shed = 0
        self.respawns = 0
        self.records_sorted = 0  # records across successfully completed jobs
        self.busy_seconds = 0.0  # summed worker-side job wall-clock
        self._started = time.monotonic()

        warm_entries = (
            warm_cache.snapshot() if isinstance(warm_cache, PlanCache) else warm_cache
        )
        if warm_entries and self.executor == "thread":
            self.cache.seed(warm_entries)
        self._warm_entries = warm_entries if self.executor == "process" else None

        # one handle slot per worker (process mode); feeder/worker threads
        self._handles: list = [None] * workers
        self._threads: list[threading.Thread] = []
        for index in range(workers):
            if self.executor == "process":
                self._handles[index] = spawn_persistent_worker(
                    self.constants, self._warm_entries
                )
                target = self._process_worker
            else:
                target = self._thread_worker
            t = threading.Thread(
                target=target, args=(index,), daemon=True,
                name=f"sort-service-{self.executor}-{index}",
            )
            t.start()
            self._threads.append(t)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SortService(workers={self.workers}, executor={self.executor!r}, "
            f"queued={self.queued()}, shutdown={self._shutdown})"
        )

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def _normalize(self, job) -> SortJob:
        from dataclasses import replace

        if not isinstance(job, SortJob):
            job = SortJob(data=job)
        if job.params is None:
            job = replace(job, params=self.params)
        return job

    def submit(
        self,
        job,
        priority: float = 0,
        *,
        check_sorted: bool = False,
        worker: int | None = None,
        admission_timeout: float | None = None,
    ) -> SortFuture:
        """Enqueue one job; return its :class:`SortFuture` immediately.

        ``job`` is a :class:`SortJob` or a bare data sequence (wrapped into
        an adaptive job on the service's machine).  ``priority``: lower
        runs first, FIFO within equal priorities.  ``worker`` optionally
        pins the job to one pool slot (used by the batch shims to reproduce
        the historical round-robin sharding exactly; normal traffic should
        leave it ``None`` and let any idle worker pull).

        With a bounded queue (``max_queue``), a full queue applies the
        service's admission policy — see the module docstring.
        ``admission_timeout`` bounds a ``"block"`` wait for this one submit
        (default: the service's ``block_timeout``); the other policies
        ignore it.  Raises :class:`QueueFullError` when the job cannot be
        admitted.
        """
        job = self._normalize(job)
        # a non-numeric (or NaN) priority would poison the heap invariant —
        # one bad key makes later sifts raise mid-pop and kills the worker
        # thread that hit it — so reject it at the door
        if not isinstance(priority, (int, float)) or (
            isinstance(priority, float) and priority != priority
        ):
            raise TypeError(f"priority must be a real number, got {priority!r}")
        if worker is not None and not (0 <= worker < self.workers):
            raise ValueError(f"worker must be in [0, {self.workers}), got {worker}")
        victim: _Entry | None = None
        with self._cond:
            if self._shutdown:
                raise RuntimeError("service is shut down")
            victim = self._admit_locked(priority, admission_timeout)
            ticket = next(self._tickets)
            future = SortFuture(ticket, job=job, priority=priority)
            entry = _Entry(priority, next(self._seq), future=future, job=job,
                           check_sorted=check_sorted, index=ticket)
            target = self._shared if worker is None else self._pinned[worker]
            heapq.heappush(target, (entry.key(), entry))
            self._pending_jobs += 1
            self.submitted += 1
            self._cond.notify_all()
        if victim is not None:
            # cancel outside the lock: cancel() fires done-callbacks in the
            # calling thread, and a callback re-entering the service (stats,
            # another submit) under the held condition would self-deadlock
            victim.future.cancel()
            with self._cond:
                self.shed += 1
                self.cancelled += 1
        return future

    # ------------------------------------------------------------------ #
    # admission control (bounded queue)
    # ------------------------------------------------------------------ #
    def _retry_after_locked(self) -> float:
        """Overload back-pressure hint: about one average job's drain."""
        if self.completed:
            return max(0.01, round(self.busy_seconds / self.completed, 4))
        return 0.05

    def retry_hint(self) -> float:
        """Public back-pressure hint (seconds until a retry is plausible);
        servers forward this to shed clients as ``retry_after``."""
        with self._cond:
            return self._retry_after_locked()

    def _queue_full_locked(self, message: str) -> QueueFullError:
        # caller holds _cond (the _locked suffix is the contract)
        self.rejected += 1  # reprolint: disable=lock-discipline
        return QueueFullError(
            message,
            queued=self._pending_jobs,
            max_queue=self.max_queue or 0,
            policy=self.admission,
            retry_after=self._retry_after_locked(),
        )

    def _admit_locked(self, priority: float, admission_timeout: float | None):
        """Admit one job under the bounded-queue policy (caller holds the
        condition).  Returns the entry to shed (cancel outside the lock),
        or ``None``; raises :class:`QueueFullError` when inadmissible."""
        if self.max_queue is None:
            return None
        deadline: Deadline | None = None
        while self._pending_jobs >= self.max_queue:
            if self.admission == "reject":
                raise self._queue_full_locked(
                    f"queue full ({self._pending_jobs}/{self.max_queue}); "
                    "admission policy 'reject'"
                )
            if self.admission == "shed-lowest":
                victim = self._shed_victim_locked(priority)
                if victim is None:
                    raise self._queue_full_locked(
                        f"queue full ({self._pending_jobs}/{self.max_queue}) "
                        "and no pending job has lower priority than "
                        f"{priority!r}; admission policy 'shed-lowest'"
                    )
                return victim
            # "block": wait for a slot, bounded by the deadline
            if deadline is None:
                deadline = Deadline(
                    admission_timeout if admission_timeout is not None
                    else self.block_timeout
                )
            remaining = deadline.remaining()
            if remaining is not None and remaining <= 0:
                raise self._queue_full_locked(
                    f"queue full ({self._pending_jobs}/{self.max_queue}); "
                    "admission policy 'block' deadline expired"
                )
            self._cond.wait(remaining)
            if self._shutdown:
                raise RuntimeError("service is shut down")
        return None

    def _shed_victim_locked(self, priority: float) -> _Entry | None:
        """Pop the lowest-priority pending job entry (highest key) from
        whichever queue holds it, provided it ranks strictly below the
        incoming ``priority``.  Caller holds the condition and cancels the
        returned entry's future outside it."""
        best_list = None
        best_pos = -1
        for lst in [self._shared, *self._pinned]:
            for pos, (_key, entry) in enumerate(lst):
                if entry.control is not None or entry.future is None:
                    continue
                if best_list is None or entry.key() > best_list[best_pos][1].key():
                    best_list, best_pos = lst, pos
        if best_list is None:
            return None
        victim = best_list[best_pos][1]
        if not victim.priority > priority:
            return None
        best_list.pop(best_pos)
        heapq.heapify(best_list)
        # caller holds _cond (the _locked suffix is the contract)
        self._pending_jobs -= 1  # reprolint: disable=lock-discipline
        return victim

    def submit_many(
        self,
        jobs: Sequence,
        priority: float = 0,
        *,
        check_sorted: bool = False,
        round_robin: bool = False,
    ) -> list[SortFuture]:
        """Submit a batch; return its futures in submission order.

        ``round_robin=True`` pins job *i* to worker ``i % workers`` — the
        deterministic deal the one-shot process executor used, which keeps
        per-worker plan-cache behaviour (and therefore the shim parity
        guarantees) identical to the pre-service sharding.
        """
        return [
            self.submit(
                job,
                priority,
                check_sorted=check_sorted,
                worker=(i % self.workers) if round_robin else None,
            )
            for i, job in enumerate(jobs)
        ]

    def map(self, datasets: Iterable, priority: float = 0):
        """Sort many datasets; return an iterator of their
        :class:`~repro.api.SortReport`\\ s in submission order.

        Submission is eager (all jobs enter the queue before this returns);
        only the result consumption is lazy.  The first failing job raises
        when its result is reached, like :meth:`Executor.map`.
        """
        futures = self.submit_many(list(datasets), priority)

        def _results():
            for fut in futures:
                yield fut.result()

        return _results()

    # ------------------------------------------------------------------ #
    # cache warming
    # ------------------------------------------------------------------ #
    def warm(self, entries) -> int:
        """Seed planning with pre-computed entries (a :class:`PlanCache` or
        its snapshot): immediate for the shared thread cache, broadcast as a
        front-of-queue control message to every process worker."""
        if isinstance(entries, PlanCache):
            entries = entries.snapshot()
        entries = list(entries)
        if not entries:
            return 0
        if self.executor == "thread":
            return self.cache.seed(entries)
        with self._cond:
            if self._shutdown:
                raise RuntimeError("service is shut down")
            for w in range(self.workers):
                entry = _Entry(PRIORITY_CONTROL, next(self._seq),
                               control=("seed", entries))
                heapq.heappush(self._pinned[w], (entry.key(), entry))
            self._cond.notify_all()
        return len(entries)

    # ------------------------------------------------------------------ #
    # gathering
    # ------------------------------------------------------------------ #
    def gather(self, futures: Sequence[SortFuture]) -> BatchReport:
        """Wait for ``futures`` and fold them into a
        :class:`~repro.planner.batch.BatchReport` (reports in the given
        order, per-job failures captured, plan-cache stats aggregated —
        per-worker in process mode, mirroring the per-shard stats of the
        one-shot executor).
        """
        t0 = time.perf_counter()
        report = BatchReport(executor=self.executor)
        per_worker: dict[int, list[int]] = {}
        for i, fut in enumerate(futures):
            label = getattr(fut.job, "label", "")
            try:
                rep = fut.result()
            except CancelledError as exc:
                report.failures.append(JobFailure(index=i, label=label, error=exc))
            except Exception as exc:  # noqa: BLE001 — captured per job by design
                report.failures.append(JobFailure(index=i, label=label, error=exc))
            else:
                report.reports.append(rep)
            if fut.plan_stats is not None:
                worker, dh, dm = fut.plan_stats
                report.plan_hits += dh
                report.plan_misses += dm
                acc = per_worker.setdefault(worker, [0, 0])
                acc[0] += dh
                acc[1] += dm
        if self.executor == "process":
            report.shard_plan_stats = [
                tuple(per_worker[w]) for w in sorted(per_worker)
            ]
        report.wall_seconds = time.perf_counter() - t0
        return report

    # ------------------------------------------------------------------ #
    # worker loops
    # ------------------------------------------------------------------ #
    def _next_entry(self, index: int) -> _Entry | None:
        """Block until an entry is available for worker ``index`` (its pinned
        queue or the shared queue, whichever holds the best key) or the
        service is shut down with nothing left to drain."""
        with self._cond:
            while True:
                pinned = self._pinned[index]
                best = None
                if self._shared and pinned:
                    best = self._shared if self._shared[0][0] <= pinned[0][0] else pinned
                elif self._shared:
                    best = self._shared
                elif pinned:
                    best = pinned
                if best is not None:
                    entry = heapq.heappop(best)[1]
                    if entry.control is None:
                        self._pending_jobs -= 1
                        if self.max_queue is not None:
                            # wake "block"-policy submitters waiting on a slot
                            self._cond.notify_all()
                    return entry
                if self._shutdown:
                    return None
                self._cond.wait()

    def _finish(self, future: SortFuture, worker: int, hits: int, misses: int,
                result=None, error: BaseException | None = None,
                wall: float = 0.0, records: int = 0,
                cpu: float | None = None) -> None:
        future.plan_stats = (worker, hits, misses)
        future.wall_seconds = wall
        future.cpu_seconds = wall if cpu is None else cpu
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(result)
        with self._cond:
            self.completed += 1
            self.busy_seconds += wall
            if error is None:
                self.records_sorted += records

    def _thread_worker(self, index: int) -> None:
        while True:
            entry = self._next_entry(index)
            if entry is None:
                return
            if entry.control is not None:  # seeds are immediate for threads
                continue
            fut = entry.future
            if not fut.set_running_or_notify_cancel():
                with self._cond:
                    self.cancelled += 1
                continue
            view = _CacheView(self.cache)
            records = len(entry.job.data) if entry.job.data is not None else 0
            t0 = time.perf_counter()
            c0 = time.thread_time()  # this worker's CPU, contention-free
            try:
                plan = faults.active()
                if plan is not None:
                    # thread workers cannot die without taking the pool down,
                    # so injected "worker death" fails the in-flight job
                    plan.check("worker-death", f"thread worker {index}")
                rep = execute_and_check(
                    entry.index, entry.job, cache=view,
                    constants=self.constants, check_sorted=entry.check_sorted,
                )
            except Exception as exc:  # noqa: BLE001 — captured per job by design
                self._finish(fut, index, view.hits, view.misses, error=exc,
                             wall=time.perf_counter() - t0, records=records,
                             cpu=time.thread_time() - c0)
            else:
                self._finish(fut, index, view.hits, view.misses, result=rep,
                             wall=time.perf_counter() - t0, records=records,
                             cpu=time.thread_time() - c0)

    def _process_worker(self, index: int) -> None:
        """Feeder thread for one persistent worker process: one in-flight
        job at a time over the lockstep pipe protocol."""
        while True:
            entry = self._next_entry(index)
            if entry is None:
                break
            handle = self._handles[index]
            if handle is None:  # respawn was refused (interpreter shutdown)
                if entry.future is not None:
                    entry.future.cancel()
                continue
            proc, conn = handle
            if entry.control is not None:
                try:
                    conn.send(entry.control)
                    conn.recv()  # ("seeded", n, 0, 0)
                except (EOFError, OSError, BrokenPipeError):
                    self._respawn(index)
                continue
            fut = entry.future
            if not fut.set_running_or_notify_cancel():
                with self._cond:
                    self.cancelled += 1
                continue
            records = len(entry.job.data) if entry.job.data is not None else 0
            t0 = time.perf_counter()
            if faults.fire("worker-death"):
                # injected worker death takes the REAL failure path: kill the
                # child, let the pipe EOF below raise, fail only this future,
                # respawn — exactly what an OOM kill looks like
                proc.kill()
            try:
                # ship the submitting process's block-kernel mode with the
                # job — module globals do not cross the process boundary
                conn.send(("job", entry.index, entry.job, entry.check_sorted,
                           get_default_kernel()))
                status, payload, dh, dm = conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                # the worker process died mid-job: fail ONLY this future,
                # respawn the worker, keep serving the queue
                self._respawn(index)
                self._finish(
                    fut, index, 0, 0,
                    error=WorkerDiedError(
                        f"worker {index} died while running job "
                        f"{entry.index} ({getattr(entry.job, 'label', '')!r}): "
                        f"{exc!r}"
                    ),
                    wall=time.perf_counter() - t0, records=records,
                )
                continue
            wall = time.perf_counter() - t0
            if status == "ok":
                self._finish(fut, index, dh, dm, result=payload,
                             wall=wall, records=records)
            else:
                self._finish(fut, index, dh, dm, error=payload,
                             wall=wall, records=records)
        proc_handle = self._handles[index]
        if proc_handle is not None:
            stop_persistent_worker(*proc_handle)
            with self._cond:
                self._handles[index] = None

    def _respawn(self, index: int) -> None:
        proc, conn = self._handles[index]
        try:
            conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass
        proc.join(0.1)
        if proc.is_alive():  # pragma: no cover - death races are timing-bound
            proc.terminate()
            proc.join(1.0)
        if not threading.main_thread().is_alive():
            # interpreter shutdown: forking now would leak an orphan that
            # outlives the parent; park the slot instead
            with self._cond:  # pragma: no cover - shutdown race
                self._handles[index] = None
            return
        # fork outside the lock (slow); publish the new handle under it
        handle = spawn_persistent_worker(self.constants, self._warm_entries)
        with self._cond:
            self._handles[index] = handle
            self.respawns += 1

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def queued(self) -> int:
        """Jobs accepted but not yet dispatched."""
        with self._cond:
            return len(self._shared) + sum(len(p) for p in self._pinned)

    def stats(self) -> dict:
        """Service-level counters — the ops dashboard row.

        Throughput fields: ``records_sorted`` (across successfully completed
        jobs), ``busy_seconds`` (summed worker-side job wall-clock),
        ``records_per_sec`` (records over busy time — per-worker execution
        throughput, the number the kernel layer moves), ``avg_job_seconds``
        and ``uptime_seconds``.
        """
        with self._cond:
            completed = self.completed
            busy = self.busy_seconds
            return {
                "executor": self.executor,
                "workers": self.workers,
                "submitted": self.submitted,
                "completed": completed,
                "cancelled": self.cancelled,
                "rejected": self.rejected,
                "shed": self.shed,
                "max_queue": self.max_queue,
                "admission": self.admission,
                "queued": len(self._shared) + sum(len(p) for p in self._pinned),
                "respawns": self.respawns,
                "shutdown": self._shutdown,
                "records_sorted": self.records_sorted,
                "busy_seconds": round(busy, 6),
                "records_per_sec": round(self.records_sorted / busy, 1) if busy else 0.0,
                "avg_job_seconds": round(busy / completed, 6) if completed else 0.0,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
            }

    def shutdown(self, drain: bool = True, wait: bool = True,
                 timeout: float | None = None) -> None:
        """Stop accepting submissions and wind the pool down.

        ``drain=True`` executes everything already queued before workers
        exit; ``drain=False`` cancels all queued (undispatched) jobs —
        their futures raise ``CancelledError`` — while in-flight jobs still
        finish.  ``wait`` joins the worker threads (pass ``False`` to
        return immediately, e.g. while a job you intend to unblock is still
        in flight).  Idempotent.
        """
        with self._cond:
            already = self._shutdown
            self._shutdown = True
            if not drain and not already:
                doomed = [e for _, e in self._shared]
                doomed += [e for p in self._pinned for _, e in p]
                self._shared.clear()
                for p in self._pinned:
                    p.clear()
                self._pending_jobs = 0
            else:
                doomed = []
            self._cond.notify_all()
        for entry in doomed:
            if entry.future is not None and entry.future.cancel():
                with self._cond:
                    self.cancelled += 1
        if wait:
            for t in self._threads:
                t.join(timeout)

    def __enter__(self) -> "SortService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)
