"""Capped exponential backoff with jitter — the one retry cadence.

Before this module, every retry loop in the repo slept its own way:
:class:`~repro.service.ServiceClient` polled connects on a fixed
``retry_delay=0.1``, the :class:`~repro.cluster.ClusterCoordinator`
resubmitted failed shards with no pause at all.  Fixed delays synchronize
retrying clients into thundering herds (everybody re-hits the recovering
server on the same beat), and zero delays turn a brief outage into a hot
spin.  The standard cure is *capped exponential backoff with jitter*
(attempt ``i`` sleeps roughly ``base * 2**i`` capped at ``cap``, smeared by
a random factor so independent clients decorrelate), and this module is the
single implementation every retry path shares.

Determinism: the repo's chaos drills must replay byte-identically for a
fixed seed, so jitter can be pinned — pass ``seed`` and the delay sequence
is a pure function of ``(seed, attempt)``.  Without a seed the module-level
RNG supplies real jitter (the production behaviour).
"""

from __future__ import annotations

import random
import time
from collections.abc import Iterator

#: production jitter source (seedless callers); never used when a seed is
#: given, so drills stay reproducible
_rng = random.Random()


def backoff_delay(
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: float = 0.5,
    seed: int | None = None,
) -> float:
    """Delay (seconds) before retry number ``attempt`` (0-based).

    The undithered delay is ``min(cap, base * 2**attempt)``; ``jitter`` is
    the fraction of it that is randomized (0 = fixed, 1 = full jitter), so
    the result lies in ``[(1 - jitter) * d, d]``.  A ``seed`` makes the
    value a deterministic function of ``(seed, attempt)``.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    if base <= 0 or cap < base:
        raise ValueError(f"need 0 < base <= cap, got base={base} cap={cap}")
    if not 0.0 <= jitter <= 1.0:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    # 2**attempt overflows no float for attempt < 1024; cap early instead of
    # computing astronomically large intermediates for long-lived loops
    full = cap if base * (2.0 ** min(attempt, 64)) >= cap else base * (2.0 ** attempt)
    if jitter == 0.0:
        return full
    rng = random.Random(f"{seed}:{attempt}") if seed is not None else _rng
    return full * (1.0 - jitter) + full * jitter * rng.random()


def backoff_delays(
    attempts: int,
    *,
    base: float = 0.05,
    cap: float = 2.0,
    jitter: float = 0.5,
    seed: int | None = None,
) -> Iterator[float]:
    """The first ``attempts`` delays of :func:`backoff_delay`, in order."""
    for i in range(attempts):
        yield backoff_delay(i, base=base, cap=cap, jitter=jitter, seed=seed)


class Deadline:
    """A wall-clock budget shared across the retries of one operation.

    ``Deadline(None)`` never expires (every ``remaining()`` is ``None``),
    so callers can thread an optional per-request deadline through retry
    loops without branching on its presence.
    """

    __slots__ = ("_expires_at",)

    def __init__(self, seconds: float | None):
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        self._expires_at = None if seconds is None else time.monotonic() + seconds

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` for no deadline."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def clamp(self, delay: float) -> float:
        """``delay`` shortened so a sleep cannot overshoot the deadline."""
        remaining = self.remaining()
        return delay if remaining is None else min(delay, remaining)
