"""Futures for asynchronous sort jobs.

A :class:`SortFuture` is the handle :meth:`repro.service.SortService.submit`
returns: the submitting thread keeps going while the service's worker pool
sorts in the background, and the future delivers the
:class:`~repro.api.SortReport` (or the failure) whenever the caller is ready
for it.

The semantics deliberately mirror :class:`concurrent.futures.Future` —
``result`` / ``exception`` / ``cancel`` / ``add_done_callback`` — but the
class is implemented here rather than inherited so the service can attach
job metadata (``ticket``, ``priority``, the normalized
:class:`~repro.planner.batch.SortJob`) and the per-job plan-cache accounting
that :meth:`~repro.service.SortService.gather` folds into a
:class:`~repro.planner.batch.BatchReport`.

States and transitions::

    PENDING ──cancel()──▶ CANCELLED
       │
       └─worker picks it up─▶ RUNNING ──▶ FINISHED (result or exception)

``cancel()`` only succeeds while the job is still queued (PENDING); once a
worker has started it there is nothing safe to interrupt, matching the
stdlib contract.
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError

from ..analysis.locksan import wrap_condition

PENDING = "PENDING"
RUNNING = "RUNNING"
CANCELLED = "CANCELLED"
FINISHED = "FINISHED"

_STATES = (PENDING, RUNNING, CANCELLED, FINISHED)


class SortFuture:
    """The result handle for one submitted sort job.

    Attributes
    ----------
    ticket:
        Service-wide monotonically increasing submission id (also the id the
        line-protocol server hands to remote clients).
    job:
        The normalized :class:`~repro.planner.batch.SortJob` this future
        tracks.
    priority:
        Dispatch priority (lower runs first; FIFO within a priority).
    """

    __slots__ = (
        "ticket",
        "job",
        "priority",
        "_cond",
        "_state",
        "_result",
        "_exception",
        "_callbacks",
        "plan_stats",
        "wall_seconds",
        "cpu_seconds",
    )

    def __init__(self, ticket: int, job=None, priority: float = 0):
        self.ticket = ticket
        self.job = job
        self.priority = priority
        self._cond = wrap_condition(threading.Condition(), "SortFuture._cond")
        self._state = PENDING
        self._result = None
        self._exception: BaseException | None = None
        self._callbacks: list = []
        #: ``(worker_index, plan_hits, plan_misses)`` for this job's
        #: execution, stamped by the worker just before completion —
        #: ``None`` until then (and forever, for cancelled jobs)
        self.plan_stats: tuple[int, int, int] | None = None
        #: worker-measured wall-clock of this job's execution, stamped just
        #: before completion — ``None`` until then (and for cancelled jobs)
        self.wall_seconds: float | None = None
        #: worker-measured CPU time of this job's execution (thread CPU for
        #: thread workers, wall of the dedicated child for process workers).
        #: Unlike ``wall_seconds`` this is not inflated when several workers
        #: timeshare a core, so it is the honest per-job compute figure.
        self.cpu_seconds: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = getattr(self.job, "label", "") or ""
        return (
            f"SortFuture(ticket={self.ticket}, state={self._state}"
            + (f", label={label!r}" if label else "")
            + ")"
        )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> str:
        """One of ``PENDING`` / ``RUNNING`` / ``CANCELLED`` / ``FINISHED``."""
        with self._cond:
            return self._state

    def cancelled(self) -> bool:
        with self._cond:
            return self._state == CANCELLED

    def running(self) -> bool:
        with self._cond:
            return self._state == RUNNING

    def done(self) -> bool:
        with self._cond:
            return self._state in (CANCELLED, FINISHED)

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def cancel(self) -> bool:
        """Cancel the job if it has not been dispatched yet.

        Returns ``True`` when the future is (now) cancelled, ``False`` when
        the job is already running or finished.  Waiters are released with
        :class:`concurrent.futures.CancelledError` and done-callbacks fire.
        """
        with self._cond:
            if self._state == CANCELLED:
                return True
            if self._state != PENDING:
                return False
            self._state = CANCELLED
            self._cond.notify_all()
        self._invoke_callbacks()
        return True

    # ------------------------------------------------------------------ #
    # waiting
    # ------------------------------------------------------------------ #
    def result(self, timeout: float | None = None):
        """Block until done; return the :class:`~repro.api.SortReport`.

        Raises the job's exception if it failed,
        :class:`concurrent.futures.CancelledError` if it was cancelled, and
        :class:`TimeoutError` if ``timeout`` elapses first.
        """
        with self._cond:
            self._wait_done(timeout)
            if self._state == CANCELLED:
                raise CancelledError(f"job {self.ticket} was cancelled")
            if self._exception is not None:
                raise self._exception
            return self._result

    def exception(self, timeout: float | None = None) -> BaseException | None:
        """Block until done; return the job's exception (``None`` on
        success).  Cancellation raises, timeouts raise ``TimeoutError``."""
        with self._cond:
            self._wait_done(timeout)
            if self._state == CANCELLED:
                raise CancelledError(f"job {self.ticket} was cancelled")
            return self._exception

    def _wait_done(self, timeout: float | None) -> None:
        # caller holds the condition
        if self._state in (CANCELLED, FINISHED):
            return
        self._cond.wait_for(
            lambda: self._state in (CANCELLED, FINISHED), timeout=timeout
        )
        if self._state not in (CANCELLED, FINISHED):
            raise TimeoutError(f"job {self.ticket} not done after {timeout}s")

    # ------------------------------------------------------------------ #
    # callbacks
    # ------------------------------------------------------------------ #
    def add_done_callback(self, fn) -> None:
        """Call ``fn(self)`` when the future completes or is cancelled.

        Fires immediately (in the caller's thread) if already done;
        otherwise fires in the worker thread that completes the job.
        Callback exceptions are swallowed — a misbehaving observer must not
        take down a worker.
        """
        with self._cond:
            if self._state not in (CANCELLED, FINISHED):
                self._callbacks.append(fn)
                return
        self._safe_call(fn)

    def _invoke_callbacks(self) -> None:
        with self._cond:
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._safe_call(fn)

    def _safe_call(self, fn) -> None:
        try:
            fn(self)
        except Exception:  # noqa: BLE001 — observer errors must not propagate
            pass

    # ------------------------------------------------------------------ #
    # producer side (the service's workers)
    # ------------------------------------------------------------------ #
    def set_running_or_notify_cancel(self) -> bool:
        """Transition PENDING → RUNNING; ``False`` if already cancelled
        (the worker must then skip the job)."""
        with self._cond:
            if self._state == CANCELLED:
                return False
            if self._state != PENDING:
                raise RuntimeError(
                    f"job {self.ticket} dispatched twice (state {self._state})"
                )
            self._state = RUNNING
            return True

    def set_result(self, result) -> None:
        with self._cond:
            if self._state in (CANCELLED, FINISHED):
                raise RuntimeError(f"job {self.ticket} already {self._state}")
            self._result = result
            self._state = FINISHED
            self._cond.notify_all()
        self._invoke_callbacks()

    def set_exception(self, exception: BaseException) -> None:
        with self._cond:
            if self._state in (CANCELLED, FINISHED):
                raise RuntimeError(f"job {self.ticket} already {self._state}")
            self._exception = exception
            self._state = FINISHED
            self._cond.notify_all()
        self._invoke_callbacks()


def wait(futures, timeout: float | None = None) -> tuple[list, list]:
    """Wait for ``futures`` to finish; return ``(done, not_done)`` lists.

    A blunt instrument compared to :meth:`SortFuture.result` — useful for
    "is the batch drained yet" checks without consuming results.
    """
    import time

    deadline = None if timeout is None else time.monotonic() + timeout
    done: list = []
    not_done: list = []
    for fut in futures:
        remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
        with fut._cond:
            try:
                fut._wait_done(remaining)
            except TimeoutError:
                not_done.append(fut)
                continue
        done.append(fut)
    return done, not_done
