"""repro — Sorting with Asymmetric Read and Write Costs (SPAA 2015).

A faithful, executable reproduction of Blelloch, Fineman, Gibbons, Gu & Shun,
*Sorting with Asymmetric Read and Write Costs* (SPAA 2015 / arXiv:1603.03505):
asymmetric-cost machine models (RAM, PRAM, External Memory, Ideal-Cache) and
the paper's write-efficient algorithms for sorting, FFT and matrix
multiplication, instrumented so every theorem's read/write/depth bound can be
measured.

Quickstart
----------
>>> from repro import MachineParams, AEMachine, aem_mergesort
>>> params = MachineParams(M=64, B=8, omega=8)
>>> machine = AEMachine(params)
>>> arr = machine.from_list([5, 3, 8, 1, 9, 2, 7, 4, 6, 0])
>>> out = aem_mergesort(machine, arr, k=4)
>>> out.peek_list()
[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
>>> machine.counter.block_cost(params.omega) > 0
True
"""

from .api import SortReport, sort_auto, sort_external, sort_ram
from .engine import EXTERNAL_SORTS, SortEngine, StreamSession
from .core import (
    AEMPriorityQueue,
    BufferTree,
    aem_heapsort,
    aem_mergesort,
    aem_samplesort,
    bst_sort,
    get_default_kernel,
    kernel_mode,
    selection_sort,
    set_default_kernel,
)
from .models import (
    AEMachine,
    CacheSim,
    CostCounter,
    DepthTracker,
    InstrumentedArray,
    MachineParams,
    MemoryGuard,
    SimArray,
)
from .planner import (
    BatchReport,
    CostConstants,
    PlanCache,
    SortJob,
    SortPlan,
    calibrate,
    plan_sort,
    rank_plans,
    run_batch,
)
from .service import (
    EngineServer,
    ServiceClient,
    SortFuture,
    SortService,
    WorkerDiedError,
)

__version__ = "1.0.0"

# Runtime sanitizers, environment-activated so they reach spawned worker
# processes too (the env propagates through multiprocessing): REPRO_IOSAN=1
# cross-checks every physical block transfer against the CostCounter,
# REPRO_LOCKSAN=1 records lock acquisition order across the service layer.
import os as _os

if _os.environ.get("REPRO_IOSAN", "0") not in ("", "0"):
    from .analysis import iosan as _iosan

    _iosan.enable()
if _os.environ.get("REPRO_LOCKSAN", "0") not in ("", "0"):
    from .analysis import locksan as _locksan

    _locksan.enable()
del _os

__all__ = [
    "AEMPriorityQueue",
    "AEMachine",
    "BatchReport",
    "BufferTree",
    "CacheSim",
    "CostConstants",
    "CostCounter",
    "DepthTracker",
    "EXTERNAL_SORTS",
    "EngineServer",
    "InstrumentedArray",
    "MachineParams",
    "MemoryGuard",
    "PlanCache",
    "ServiceClient",
    "SimArray",
    "SortEngine",
    "SortFuture",
    "SortJob",
    "SortPlan",
    "SortReport",
    "SortService",
    "StreamSession",
    "WorkerDiedError",
    "aem_heapsort",
    "aem_mergesort",
    "aem_samplesort",
    "bst_sort",
    "calibrate",
    "get_default_kernel",
    "kernel_mode",
    "plan_sort",
    "rank_plans",
    "run_batch",
    "selection_sort",
    "set_default_kernel",
    "sort_auto",
    "sort_external",
    "sort_ram",
    "__version__",
]
