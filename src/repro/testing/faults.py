"""faults — the deterministic fault-injection harness.

Overload hardening is only believable if the failure paths are *exercised*,
and failure paths exercised by flaky timing are worse than none: a chaos
test that fails one run in fifty cannot gate CI.  This module makes fault
injection a seeded, replayable input instead of an accident:

* a :class:`FaultPlan` holds per-site firing rates (``wire-drop``,
  ``worker-death``, ``partial-line``, ``slow-host``, ``timeout``); the
  decision for the *k*-th query at a site is a pure function of
  ``(seed, site, k)`` — independent of thread interleaving, hash
  randomization, and wall clock — so a drill replays identically for a
  fixed seed;
* production code crosses a handful of **fault points** (the
  :class:`~repro.service.ServiceClient` wire path, the
  :class:`~repro.service.SortService` dispatch loops, the
  :class:`~repro.service.EngineServer` request dispatch); each is a single
  ``faults.active()`` check — ``None`` when no plan is installed, which is
  the production state, so the hot path pays one global read;
* activation is explicit (:func:`activate` / the :func:`inject` context
  manager) or environment-driven: ``REPRO_FAULTS="seed=0,wire-drop=0.2"``
  installs a plan lazily at the first fault point, and the variable
  propagates to ``python -m repro serve`` subprocesses, so a whole
  :class:`~repro.cluster.LocalCluster` fleet can run under one storm.

The fired decisions are recorded (``plan.events`` / ``plan.fired``) so
drills can assert *exactly* how many faults landed, not just "something
went wrong".
"""

from __future__ import annotations

import hashlib
import os
import threading
from contextlib import contextmanager

from ..analysis.locksan import wrap_lock

#: the recognised fault sites and what each one simulates
SITES = (
    "worker-death",  # a pool worker process dies mid-job (OOM kill)
    "wire-drop",     # the client's TCP connection drops before a request
    "partial-line",  # a truncated request line reaches the server, then EOF
    "slow-host",     # a server stalls before handling a request
    "timeout",       # a client request times out before reaching the wire
)


class InjectedFault(RuntimeError):
    """The error a fired fault raises where a real failure has no natural
    exception of its own (e.g. thread-worker death is simulated by failing
    the in-flight job with this)."""


def _decision(seed: int, site: str, k: int) -> float:
    """Uniform [0, 1) value for query ``k`` at ``site`` — a pure function
    of its arguments (blake2b, not ``hash()``, which is randomized per
    process and would break cross-process determinism)."""
    digest = hashlib.blake2b(
        f"{seed}:{site}:{k}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2.0**64


class FaultPlan:
    """One seeded storm: per-site rates, optional per-site fire caps.

    Parameters
    ----------
    seed:
        Determinism root — two plans with equal seeds and rates make
        identical per-site decision sequences.
    rates:
        ``{site: probability}`` for sites in :data:`SITES` (absent = 0.0,
        i.e. the site never fires).
    max_fires:
        Cap on fires *per site* (``None`` = unlimited) — bounds a storm so
        a drill can guarantee eventual success.
    slow_seconds:
        Stall injected by a fired ``slow-host`` site.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        rates: dict[str, float] | None = None,
        max_fires: int | None = None,
        slow_seconds: float = 0.02,
    ):
        rates = dict(rates or {})
        unknown = sorted(set(rates) - set(SITES))
        if unknown:
            raise ValueError(f"unknown fault sites {unknown}; choose from {SITES}")
        for site, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {site!r} must be in [0, 1], got {rate}")
        if max_fires is not None and max_fires < 0:
            raise ValueError(f"max_fires must be >= 0, got {max_fires}")
        if slow_seconds < 0:
            raise ValueError(f"slow_seconds must be >= 0, got {slow_seconds}")
        self.seed = seed
        self.rates = rates
        self.max_fires = max_fires
        self.slow_seconds = slow_seconds
        self._lock = wrap_lock(threading.Lock(), "FaultPlan._lock")
        self._calls: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        #: chronological ``(site, call_index)`` record of every fired fault
        self.events: list[tuple[str, int]] = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan(seed={self.seed}, rates={self.rates})"

    # ------------------------------------------------------------------ #
    def should_fire(self, site: str) -> bool:
        """Consume one decision at ``site``; ``True`` when the fault fires.

        The decision depends only on ``(seed, site, call index)``, so each
        site's decision *sequence* is deterministic even when several
        threads race to consume it (which thread gets which index may vary;
        the multiset of outcomes cannot).
        """
        rate = self.rates.get(site, 0.0)
        with self._lock:
            k = self._calls.get(site, 0)
            self._calls[site] = k + 1
            if rate <= 0.0:
                return False
            if self.max_fires is not None and self._fired.get(site, 0) >= self.max_fires:
                return False
            fire = _decision(self.seed, site, k) < rate
            if fire:
                self._fired[site] = self._fired.get(site, 0) + 1
                self.events.append((site, k))
            return fire

    def check(self, site: str, detail: str = "") -> None:
        """Raise :class:`InjectedFault` when ``site`` fires (the hook shape
        for seams where the natural failure is an exception)."""
        if self.should_fire(site):
            raise InjectedFault(
                f"injected {site} fault" + (f" ({detail})" if detail else "")
            )

    def fired(self, site: str | None = None) -> int:
        """Fires so far at ``site`` (or across all sites)."""
        with self._lock:
            if site is not None:
                return self._fired.get(site, 0)
            return sum(self._fired.values())

    def calls(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)


# --------------------------------------------------------------------------- #
# activation
# --------------------------------------------------------------------------- #
_install_lock = threading.Lock()
_active: FaultPlan | None = None
_env_checked = False


def activate(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` globally; fault points start consulting it."""
    global _active
    with _install_lock:
        _active = plan
    return plan


def deactivate() -> None:
    """Remove the installed plan (fault points go back to no-ops)."""
    global _active
    with _install_lock:
        _active = None


def active() -> FaultPlan | None:
    """The installed plan, or ``None``.  On first call, ``REPRO_FAULTS``
    (if set) is parsed and installed — this is how ``serve`` subprocesses
    join a storm without any wiring."""
    global _active, _env_checked
    if _active is None and not _env_checked:
        with _install_lock:
            if _active is None and not _env_checked:
                _env_checked = True
                spec = os.environ.get("REPRO_FAULTS", "")
                if spec:
                    _active = plan_from_spec(spec)
    return _active


def fire(site: str) -> bool:
    """Module-level convenience: the installed plan's decision (``False``
    when no plan is installed)."""
    plan = active()
    return plan is not None and plan.should_fire(site)


@contextmanager
def inject(plan: FaultPlan | None = None, **kwargs):
    """``with faults.inject(seed=3, rates={...}):`` — activate for a scope.

    Accepts a ready :class:`FaultPlan` or the plan's constructor kwargs.
    Restores the previously installed plan (if any) on exit.
    """
    if plan is None:
        plan = FaultPlan(**kwargs)
    elif kwargs:
        raise TypeError("pass a FaultPlan or constructor kwargs, not both")
    with _install_lock:
        previous = _active
    activate(plan)
    try:
        yield plan
    finally:
        activate(previous) if previous is not None else deactivate()


def plan_from_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` value into a plan.

    Comma-separated ``key=value`` pairs: ``seed=INT``, ``max-fires=INT``,
    ``slow-seconds=FLOAT``, and one ``SITE=RATE`` per fault site, e.g.
    ``"seed=7,wire-drop=0.25,worker-death=0.1,max-fires=3"``.
    """
    seed = 0
    max_fires: int | None = None
    slow_seconds = 0.02
    rates: dict[str, float] = {}
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        key, sep, value = chunk.partition("=")
        key = key.strip()
        value = value.strip()
        if not sep or not value:
            raise ValueError(f"bad REPRO_FAULTS entry {chunk!r} (want key=value)")
        try:
            if key == "seed":
                seed = int(value)
            elif key == "max-fires":
                max_fires = int(value)
            elif key == "slow-seconds":
                slow_seconds = float(value)
            elif key in SITES:
                rates[key] = float(value)
            else:
                raise ValueError(
                    f"unknown REPRO_FAULTS key {key!r}; sites are {SITES}"
                )
        except ValueError as exc:
            if "REPRO_FAULTS" in str(exc):
                raise
            raise ValueError(f"bad REPRO_FAULTS value {chunk!r}: {exc}") from exc
    return FaultPlan(
        seed, rates=rates, max_fires=max_fires, slow_seconds=slow_seconds
    )
