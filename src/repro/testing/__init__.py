"""Deterministic failure testing: the fault-injection harness.

:mod:`repro.testing.faults` plants seeded faults (worker death, wire drops,
partial lines, slow hosts, timeout storms) at fixed seams in the service
and cluster layers; :mod:`repro.testing.chaos` packages them into named
drills behind ``python -m repro chaos``.
"""

from .faults import FaultPlan, InjectedFault, activate, active, deactivate, inject

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "activate",
    "active",
    "deactivate",
    "inject",
]
