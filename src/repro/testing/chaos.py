"""chaos — named, deterministic fault drills behind ``python -m repro chaos``.

Each drill builds a real service/cluster topology, runs a traffic pattern
under a seeded :class:`~repro.testing.faults.FaultPlan`, and returns a row
of headline counts with an ``ok`` verdict.  The drills are written so the
headline counts are *deterministic for a fixed seed*: drill traffic is
single-threaded wherever a fault site's call count matters, so the k-th
decision at each site is always the same decision (see
:mod:`repro.testing.faults`).  The one exception is ``host-rejoin``, whose
wall-clock field (``rejoin_seconds``) is timing-dependent by nature and is
excluded from determinism comparisons (:data:`NONDETERMINISTIC_KEYS`).

The point of the drills is to keep the failure paths *continuously
exercised*: worker respawn, connection-drop retries, torn-line server
hardening, slow-host tolerance, timeout storms, and the coordinator's
probation/rejoin machinery each get a dedicated storm that CI replays on
every push (``chaos --seed 0``).
"""

from __future__ import annotations

import time

from ..engine import SortEngine
from ..models.params import MachineParams
from ..workloads import random_permutation
from . import faults

#: result keys that legitimately vary run-to-run (wall clock)
NONDETERMINISTIC_KEYS = ("rejoin_seconds",)

_PARAMS = MachineParams(M=64, B=8, omega=8)


def _sorted_ok(output) -> bool:
    return all(output[i] <= output[i + 1] for i in range(len(output) - 1))


# --------------------------------------------------------------------------- #
# in-process service drills
# --------------------------------------------------------------------------- #
def _drill_worker_death(seed: int) -> dict:
    """Kill pool workers mid-job; every fired death must surface as exactly
    one failed job (thread pools) while the other jobs stay correct."""
    jobs = 24
    with SortEngine(_PARAMS, workers=2) as engine:
        service = engine.service("thread")
        with faults.inject(seed=seed, rates={"worker-death": 0.3}) as plan:
            futures = [
                service.submit(random_permutation(64, seed=seed + i))
                for i in range(jobs)
            ]
            failures = 0
            unsorted = 0
            for future in futures:
                exc = future.exception()
                if isinstance(exc, faults.InjectedFault):
                    failures += 1
                elif exc is not None:
                    raise exc
                elif not _sorted_ok(future.result().output):
                    unsorted += 1
            fired = plan.fired("worker-death")
        stats = service.stats()
    return {
        "drill": "worker-death",
        "jobs": jobs,
        "fired": fired,
        "failures": failures,
        "unsorted": unsorted,
        "completed": stats["completed"],
        # `completed` counts every finished job, failed ones included;
        # records_sorted only moves on successes
        "ok": failures == fired and unsorted == 0
        and stats["completed"] == jobs,
    }


def _client_recovering(server, fn, *, max_attempts: int = 200):
    """Run ``fn(client)`` against ``server``, transparently replacing the
    client when an injected drop/timeout tears the connection.  Returns
    ``(result, reconnects)``."""
    from ..service import ServiceClient

    host, port = server.address
    client = ServiceClient(host, port)
    reconnects = 0
    try:
        for _ in range(max_attempts):
            try:
                return fn(client), reconnects
            except (ConnectionError, TimeoutError):
                try:
                    client.close()
                except OSError:
                    pass
                client = ServiceClient(host, port)
                reconnects += 1
        raise RuntimeError(f"drill exhausted {max_attempts} attempts")
    finally:
        try:
            client.close()
        except OSError:
            pass


def _wire_storm(seed: int, name: str, rates: dict) -> dict:
    """Shared body for the client-side wire storms: N sorts through a real
    socket while the plan drops connections / tears lines / injects
    timeouts; every job must still land, and the server must stay healthy
    enough to answer a clean ping afterwards."""
    from ..service import EngineServer, ServiceClient, SortService

    jobs = 12
    with SortEngine(_PARAMS, workers=2) as engine:
        service = SortService(engine, workers=2)
        try:
            with EngineServer(service).start() as server:
                with faults.inject(seed=seed, rates=rates, max_fires=10) as plan:
                    unsorted = 0
                    reconnects = 0
                    for i in range(jobs):
                        data = random_permutation(48, seed=seed + i)
                        output, r = _client_recovering(
                            server, lambda c, d=data: c.sort(d)
                        )
                        reconnects += r
                        if not _sorted_ok(output):
                            unsorted += 1
                    fired = {site: plan.fired(site) for site in rates}
                # after the storm: a fresh, fault-free client must see a
                # healthy server (the handler pool survived every tear)
                host, port = server.address
                with ServiceClient(host, port) as probe:
                    healthy = probe.ping()
                    completed = probe.stats()["completed"]
        finally:
            service.shutdown(drain=False)
    return {
        "drill": name,
        "jobs": jobs,
        **{f"fired_{site}": count for site, count in sorted(fired.items())},
        "reconnects": reconnects,
        "unsorted": unsorted,
        "healthy_after": healthy,
        "completed": completed,
        "ok": healthy and unsorted == 0 and completed >= jobs,
    }


def _drill_wire_drop(seed: int) -> dict:
    return _wire_storm(seed, "wire-drop", {"wire-drop": 0.25})


def _drill_partial_line(seed: int) -> dict:
    return _wire_storm(seed, "partial-line", {"partial-line": 0.25})


def _drill_slow_host(seed: int) -> dict:
    """Server-side stalls: every request may sleep before dispatch; the
    client (no deadline here) just waits them out — all jobs land."""
    return _wire_storm(
        seed, "slow-host", {"slow-host": 0.4}
    )


def _drill_timeout(seed: int) -> dict:
    """Client-side timeout storm on an idempotent op: fired timeouts abort
    *before* the send, so retries cannot double-submit."""
    from ..service import EngineServer, ServiceClient, SortService

    pings = 20
    with SortEngine(_PARAMS, workers=1) as engine:
        service = SortService(engine, workers=1)
        try:
            with EngineServer(service).start() as server:
                with faults.inject(
                    seed=seed, rates={"timeout": 0.3}, max_fires=15
                ) as plan:
                    retried = 0
                    for _ in range(pings):
                        _, r = _client_recovering(server, lambda c: c.ping())
                        retried += r
                    fired = plan.fired("timeout")
                host, port = server.address
                with ServiceClient(host, port) as probe:
                    submitted = probe.stats()["submitted"]
        finally:
            service.shutdown(drain=False)
    return {
        "drill": "timeout",
        "pings": pings,
        "fired_timeout": fired,
        "reconnects": retried,
        "submitted": submitted,
        "ok": retried == fired and submitted == 0,
    }


# --------------------------------------------------------------------------- #
# subprocess fleet drill
# --------------------------------------------------------------------------- #
def _drill_host_rejoin(seed: int) -> dict:
    """Kill a fleet host mid-traffic, restart it, and require the
    coordinator to re-admit it via a probation ping — within a small
    multiple of the probation interval."""
    from ..cluster import LocalCluster

    interval = 0.2
    jobs = 6
    with LocalCluster(2, workers=2) as fleet:
        coord = fleet.connect(retries=2, rejoin_interval=interval)
        try:
            before = [
                coord.submit(random_permutation(64, seed=seed + i))
                for i in range(jobs)
            ]
            coord.gather(before)

            fleet.kill(0)
            during = [
                coord.submit(random_permutation(64, seed=seed + jobs + i))
                for i in range(jobs)
            ]
            survivors = coord.gather(during)
            live_while_down = len(coord.live_hosts())

            fleet.restart(0)
            t0 = time.monotonic()
            live_after = live_while_down
            while time.monotonic() - t0 < 30 * interval:
                live_after = coord.stats()["aggregate"]["live_hosts"]
                if live_after == 2:
                    break
                time.sleep(interval / 4)
            rejoin_seconds = round(time.monotonic() - t0, 3)

            after = [
                coord.submit(random_permutation(64, seed=seed + 2 * jobs + i))
                for i in range(jobs)
            ]
            coord.gather(after)
            stats = coord.stats()["aggregate"]
        finally:
            coord.close()
    return {
        "drill": "host-rejoin",
        "jobs": 3 * jobs,
        "survivor_jobs": len(survivors),
        "live_while_down": live_while_down,
        "live_after": live_after,
        "rejoins": stats["rejoins"],
        "rejoin_seconds": rejoin_seconds,
        "ok": live_while_down == 1 and live_after == 2 and stats["rejoins"] >= 1,
    }


DRILLS = {
    "worker-death": _drill_worker_death,
    "wire-drop": _drill_wire_drop,
    "partial-line": _drill_partial_line,
    "slow-host": _drill_slow_host,
    "timeout": _drill_timeout,
    "host-rejoin": _drill_host_rejoin,
}


def run_drill(name: str, seed: int = 0) -> dict:
    """Run one named drill; returns its result row (``ok`` = verdict)."""
    try:
        drill = DRILLS[name]
    except KeyError:
        raise ValueError(
            f"unknown drill {name!r}; choose from {sorted(DRILLS)}"
        ) from None
    return drill(seed)


def run_drills(names=None, seed: int = 0) -> list[dict]:
    """Run the named drills (default: all, in registry order)."""
    return [run_drill(name, seed) for name in (names or list(DRILLS))]
