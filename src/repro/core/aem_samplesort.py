"""§4.2: AEM sample sort (distribution sort) with fanout l = kM/B.

Each level of recursion:

1. **Splitter selection** — sample ``Theta(l log n0)`` keys at random, sort
   the sample externally (2-way EM mergesort), sub-select ``l - 1`` evenly
   spaced splitters.  W.h.p. every bucket is within a constant factor of the
   average size ``n/l`` (Frazer–McKellar / Blelloch et al. over-sampling).
2. **Partitioning** — ``k`` rounds over the splitters, ``M/B`` splitters per
   round.  Each round scans the entire input (``ceil(n/B)`` reads) and writes
   out only the records belonging to that round's ``M/B`` buckets (one
   in-memory partial block per bucket, hence the ``+ l`` partial-block write
   term of Theorem 4.5).
3. **Recursion** on each bucket; base case ``n <= kM`` uses Lemma 4.2.

Small-subproblem rule (from the paper): when ``n <= k^2 M^2 / B`` the fanout
drops to ``l = ceil(n/(kM))`` so the splitter-sorting cost stays a
lower-order term; this guarantees ``l <= sqrt(n/B)``.

Theorem 4.5 bounds (w.h.p.): ``R(n) = O((kn/B) ceil(log_{kM/B}(n/B)))`` and
``W(n) = O((n/B) ceil(log_{kM/B}(n/B)))``.
"""

from __future__ import annotations

import bisect
import math
import random

from ..models.external_memory import AEMachine, ExtArray, MemoryGuard
from .em_utils import em_two_way_mergesort
from .kernels import SLOW_REFERENCE, register_kernel_entry, resolve_kernel
from .selection_sort import selection_sort

register_kernel_entry(
    "samplesort",
    vectorized="repro.core.aem_samplesort:aem_samplesort",
    slow_reference="repro.core.aem_samplesort:aem_samplesort",  # same entry point, kernel="slow_reference"
    contract="Theorem 4.5",
)


#: Over-sampling multiplier (the paper's Theta(l log n0) constant).
SAMPLE_FACTOR = 4


def aem_samplesort(
    machine: AEMachine,
    arr: ExtArray,
    k: int = 1,
    seed: int = 0,
    guard: MemoryGuard | None = None,
    sample_factor: int = SAMPLE_FACTOR,
    splitters: str = "random",
    kernel: str | None = None,
) -> ExtArray:
    """Sort ``arr`` with the §4.2 sample sort; ``k = 1`` is the classic EM
    distribution sort.  Returns a new sorted :class:`ExtArray`.

    ``sample_factor`` scales the over-sampling constant (the Theta in
    ``Theta(l log n0)``); the E17 ablation sweeps it to show the bucket-
    balance / sampling-cost trade.

    ``splitters="deterministic"`` uses the Aggarwal–Vitter-style selection
    the paper says "is likely" to work (§4.2's closing remark): sort
    ``M``-record chunks in memory, keep every ``(M/(2l))``-th record of each
    sorted chunk, sort the collected sample, sub-select ``l - 1`` evenly.
    The classic counting argument makes every bucket at most ``~2n/l``
    records **deterministically** (no w.h.p. qualifier); the cost is one
    extra input scan per level, absorbed by Theorem 4.5's ``O(kn/B)``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if sample_factor < 1:
        raise ValueError(f"sample_factor must be >= 1, got {sample_factor}")
    if splitters not in ("random", "deterministic"):
        raise ValueError(f"unknown splitter mode {splitters!r}")
    if guard is None:
        guard = MemoryGuard()
    rng = random.Random(seed)
    return _sort(
        machine,
        arr,
        k,
        rng,
        guard,
        n0=max(arr.length, 2),
        sf=sample_factor,
        deterministic=splitters == "deterministic",
        kernel=resolve_kernel(kernel),
    )


def _sort(
    machine: AEMachine,
    arr: ExtArray,
    k: int,
    rng: random.Random,
    guard: MemoryGuard,
    n0: int,
    sf: int = SAMPLE_FACTOR,
    deterministic: bool = False,
    kernel: str = "vectorized",
) -> ExtArray:
    params = machine.params
    n = arr.length

    if n <= k * params.M:
        return selection_sort(machine, arr, guard=guard, kernel=kernel)

    # fanout: full l = kM/B, except near the bottom of the recursion
    if n <= (k * params.M) ** 2 / params.B:
        l = max(2, math.ceil(n / (k * params.M)))
    else:
        l = params.fanout(k)

    if deterministic:
        splitters = _choose_splitters_deterministic(machine, arr, l, kernel=kernel)
    else:
        splitters = _choose_splitters(machine, arr, l, rng, n0, sf=sf, kernel=kernel)
    buckets = _partition(machine, arr, splitters, k, guard, kernel=kernel)
    sorted_buckets = [
        _sort(machine, b, k, rng, guard, n0, sf=sf, deterministic=deterministic,
              kernel=kernel)
        for b in buckets
    ]
    return machine.concat(sorted_buckets, name="samplesort-out")


# ---------------------------------------------------------------------- #
# splitter selection
# ---------------------------------------------------------------------- #
def _choose_splitters(
    machine: AEMachine,
    arr: ExtArray,
    l: int,
    rng: random.Random,
    n0: int,
    sf: int = SAMPLE_FACTOR,
    kernel: str = "vectorized",
) -> list:
    """Sample, sort externally, sub-select ``l - 1`` evenly spaced keys."""
    n = arr.length
    m = min(n, sf * l * max(1, math.ceil(math.log2(n0))))

    # Read the sampled records.  Sampling by position, grouped by block so a
    # block containing several samples is read once.
    positions = sorted(rng.sample(range(n), m))
    sample_writer = machine.writer(name="sample")
    # positions -> (block, offset); arr may contain partial blocks, so walk
    # blocks in order tracking the running record offset.
    pos_iter = iter(positions)
    want = next(pos_iter, None)
    offset = 0
    for bi in range(arr.num_blocks):
        blk_len = arr.block_len(bi)  # length lookup is free bookkeeping
        if want is None:
            break
        if want >= offset + blk_len:
            offset += blk_len
            continue
        block = machine.read_block(arr, bi, copy=False)
        if kernel == SLOW_REFERENCE:
            while want is not None and want < offset + blk_len:
                sample_writer.append(block[want - offset])
                want = next(pos_iter, None)
        else:
            picks = []
            while want is not None and want < offset + blk_len:
                picks.append(block[want - offset])
                want = next(pos_iter, None)
            sample_writer.extend(picks)
        offset += blk_len
    sample = em_two_way_mergesort(machine, sample_writer.close(), kernel=kernel)

    # sub-select every (m/l)-th record as a splitter
    step = max(1, m // l)
    targets = [i * step for i in range(1, l) if i * step < m]
    return _select_positions(machine, sample, targets, kernel=kernel)


def _select_positions(
    machine: AEMachine, arr: ExtArray, targets: list[int], kernel: str
) -> list:
    """Scan the whole of ``arr`` (charging every block) and return the
    records at the given sorted positions."""
    if kernel == SLOW_REFERENCE:
        out: list = []
        ti = 0
        idx = 0
        for rec in machine.scan(arr):
            if ti < len(targets) and idx == targets[ti]:
                out.append(rec)
                ti += 1
            idx += 1
        return out
    # block-granular: offset arithmetic instead of a per-record index walk
    out = []
    ti = 0
    offset = 0
    for block in machine.scan_blocks(arr):
        end = offset + len(block)
        while ti < len(targets) and targets[ti] < end:
            out.append(block[targets[ti] - offset])
            ti += 1
        offset = end
    return out


def _choose_splitters_deterministic(
    machine: AEMachine, arr: ExtArray, l: int, kernel: str = "vectorized"
) -> list:
    """Aggarwal–Vitter-style deterministic splitters (§4.2's closing remark).

    Sort each ``M``-record chunk in memory (one scan), keep every
    ``ceil(M/(2l))``-th record of each sorted chunk as a sample (``~2l`` per
    chunk), sort the collected sample externally, and sub-select ``l - 1``
    evenly spaced keys.  A rank-counting argument bounds every bucket by
    roughly ``2n/l`` records with no probabilistic qualifier: between two
    consecutive chosen splitters each chunk contributes at most
    ``ceil(M/(2l))`` records per sample gap.
    """
    params = machine.params
    n = arr.length
    stride = max(1, math.ceil(params.M / (2 * l)))

    sample_writer = machine.writer(name="det-sample")
    chunk: list = []

    def flush_chunk(part: list) -> None:
        if not part:
            return
        part.sort()  # in primary memory: free
        if kernel == SLOW_REFERENCE:
            for idx in range(stride - 1, len(part), stride):
                sample_writer.append(part[idx])
        else:
            sample_writer.extend(part[stride - 1 :: stride])

    if kernel == SLOW_REFERENCE:
        for rec in machine.scan(arr):
            chunk.append(rec)
            if len(chunk) == params.M:
                flush_chunk(chunk)
                chunk = []
    else:
        for block in machine.scan_blocks(arr):
            chunk.extend(block)
            while len(chunk) >= params.M:
                flush_chunk(chunk[: params.M])
                del chunk[: params.M]
    flush_chunk(chunk)
    sample = em_two_way_mergesort(machine, sample_writer.close(), kernel=kernel)

    m = sample.length
    if m == 0:
        return []
    step = max(1, m // l)
    targets = [i * step for i in range(1, l) if i * step < m]
    return _select_positions(machine, sample, targets, kernel=kernel)


# ---------------------------------------------------------------------- #
# partitioning: k rounds of M/B splitters
# ---------------------------------------------------------------------- #
def _partition(
    machine: AEMachine,
    arr: ExtArray,
    splitters: list,
    k: int,
    guard: MemoryGuard,
    kernel: str = "vectorized",
) -> list[ExtArray]:
    """Distribute ``arr`` into ``len(splitters) + 1`` buckets.

    Processes splitters in rounds of ``M/B``; each round scans the whole
    input and writes only the records of that round's buckets, keeping one
    partial block per bucket in memory (Theorem 4.5's memory budget
    ``M + B + M/B``).

    The vectorized kernel distributes a whole scanned block at a time:
    records are routed into per-bucket staging lists (``bisect`` against the
    round's splitters) and flushed with one ``extend`` per bucket per block
    — same writer contents, same charges, no per-record dispatch.
    """
    params = machine.params
    n_buckets = len(splitters) + 1
    per_round = max(1, params.blocks_in_memory)
    buckets: list[ExtArray] = [None] * n_buckets  # type: ignore[list-item]

    footprint = params.M + params.B + params.blocks_in_memory
    guard.acquire(footprint)
    try:
        for first_bucket in range(0, n_buckets, per_round):
            last_bucket = min(first_bucket + per_round, n_buckets)  # exclusive
            # key range covered by this round's buckets:
            lo = splitters[first_bucket - 1] if first_bucket > 0 else None
            hi = splitters[last_bucket - 1] if last_bucket - 1 < len(splitters) else None
            writers = [
                machine.writer(name=f"bucket{first_bucket + j}")
                for j in range(last_bucket - first_bucket)
            ]
            round_splitters = splitters[first_bucket : last_bucket - 1]
            if kernel == SLOW_REFERENCE:
                for rec in machine.scan(arr):
                    if lo is not None and rec < lo:
                        continue
                    if hi is not None and rec >= hi:
                        continue
                    j = bisect.bisect_right(round_splitters, rec)
                    writers[j].append(rec)
            else:
                _distribute_blocks(
                    machine.scan_blocks(arr), writers, round_splitters, lo, hi
                )
            for j, w in enumerate(writers):
                buckets[first_bucket + j] = w.close()

    finally:
        guard.release(footprint)
    return [b for b in buckets if b.length > 0]


def _distribute_blocks(blocks, writers, round_splitters, lo, hi) -> None:
    """Route every record of ``blocks`` within ``[lo, hi)`` to its bucket
    writer.

    Staging keeps one in-memory partial block per bucket — exactly the
    paper's "one partial block per bucket" budget — and flushes a bucket
    with one cost-equivalent ``extend`` whenever its staged records reach a
    full block, so writer dispatch is per *block*, not per record.
    """
    n_writers = len(writers)
    if n_writers == 1:
        # single bucket (degenerate splitter range): pure filtered append
        w = writers[0]
        for block in blocks:
            if lo is None and hi is None:
                w.extend(block)
            else:
                w.extend(
                    [r for r in block
                     if (lo is None or r >= lo) and (hi is None or r < hi)]
                )
        return
    B = writers[0].machine.params.B
    staging: list[list] = [[] for _ in range(n_writers)]
    bisect_right = bisect.bisect_right
    no_bounds = lo is None and hi is None
    for block in blocks:
        for rec in block:
            if not no_bounds:
                if lo is not None and rec < lo:
                    continue
                if hi is not None and rec >= hi:
                    continue
            j = bisect_right(round_splitters, rec)
            chunk = staging[j]
            chunk.append(rec)
            if len(chunk) == B:
                writers[j].extend(chunk)
                staging[j] = []
    for j in range(n_writers):
        if staging[j]:
            writers[j].extend(staging[j])


# ---------------------------------------------------------------------- #
# Theorem 4.5 closed forms (same recursion shape as the mergesort)
# ---------------------------------------------------------------------- #
def predicted_reads(n: int, M: int, B: int, k: int) -> int:
    """Theorem 4.5 read bound (constant = 1 on the leading term)."""
    from .aem_mergesort import merge_levels

    return k * math.ceil(n / B) * merge_levels(n, M, B, k)


def predicted_writes(n: int, M: int, B: int, k: int) -> int:
    """Theorem 4.5 write bound (constant = 1 on the leading term)."""
    from .aem_mergesort import merge_levels

    return math.ceil(n / B) * merge_levels(n, M, B, k)
