"""§4.2 extension: the AEM sample sort on the Asymmetric Private-Cache model.

The paper parallelises the sample sort for ``p = n/M`` processors, each with
a private cache of ``M`` records over shared asymmetric memory:

* within a level, the input is grouped into ``n/(kM)`` chunks of ``kM``
  records; chunks x rounds gives ``n/(kM) * k = n/M`` independent tasks —
  one per processor — each reading its whole chunk (``kM/B`` block reads)
  and writing its round's bucket share (``~M/B`` block writes);
* splitters come from a sample a log factor smaller, sorted by a parallel
  mergesort of depth ``O(k log^2 n)``;
* the base case replaces the sequential selection sort by ``k`` processors
  that each read the whole ``<= kM``-record partition and selection-sort
  their own ``M``-record share.

Total time ``O(k (M/B + log^2 n)(1 + log_{kM/B}(n/kM)))`` w.h.p. — linear
speedup when ``M/B >= log^2 n``.

Simulation strategy: the *data movement* is executed for real on an
:class:`AEMachine` (so the output is verifiably sorted and total counts are
measured, not asserted); each task's counter delta is attributed to a
processor ledger, whose maximum is the makespan.  Coordination costs that
the paper bounds analytically (the parallel-mergesort depth for splitter
selection, the counting/prefix-sum pass) are charged as explicit depth terms
on every processor, labelled at the call site.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..models.external_memory import AEMachine, ExtArray
from ..models.params import MachineParams
from .aem_samplesort import _choose_splitters, _distribute_blocks
from .kernels import SLOW_REFERENCE, register_kernel_entry, resolve_kernel
from .selection_sort import selection_sort

register_kernel_entry(
    "parallel-samplesort",
    vectorized="repro.core.parallel_samplesort:parallel_samplesort",
    slow_reference="repro.core.parallel_samplesort:parallel_samplesort",  # same entry point, kernel="slow_reference"
    contract="Theorem 4.5",
)


@dataclass
class ProcessorLedger:
    """Per-processor asymmetric-cost tallies; makespan = max over processors."""

    p: int
    omega: int
    costs: list[float] = field(default_factory=list)
    _next: int = 0

    def __post_init__(self) -> None:
        if not self.costs:
            self.costs = [0.0] * self.p

    def charge(self, proc: int, reads: int, writes: int) -> None:
        self.costs[proc % self.p] += reads + self.omega * writes

    def charge_all(self, amount: float) -> None:
        """A synchronisation phase every processor participates in."""
        for i in range(self.p):
            self.costs[i] += amount

    def charge_group(self, total_cost: float, group_size: int) -> None:
        """Split ``total_cost`` across a group of ``group_size`` processors
        (the §4.2 convention: "processors are divided among the sub-problems
        proportional to the size of the sub-problem")."""
        group_size = max(1, min(group_size, self.p))
        share = total_cost / group_size
        start = self._next
        for i in range(group_size):
            self.costs[(start + i) % self.p] += share
        self._next = (start + group_size) % self.p

    def next_proc(self) -> int:
        """Round-robin task placement (the paper divides processors evenly)."""
        proc = self._next
        self._next = (self._next + 1) % self.p
        return proc

    @property
    def makespan(self) -> float:
        return max(self.costs)

    @property
    def total(self) -> float:
        return sum(self.costs)


@dataclass
class ParallelSortResult:
    output: ExtArray
    ledger: ProcessorLedger
    machine: AEMachine

    @property
    def speedup(self) -> float:
        """Work divided by makespan — linear speedup approaches ``p``."""
        return self.ledger.total / self.ledger.makespan if self.ledger.makespan else 1.0


def parallel_samplesort(
    params: MachineParams,
    data: list,
    k: int = 1,
    seed: int = 0,
    p: int | None = None,
    kernel: str | None = None,
) -> ParallelSortResult:
    """Sort ``data`` with per-processor accounting on the Private-Cache model.

    ``p`` defaults to the paper's ``n/M`` (at least 1).  ``kernel`` picks the
    block-granular or the record-at-a-time implementation (identical outputs,
    counters and ledger charges).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = len(data)
    if p is None:
        p = max(1, n // params.M)
    machine = AEMachine(params)
    ledger = ProcessorLedger(p=p, omega=params.omega)
    rng = random.Random(seed)
    arr = machine.from_list(data, name="input")
    out = _sort(machine, ledger, arr, k, rng, n0=max(n, 2), n_root=max(n, 1),
                kernel=resolve_kernel(kernel))
    return ParallelSortResult(out, ledger, machine)


def _task(machine: AEMachine, ledger: ProcessorLedger, proc: int, fn):
    """Run ``fn()`` and attribute its counter delta to processor ``proc``."""
    before = machine.counter.snapshot()
    result = fn()
    delta = machine.counter.snapshot() - before
    ledger.charge(proc, delta.block_reads, delta.block_writes)
    return result


def _sort(
    machine: AEMachine,
    ledger: ProcessorLedger,
    arr: ExtArray,
    k: int,
    rng: random.Random,
    n0: int,
    n_root: int,
    kernel: str = "vectorized",
) -> ExtArray:
    params = machine.params
    n = arr.length

    if n <= k * params.M:
        return _parallel_base_case(machine, ledger, arr, k, kernel=kernel)

    if n <= (k * params.M) ** 2 / params.B:
        l = max(2, math.ceil(n / (k * params.M)))
    else:
        l = params.fanout(k)

    # This sub-problem's processor group (§4.2: "processors are then divided
    # among the sub-problems proportional to the size of the sub-problem").
    group = max(1, round(ledger.p * n / n_root))

    # splitter selection: §4.2 performs it *in parallel* ("this can be done
    # on a sample that is a logarithmic factor smaller ... using parallel
    # mergesort"), so the sampling I/O — executed here sequentially — is
    # split over the group, and the parallel-mergesort *depth*
    # O(k log^2 n) is a synchronisation charge on each group member.
    before = machine.counter.snapshot()
    splitters = _choose_splitters(machine, arr, l, rng, n0, kernel=kernel)
    delta = machine.counter.snapshot() - before
    sync = k * math.log2(max(n0, 2)) ** 2
    ledger.charge_group(
        delta.block_reads + ledger.omega * delta.block_writes + group * sync,
        group,
    )

    # chunk x round tasks: each scans one kM-record chunk once and writes
    # the records of one round's splitter range.
    chunk_blocks = max(1, (k * params.M) // params.B)
    chunks = machine.split_blocks(arr, max(1, math.ceil(arr.num_blocks / chunk_blocks)))
    per_round = max(1, params.blocks_in_memory)
    n_buckets = len(splitters) + 1
    rounds = range(0, n_buckets, per_round)

    # the pre-pass that counts bucket sizes per chunk + prefix sums (§4.2:
    # "a lower-order term"): one scan per chunk, charged per task
    bucket_parts: dict[int, list[ExtArray]] = {b: [] for b in range(n_buckets)}
    for chunk in chunks:
        for first in rounds:
            last = min(first + per_round, n_buckets)
            proc = ledger.next_proc()
            parts = _task(
                machine,
                ledger,
                proc,
                lambda c=chunk, f=first, la=last: _partition_range(
                    machine, c, splitters, f, la, kernel=kernel
                ),
            )
            for b, part in parts:
                bucket_parts[b].append(part)

    buckets = [
        machine.concat(parts, name=f"bucket{b}")
        for b, parts in bucket_parts.items()
        if parts
    ]
    sorted_buckets = [
        _sort(machine, ledger, b, k, rng, n0, n_root, kernel=kernel)
        for b in buckets
        if b.length
    ]
    return machine.concat(sorted_buckets, name="psort-out")


def _partition_range(
    machine: AEMachine,
    chunk: ExtArray,
    splitters: list,
    first_bucket: int,
    last_bucket: int,
    kernel: str = "vectorized",
) -> list[tuple[int, ExtArray]]:
    """One task: scan ``chunk``, emit records of buckets [first, last)."""
    import bisect

    lo = splitters[first_bucket - 1] if first_bucket > 0 else None
    hi = splitters[last_bucket - 1] if last_bucket - 1 < len(splitters) else None
    round_splitters = splitters[first_bucket : last_bucket - 1]
    writers = [
        machine.writer(name=f"pbucket{first_bucket + j}")
        for j in range(last_bucket - first_bucket)
    ]
    if kernel == SLOW_REFERENCE:
        for rec in machine.scan(chunk):
            if lo is not None and rec < lo:
                continue
            if hi is not None and rec >= hi:
                continue
            writers[bisect.bisect_right(round_splitters, rec)].append(rec)
    else:
        _distribute_blocks(machine.scan_blocks(chunk), writers, round_splitters, lo, hi)
    out = []
    for j, w in enumerate(writers):
        part = w.close()
        if part.length:
            out.append((first_bucket + j, part))
    return out


def _parallel_base_case(
    machine: AEMachine, ledger: ProcessorLedger, arr: ExtArray, k: int,
    kernel: str = "vectorized",
) -> ExtArray:
    """§4.2 base case: ``k`` processors each scan the whole partition and
    selection-sort their own ``M``-record share.

    We execute the movement once (a sequential selection sort produces the
    identical output blocks) and charge each of the ``k`` shares to its own
    processor: ``ceil(n/B)`` reads (the shared scan) + its share of writes.
    """
    params = machine.params
    n = arr.length
    before = machine.counter.snapshot()
    out = selection_sort(machine, arr, kernel=kernel)
    delta = machine.counter.snapshot() - before
    shares = max(1, math.ceil(n / params.M))
    reads_each = math.ceil(n / params.B)
    writes_each = math.ceil(delta.block_writes / shares)
    for _ in range(shares):
        ledger.charge(ledger.next_proc(), reads_each, writes_each)
    return out
