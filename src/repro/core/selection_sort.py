"""Lemma 4.2: the AEM base-case sort (k-pass selection sort).

*"n <= kM records stored in ceil(n/B) blocks can be sorted using at most
k*ceil(n/B) reads and ceil(n/B) writes, on the AEM model with primary memory
size M + B."*

Each phase scans the whole input (``ceil(n/B)`` reads), retains in primary
memory the ``M`` smallest records strictly larger than the largest record
written so far, then emits them in sorted order (``M/B`` block writes).  With
``ceil(n/M) <= k`` phases, every record is written exactly once.

Primary memory: the M-record working set + one load block (+ the store buffer,
which the model's ``M + B`` budget absorbs because the working set shrinks as
records are emitted; we keep the accounting conservative and charge both).

Duplicate keys: the phase cutoff ("strictly larger than the largest record
written so far") stalls on inputs whose duplicate runs exceed ``M``, so both
paths apply the paper's §2 remark — *"a position index can always be added to
make keys unique"* — below the engine: every record is compared as a
``(record, scan position)`` pair.  Positions come from the scan order alone
(free metadata, no extra I/O), the cutoff always advances by exactly
``min(M, remaining)`` records per phase, and the emitted order is the
*stable* sort of the input.  Counters are unchanged and meet the lemma's
exact bounds on every input.
"""

from __future__ import annotations

import heapq
import math

from ..models.external_memory import AEMachine, ExtArray, MemoryGuard
from .kernels import (
    SLOW_REFERENCE,
    register_kernel_entry,
    resolve_kernel,
    take_smallest_indexed,
)

register_kernel_entry(
    "selection",
    vectorized="repro.core.selection_sort:selection_sort",
    slow_reference="repro.core.selection_sort:selection_sort",  # same entry point, kernel="slow_reference"
    contract="Lemma 4.2",
)


def selection_sort(
    machine: AEMachine,
    arr: ExtArray,
    guard: MemoryGuard | None = None,
    *,
    kernel: str | None = None,
) -> ExtArray:
    """Sort ``arr`` with the Lemma 4.2 multi-pass selection sort.

    Returns a new sorted :class:`ExtArray`.  Works for any ``n`` (the lemma's
    read bound ``k * ceil(n/B)`` holds with ``k = ceil(n/M)``), but the AEM
    algorithms only invoke it for ``n <= kM`` where that ``k`` matches their
    branching parameter.

    ``kernel`` selects the block-granular fast path (``"vectorized"``,
    default) or the record-at-a-time reference (``"slow_reference"``); both
    produce identical blocks and identical counters.
    """
    if resolve_kernel(kernel) == SLOW_REFERENCE:
        return _selection_sort_slow(machine, arr, guard)

    params = machine.params
    n = arr.length
    out_writer = machine.writer(name=f"selsort({arr.name})")
    if n == 0:
        return out_writer.close()

    if guard is None:
        guard = MemoryGuard()
    # M-record working set + load block + store buffer
    guard.acquire(params.M + 2 * params.B)

    M = params.M
    last_max = None  # largest (record, position) pair emitted so far
    emitted = 0
    try:
        while emitted < n:
            # One scan: the M smallest (record, position) pairs > last_max,
            # selected with the shared bounded kernel (exact M-smallest
            # multiset, same as the reference's record-at-a-time max-heap;
            # scratch <= 1.5 M).  Position decoration keeps the cutoff
            # advancing through duplicate runs.
            batch = take_smallest_indexed(machine.scan_blocks(arr), M, lo=last_max)
            if not batch:
                raise AssertionError(
                    "selection phase found no records although output is incomplete"
                )
            out_writer.extend([rec for rec, _ in batch])
            emitted += len(batch)
            last_max = batch[-1]
    finally:
        guard.release(params.M + 2 * params.B)
    return out_writer.close()


def _selection_sort_slow(
    machine: AEMachine,
    arr: ExtArray,
    guard: MemoryGuard | None = None,
) -> ExtArray:
    """Record-at-a-time reference implementation (parity baseline)."""
    params = machine.params
    n = arr.length
    out_writer = machine.writer(name=f"selsort({arr.name})")
    if n == 0:
        return out_writer.close()

    if guard is None:
        guard = MemoryGuard()
    # M-record working set + load block + store buffer
    guard.acquire(params.M + 2 * params.B)

    last_max = None  # largest (record, position) pair emitted so far
    emitted = 0
    try:
        while emitted < n:
            # One scan: collect the M smallest (record, position) pairs >
            # last_max — the §2 position-index uniquification, so the
            # cutoff advances through duplicate runs.  In-memory work is
            # free in the model; we use a bounded max-heap.
            working: list = []  # max-heap via negated keys
            pos = 0
            for bi in range(arr.num_blocks):
                if arr.block_len(bi) == 0:  # empty placeholder: nothing to transfer
                    continue
                block = machine.read_block(arr, bi, copy=False)
                for rec in block:
                    pair = (rec, pos)
                    pos += 1
                    if last_max is not None and pair <= last_max:
                        continue
                    if len(working) < params.M:
                        heapq.heappush(working, _Neg(pair))
                    elif pair < working[0].value:
                        heapq.heapreplace(working, _Neg(pair))
            batch = sorted(item.value for item in working)
            if not batch:
                raise AssertionError(
                    "selection phase found no records although output is incomplete"
                )
            for rec, _ in batch:
                out_writer.append(rec)
            emitted += len(batch)
            last_max = batch[-1]
    finally:
        guard.release(params.M + 2 * params.B)
    return out_writer.close()


class _Neg:
    """Max-heap adapter: orders by descending value under heapq's min-heap."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Neg") -> bool:
        return self.value > other.value


def predicted_reads(n: int, M: int, B: int) -> int:
    """Lemma 4.2 read bound with the tight per-phase count."""
    phases = max(1, math.ceil(n / M))
    return phases * math.ceil(n / B)


def predicted_writes(n: int, B: int) -> int:
    """Lemma 4.2 write bound: every record written once."""
    return math.ceil(n / B)
