"""Algorithm 1: ASYMMETRIC-PRAM SORT — O(n log n) reads, O(n) writes,
O(omega log n) depth w.h.p. (Theorem 3.2).

Execution model
---------------
The algorithm runs sequentially but is *accounted* on the Asymmetric CRCW
PRAM via :class:`~repro.models.pram.DepthTracker`:

* data-dependent steps (binary searches, random placement, per-bucket RAM
  sorts) execute for real and charge their **measured** reads/writes, with
  depth tracked through parallel-region structure (a ``parallel_for``'s depth
  is its deepest iterate);
* cited parallel primitives that we do not re-implement at the PRAM gate
  level — Cole's mergesort [14], parallel prefix sums, parallel radix sort
  [32] — execute sequentially, charge their real operation counts as *work*,
  and charge their published depth bound explicitly
  (:meth:`DepthTracker.charge_depth`).  Each such charge is annotated with
  the citation at the call site.

Steps (paper numbering):

1. sample each record with probability ``1/log n``; sort the sample.
2. every ``log n``-th sorted sample element becomes a splitter; allocate a
   ``c log^2 n``-slot array per bucket (``c = 4`` gives the >= 2x slack the
   w.h.p. argument of [10] needs).
3. binary-search every record to its bucket (parallel).
4. the *placement problem* [32, 33]: each record repeatedly tries a uniform
   random slot of its bucket array; records are processed in groups of
   ``log n`` (sequential within a group, parallel across groups) so that
   w.h.p. no group needs more than ``O(log n)`` tries total.
5. pack out empty cells with a prefix sum.
6. (optional; enables the O(omega log n) depth bound) two rounds of
   Lemma 3.1 sub-partitioning inside every bucket.
7. RAM-sort (§3 BST sort) every bucket/sub-bucket in parallel.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field

from ..models.counters import CostCounter
from ..models.pram import DepthTracker
from .ram_sort import bst_sort, mergesort

#: slack factor for bucket arrays (step 2); the w.h.p. argument needs >= 2.
BUCKET_SLACK = 4


@dataclass
class PramSortResult:
    """Output and PRAM accounting of one Algorithm-1 run."""

    output: list
    tracker: DepthTracker
    stats: dict = field(default_factory=dict)

    @property
    def reads(self) -> int:
        return self.tracker.counter.element_reads

    @property
    def writes(self) -> int:
        return self.tracker.counter.element_writes

    @property
    def depth(self) -> float:
        return self.tracker.depth


def pram_sample_sort(
    data: list,
    omega: int,
    seed: int = 0,
    reduce_depth: bool = True,
    bucket_slack: int = BUCKET_SLACK,
) -> PramSortResult:
    """Sort ``data`` on the Asymmetric CRCW PRAM (Algorithm 1).

    ``reduce_depth=False`` skips step 6, giving the simpler
    ``O(omega log^2 n)``-depth variant the paper describes before Lemma 3.1.
    ``bucket_slack`` is the step-2 array slack constant ``c`` (must leave at
    least 2x headroom for the w.h.p. placement argument; the E17 ablation
    sweeps it to show the tries/space trade).
    """
    n = len(data)
    if bucket_slack < 2:
        raise ValueError(f"bucket_slack must be >= 2, got {bucket_slack}")
    tracker = DepthTracker(omega)
    if n <= 1:
        return PramSortResult(list(data), tracker)
    rng = random.Random(seed)
    log_n = max(1, math.ceil(math.log2(n)))

    # ---- step 1: sample w.p. 1/log n, sort the sample ------------------ #
    sample = []
    for rec in data:
        if rng.random() < 1.0 / log_n:
            sample.append(rec)
    # reading the sampled records out of A
    tracker.charge_parallel_bulk(len(sample), reads=1)
    # Cole's parallel mergesort [14]: real counts as work, depth O(omega log n)
    sample_counter = CostCounter()
    sorted_sample, _ = mergesort(sample, sample_counter)
    tracker.charge_work_only(
        reads=sample_counter.element_reads, writes=sample_counter.element_writes
    )
    tracker.charge_depth(omega * log_n)

    # ---- step 2: splitters + bucket arrays ----------------------------- #
    splitters = [sorted_sample[i] for i in range(log_n, len(sorted_sample), log_n)]
    n_buckets = len(splitters) + 1
    slots = max(1, bucket_slack * log_n * log_n)
    arrays: list[list] = [[None] * slots for _ in range(n_buckets)]
    # allocation is free; lower-order initialisation charge
    tracker.charge_depth(1)

    # ---- step 3: binary search each record to its bucket --------------- #
    bucket_of = [0] * n
    per_search_reads = max(1, math.ceil(math.log2(len(splitters) + 1)))
    for i, rec in enumerate(data):
        bucket_of[i] = bisect.bisect_right(splitters, rec)
    # n parallel binary searches: log(#splitters) reads + 1 write each
    tracker.charge_parallel_bulk(n, reads=per_search_reads + 1, writes=1)

    # ---- step 4: random placement [32] ---------------------------------- #
    # groups of log n records: sequential within, parallel across
    total_tries = 0
    max_group_tries = 0
    group_tries = 0
    placed = 0
    for i in range(n):
        rec = data[i]
        b = bucket_of[i]
        arr = arrays[b]
        tries = 0
        while True:
            tries += 1
            pos = rng.randrange(slots)
            if arr[pos] is None:
                arr[pos] = rec
                break
            if tries > 64 * slots:  # safety valve; w.h.p. unreachable
                raise RuntimeError(
                    "placement failed: bucket array overfull "
                    f"(bucket {b}, {slots} slots) — increase BUCKET_SLACK"
                )
        total_tries += tries
        group_tries += tries
        placed += 1
        if placed % log_n == 0:
            max_group_tries = max(max_group_tries, group_tries)
            group_tries = 0
    max_group_tries = max(max_group_tries, group_tries)
    # each try: 1 read (probe) ; each record: 1 write (the successful claim)
    tracker.charge_work_only(reads=total_tries, writes=n)
    # depth: the deepest group runs its tries sequentially
    tracker.charge_depth(max_group_tries * (1 + omega))

    # ---- step 5: pack out empty cells (parallel prefix sum) ------------- #
    buckets: list[list] = []
    for arr in arrays:
        buckets.append([rec for rec in arr if rec is not None])
    tracker.charge_work_only(reads=n_buckets * slots, writes=n)
    tracker.charge_depth(omega * log_n)  # prefix-sum depth [9, 24]

    # ---- step 6: two rounds of Lemma 3.1 sub-partitioning --------------- #
    if reduce_depth:
        for _round in range(2):
            new_buckets: list[list] = []
            with tracker.parallel() as frame:
                for bucket in buckets:
                    with frame.branch():
                        new_buckets.extend(_lemma31_partition(bucket, tracker, omega))
            buckets = new_buckets

    # ---- step 7: RAM-sort each bucket in parallel ------------------------ #
    output: list = []
    max_bucket = 0
    with tracker.parallel() as frame:
        sorted_buckets = []
        for bucket in buckets:
            max_bucket = max(max_bucket, len(bucket))
            with frame.branch():
                if len(bucket) <= 1:
                    sorted_buckets.append(list(bucket))
                    continue
                counter = CostCounter()
                out, _ = bst_sort(bucket, counter, tree="rb")
                # the branch's sequential cost: its own reads/writes
                tracker.charge(
                    reads=counter.element_reads, writes=counter.element_writes
                )
                sorted_buckets.append(out)
    for sb in sorted_buckets:
        output.extend(sb)

    stats = {
        "n": n,
        "sample_size": len(sample),
        "buckets": len(buckets),
        "max_final_bucket": max_bucket,
        "placement_tries": total_tries,
        "max_group_tries": max_group_tries,
    }
    return PramSortResult(output, tracker, stats)


def _lemma31_partition(bucket: list, tracker: DepthTracker, omega: int) -> list[list]:
    """One round of Lemma 3.1: split ``m`` records into ~``m^{1/3}`` ordered
    buckets, each smaller than ``m^{2/3} log m``.

    Groups of size ``m^{1/3}`` are RAM-sorted in parallel (measured counts,
    real depth through the parallel frame); every ``log m``-th record of each
    sorted group is sampled; the sample is sorted (Cole [14], work measured,
    depth charged); ``m^{1/3} - 1`` evenly spaced splitters partition the
    records via a parallel radix/counting sort on bucket numbers ([32]: linear
    work, ``O(omega sqrt(m))`` depth).
    """
    m = len(bucket)
    if m <= 8:
        return [bucket] if bucket else []
    log_m = max(1, math.ceil(math.log2(m)))
    group_size = max(2, round(m ** (1 / 3)))

    # sort groups in parallel (the branch charges give max-group depth)
    groups = [bucket[i : i + group_size] for i in range(0, m, group_size)]
    sorted_groups: list[list] = []
    with tracker.parallel() as frame:
        for g in groups:
            with frame.branch():
                counter = CostCounter()
                out, _ = bst_sort(g, counter, tree="rb") if len(g) > 1 else (list(g), None)
                if counter.element_reads:
                    tracker.charge(
                        reads=counter.element_reads, writes=counter.element_writes
                    )
                sorted_groups.append(out)

    # sample every log m-th record of each sorted group
    sample: list = []
    for g in sorted_groups:
        sample.extend(g[log_m - 1 :: log_m])
    tracker.charge_parallel_bulk(len(sample), reads=1, writes=1)
    if not sample:
        return [bucket]

    # Cole's mergesort on the sample [14]
    counter = CostCounter()
    sorted_sample, _ = mergesort(sample, counter)
    tracker.charge_work_only(reads=counter.element_reads, writes=counter.element_writes)
    tracker.charge_depth(omega * log_m)

    # m^{1/3} - 1 evenly spaced splitters
    want = max(1, round(m ** (1 / 3)) - 1)
    step = max(1, len(sorted_sample) // (want + 1))
    splitters = sorted_sample[step::step][:want]
    if not splitters:
        return [bucket]

    # parallel radix sort on bucket numbers [32]: linear work, O(w sqrt(m)) depth
    out: list[list] = [[] for _ in range(len(splitters) + 1)]
    per_search_reads = max(1, math.ceil(math.log2(len(splitters) + 1)))
    for rec in bucket:
        out[bisect.bisect_right(splitters, rec)].append(rec)
    tracker.charge_work_only(
        reads=m * (per_search_reads + 1), writes=m
    )
    tracker.charge_depth(omega * math.sqrt(m))
    return [b for b in out if b]
