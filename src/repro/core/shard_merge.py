"""The cluster gather step: k-way merge of sorted shards.

The coordinator's scatter-gather (see :mod:`repro.cluster`) sorts per-host
shards remotely and merges them centrally.  That merge is the one step of
the distributed plan that moves blocks on the *coordinator's* machine, so it
is a first-class kernel: registered, contracted, and billed through the
same :class:`~repro.models.counters.CostCounter` as every §4 algorithm.

Cost (the merge step of the paper's multi-way merging, §4.1): with one
resident block per shard plus a store buffer — primary memory
``(k+1) * B`` — merging ``k`` sorted shards of total length ``n`` takes
exactly ``sum_i ceil(n_i/B)`` reads and ``ceil(n/B)`` writes: every input
block is loaded once, every output block is written once.

Both kernel modes are provided (see :mod:`repro.core.kernels`): the
vectorized path slices maximal non-crossing segments with ``bisect`` like
:func:`repro.core.em_utils._merge_two` generalized to k streams; the
reference path is a record-at-a-time ``heapq`` merge.  Ties break by shard
index (the scatter partition is order-preserving, so this keeps the merge
stable), and charges are identical in both modes.
"""

from __future__ import annotations

import bisect
import heapq
from collections.abc import Sequence

from ..models.external_memory import AEMachine, ExtArray, MemoryGuard
from .kernels import SLOW_REFERENCE, register_kernel_entry, resolve_kernel

register_kernel_entry(
    "shardmerge",
    vectorized="repro.core.shard_merge:shard_merge",
    slow_reference="repro.core.shard_merge:shard_merge",  # same entry point, kernel="slow_reference"
    contract="Section 4.1 (k-way shard merge)",
)


def shard_merge(
    machine: AEMachine,
    shards: Sequence[ExtArray],
    guard: MemoryGuard | None = None,
    *,
    kernel: str | None = None,
) -> ExtArray:
    """Merge ``k`` sorted shards into one sorted :class:`ExtArray`.

    Exactly ``sum_i ceil(n_i/B)`` reads and ``ceil(n/B)`` writes; primary
    memory ``(k+1) * B`` (one load block per shard + the store buffer).
    Ties break by shard index, so concatenating the shards of a stable
    partition and merging reproduces a stable sort.

    ``kernel`` selects the block-granular fast path (``"vectorized"``,
    default) or the record-at-a-time reference (``"slow_reference"``); both
    produce identical blocks and identical counters.
    """
    if resolve_kernel(kernel) == SLOW_REFERENCE:
        return _shard_merge_slow(machine, shards, guard)

    params = machine.params
    out = machine.writer(name="shardmerge-out")
    live = [s for s in shards if s.length]
    if not live:
        return out.close()

    if guard is None:
        guard = MemoryGuard()
    budget = (len(live) + 1) * params.B
    guard.acquire(budget)
    try:
        # one cursor per shard: (shard index, block iterator, block, offset)
        streams = []
        for idx, shard in enumerate(live):
            it = machine.scan_blocks(shard)
            blk = next(it, None)
            if blk is not None:
                streams.append([idx, it, blk, 0])
        while streams:
            if len(streams) == 1:
                # sole survivor: drain its remaining blocks wholesale
                _, it, blk, off = streams[0]
                while blk is not None:
                    out.extend(blk[off:] if off else blk)
                    blk = next(it, None)
                    off = 0
                break
            # limiter: minimal (block-last, shard index) over the resident
            # blocks.  Every future record of stream i sorts at key
            # >= (blk_i[-1], i), so any resident record whose (value, shard)
            # key is below that bound is safe to emit this round — the whole
            # safe set at once, not one record at a time.
            lim_val, lim_idx = min((s[2][-1], s[0]) for s in streams)
            chunks = []
            exhausted = []
            for s in streams:  # kept in shard-index order: ties stay stable
                idx, _it, blk, off = s
                if idx <= lim_idx:
                    cut = bisect.bisect_right(blk, lim_val, off)
                else:
                    cut = bisect.bisect_left(blk, lim_val, off)
                if cut > off:
                    chunks.append(
                        blk if off == 0 and cut == len(blk) else blk[off:cut]
                    )
                if cut >= len(blk):
                    exhausted.append(s)
                else:
                    s[3] = cut
            if len(chunks) == 1:
                out.extend(chunks[0])
            else:
                # chunks are sorted runs concatenated in shard order, so a
                # stable sort both merges them and applies the tie rule
                merged = [rec for chunk in chunks for rec in chunk]
                merged.sort()
                out.extend(merged)
            for s in exhausted:  # the limiter always refills: progress
                nxt = next(s[1], None)
                if nxt is None:
                    streams.remove(s)
                else:
                    s[2] = nxt
                    s[3] = 0
    finally:
        guard.release(budget)
    return out.close()


def _shard_merge_slow(
    machine: AEMachine,
    shards: Sequence[ExtArray],
    guard: MemoryGuard | None = None,
) -> ExtArray:
    """Record-at-a-time reference merge (parity baseline)."""
    params = machine.params
    out = machine.writer(name="shardmerge-out")
    live = [s for s in shards if s.length]
    if not live:
        return out.close()

    if guard is None:
        guard = MemoryGuard()
    budget = (len(live) + 1) * params.B
    guard.acquire(budget)
    try:
        records = [machine.reader(s).records() for s in live]
        heap = []
        for idx, it in enumerate(records):
            v = next(it, _DONE)
            if v is not _DONE:
                heap.append((v, idx))
        heapq.heapify(heap)
        while heap:
            v, idx = heapq.heappop(heap)
            out.append(v)
            nxt = next(records[idx], _DONE)
            if nxt is not _DONE:
                heapq.heappush(heap, (nxt, idx))
    finally:
        guard.release(budget)
    return out.close()


_DONE = object()
