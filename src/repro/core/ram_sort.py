"""§3 RAM-model sorting: O(n log n) reads, O(n) writes via balanced BSTs.

The paper's observation: *"Sorting can be done by inserting n records into a
balanced search tree data structure, and then reading them off in order. This
requires O(n log n) reads and O(n) writes, for total cost O(n(ω + log n))."*

This module provides that sort (over a choice of write-efficient tree) and the
classic in-place comparison sorts as write-heavy baselines, all instrumented
on the shared :class:`~repro.models.counters.CostCounter` so experiment E13
can tabulate reads/writes/cost side by side.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..datastructures.avl import AVLTree
from ..datastructures.heaps import InstrumentedBinaryHeap
from ..datastructures.rb_tree import RedBlackTree
from ..datastructures.treap import Treap
from ..models.asymmetric_ram import InstrumentedArray
from ..models.counters import CostCounter

_TREES = {
    "rb": RedBlackTree,
    "avl": AVLTree,
    "avl-naive": lambda counter: AVLTree(counter, naive_heights=True),
    "treap": Treap,
}


def bst_sort(
    data: Sequence, counter: CostCounter | None = None, tree: str = "rb"
) -> tuple[list, CostCounter]:
    """Sort by insertion into a balanced BST (§3).

    Parameters
    ----------
    data:
        Records with unique keys.
    tree:
        ``"rb"`` (red-black, O(1) amortized writes/insert — the paper's
        choice), ``"treap"`` (O(1) expected), ``"avl"`` (change-only height
        writes; measured amortized O(1) — see EXPERIMENTS.md E13), or
        ``"avl-naive"`` (unconditional height writes; Θ(log n) writes per
        insert — the instructive *wrong* implementation).

    Returns
    -------
    (sorted_list, counter):
        Reading each input record charges one read; emitting each output
        record charges one write.
    """
    if tree not in _TREES:
        raise ValueError(f"unknown tree {tree!r}; choose from {sorted(_TREES)}")
    counter = counter if counter is not None else CostCounter()
    t = _TREES[tree](counter)
    # fetching the n input records: one batched charge, not n counter calls
    counter.charge_read(len(data))
    for rec in data:
        t.insert(rec)
    out = list(t.keys_in_order())
    counter.charge_write(len(out))  # emit into the output array
    return out, counter


# ---------------------------------------------------------------------- #
# classic write-heavy baselines (E13)
# ---------------------------------------------------------------------- #
def quicksort(
    data: Sequence, counter: CostCounter | None = None, seed: int = 0
) -> tuple[list, CostCounter]:
    """In-place randomized quicksort on an instrumented array.

    Θ(n log n) expected reads *and* writes (every swap writes two slots).
    """
    import random

    counter = counter if counter is not None else CostCounter()
    arr = InstrumentedArray(data, counter)
    rng = random.Random(seed)

    def part(lo: int, hi: int) -> int:
        p = rng.randint(lo, hi)
        arr.swap(p, hi)
        pivot = arr[hi]
        i = lo - 1
        for j in range(lo, hi):
            if arr[j] < pivot:
                i += 1
                arr.swap(i, j)
        arr.swap(i + 1, hi)
        return i + 1

    # explicit stack to avoid Python recursion limits on large inputs
    stack = [(0, len(arr) - 1)]
    while stack:
        lo, hi = stack.pop()
        if lo >= hi:
            continue
        mid = part(lo, hi)
        stack.append((lo, mid - 1))
        stack.append((mid + 1, hi))
    return arr.peek_list(), counter


def mergesort(
    data: Sequence, counter: CostCounter | None = None
) -> tuple[list, CostCounter]:
    """Bottom-up two-way mergesort: Θ(n log n) reads and writes."""
    counter = counter if counter is not None else CostCounter()
    n = len(data)
    src = InstrumentedArray(data, counter)
    dst = InstrumentedArray.empty(n, counter)
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                a, b = src[i], src[j]
                if a <= b:
                    dst[k] = a
                    i += 1
                else:
                    dst[k] = b
                    j += 1
                k += 1
            while i < mid:
                dst[k] = src[i]
                i += 1
                k += 1
            while j < hi:
                dst[k] = src[j]
                j += 1
                k += 1
        src, dst = dst, src
        width *= 2
    return src.peek_list(), counter


def heapsort(
    data: Sequence, counter: CostCounter | None = None
) -> tuple[list, CostCounter]:
    """Heapsort through an instrumented binary heap: Θ(n log n) writes."""
    counter = counter if counter is not None else CostCounter()
    heap = InstrumentedBinaryHeap(counter)
    counter.charge_read(len(data))  # batched input fetches
    for rec in data:
        heap.push(rec)
    out = []
    for _ in range(len(data)):
        out.append(heap.pop_min())
    counter.charge_write(len(out))  # batched output emits
    return out, counter


#: Registry used by experiment E13 and the examples.
RAM_SORTS = {
    "bst-rb": lambda d, c=None: bst_sort(d, c, tree="rb"),
    "bst-treap": lambda d, c=None: bst_sort(d, c, tree="treap"),
    "bst-avl": lambda d, c=None: bst_sort(d, c, tree="avl"),
    "bst-avl-naive": lambda d, c=None: bst_sort(d, c, tree="avl-naive"),
    "quicksort": quicksort,
    "mergesort": mergesort,
    "heapsort": heapsort,
}
