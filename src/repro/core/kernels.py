"""Kernel-mode registry: vectorized block kernels vs the record-at-a-time
reference implementations.

The paper's algorithms are *defined* in block transfers, but the original
implementations execute them record-at-a-time: ``machine.scan`` yields one
record per iteration, ``BlockWriter.append`` is called once per record, and
the cost counter is touched on every block event.  On a real interpreter that
makes simulated wall-clock a function of Python dispatch overhead, not of the
algorithms.  The *vectorized* kernels move whole blocks — ``scan_blocks`` /
``BlockWriter.extend`` / ``extend_blocks`` — partition and merge with
``bisect`` over sorted blocks, and charge the counter in batches
(:meth:`repro.models.counters.CostCounter.charge_reads` /
:meth:`~repro.models.counters.CostCounter.charge_writes`).

Vectorization is required to be **I/O-invisible**: for every algorithm the
vectorized path must produce byte-identical output blocks and *exactly* the
same ``reads`` / ``writes`` / ``cost`` tallies as the record-at-a-time path,
because the counters are the paper's claim.  The original implementations are
therefore kept, verbatim, behind the ``"slow_reference"`` mode, and the
parity suite (``tests/test_kernel_parity.py``) pins the two modes against
each other on outputs and counters.

Selecting a mode
----------------
Every sort entry point takes ``kernel=None`` which resolves against the
process-wide default (``"vectorized"``):

>>> from repro.core.kernels import kernel_mode, set_default_kernel
>>> with kernel_mode("slow_reference"):
...     report = engine.sort(data)          # record-at-a-time everywhere
>>> set_default_kernel("vectorized")        # the default

The mode is deliberately a plain module global (not thread-local): the AEM
machine is a single-threaded simulation, and benchmark harnesses flip the
whole process between modes to measure the kernel layer itself.  A module
global does not cross a ``fork``/``spawn`` on its own, so the process-pool
executors ship the submitting process's default along explicitly —
``run_sharded`` passes it to every ``execute_shard`` submission and the
persistent-worker protocol carries it per job message — which keeps
``kernel_mode(...)`` A/B measurements honest under ``executor="process"``.
"""

from __future__ import annotations

import contextlib

#: the block-granular fast path (default)
VECTORIZED = "vectorized"
#: the original record-at-a-time implementations, kept for parity testing
SLOW_REFERENCE = "slow_reference"

_MODES = (VECTORIZED, SLOW_REFERENCE)

_default_kernel = VECTORIZED


def get_default_kernel() -> str:
    """The process-wide kernel mode used when a sort passes ``kernel=None``."""
    return _default_kernel


def set_default_kernel(mode: str) -> str:
    """Set the process-wide default kernel mode; returns the previous one."""
    global _default_kernel
    if mode not in _MODES:
        raise ValueError(f"unknown kernel mode {mode!r}; choose from {_MODES}")
    previous = _default_kernel
    _default_kernel = mode
    return previous


def resolve_kernel(kernel: str | None) -> str:
    """Validate an explicit ``kernel=`` argument or fall back to the default."""
    if kernel is None:
        return _default_kernel
    if kernel not in _MODES:
        raise ValueError(f"unknown kernel mode {kernel!r}; choose from {_MODES}")
    return kernel


@contextlib.contextmanager
def kernel_mode(mode: str):
    """Context manager: run a block with the given default kernel mode."""
    previous = set_default_kernel(mode)
    try:
        yield mode
    finally:
        set_default_kernel(previous)


#: declarative registry of every sort path that dispatches on the kernel
#: mode: ``name -> {"vectorized": "module:callable", "slow_reference":
#: "module:callable"}``.  Populated at import time by each kernel-path
#: module via :func:`register_kernel_entry`.
KERNEL_ENTRIES: dict[str, dict[str, str]] = {}

#: cost-contract metadata, parallel to :data:`KERNEL_ENTRIES` so the mode
#: dict keeps its exact ``{vectorized, slow_reference}`` shape:
#: ``name -> theorem label`` matching the kernel's ``declare_contract``
#: declaration in :mod:`repro.analysis.boundcheck`.  Populated by the
#: ``contract=`` argument of :func:`register_kernel_entry`; the
#: ``missing-cost-contract`` lint rule fails any registration without it.
KERNEL_CONTRACTS: dict[str, str] = {}


def register_kernel_entry(name: str, *, vectorized: str,
                          slow_reference: str,
                          contract: str | None = None) -> None:
    """Declare one kernel-dispatched sort path and its mode pair.

    ``vectorized`` and ``slow_reference`` are ``"module:callable"``
    references to the entry point serving each mode (usually the same
    callable, selected via its ``kernel=`` argument).  The declaration is
    the contract the ``kernel-parity`` lint rule enforces statically: every
    registered entry must name a ``slow_reference`` counterpart, and the
    vectorized callable must be pinned by ``tests/test_kernel_parity.py``.

    ``contract`` is the paper-bound label (e.g. ``"Theorem 4.3"``) binding
    this kernel to its cost contract in
    :mod:`repro.analysis.boundcheck` — it must equal the ``theorem=`` of
    the kernel's ``declare_contract`` declaration there, and the
    ``missing-cost-contract`` lint rule plus ``python -m repro certify``
    both fail when it is absent or mismatched.

    Arguments must be string literals so the rules can check them without
    importing anything.
    """
    if not vectorized or not slow_reference:
        raise ValueError(
            f"kernel entry {name!r} must name both a vectorized and a "
            "slow_reference implementation"
        )
    KERNEL_ENTRIES[name] = {
        VECTORIZED: vectorized,
        SLOW_REFERENCE: slow_reference,
    }
    if contract is not None:
        KERNEL_CONTRACTS[name] = contract
    else:
        KERNEL_CONTRACTS.pop(name, None)


def take_smallest(blocks, take: int, lo=None) -> list:
    """The shared bounded-selection kernel: the ``take`` smallest records
    strictly greater than ``lo`` across an iterable of record lists,
    returned ascending.

    Per block, the candidate window is filtered with one comprehension;
    the working set is pruned back to ``take`` (a C-level sort of a mostly
    sorted list) only when it overflows a half-working-set margin, so the
    amortized cost is O(log) per surviving candidate and the scratch stays
    <= 1.5 * ``take`` records.  The result is the exact ``take``-smallest
    multiset — every record the running cutoff drops provably cannot be
    among the final ``take`` — matching the record-at-a-time bounded
    max-heap of the Lemma 4.2 reference implementations.
    """
    working: list = []
    cutoff = None  # the take-th smallest seen so far, once known
    margin = take + (take >> 1) + 1
    for block in blocks:
        if lo is None:
            cand = block if cutoff is None else [r for r in block if r < cutoff]
        elif cutoff is None:
            cand = [r for r in block if r > lo]
        else:
            cand = [r for r in block if lo < r < cutoff]
        if not cand:
            continue
        working.extend(cand)
        if len(working) >= margin:
            working.sort()
            del working[take:]
            cutoff = working[-1]
    working.sort()
    del working[take:]
    return working


def take_smallest_indexed(blocks, take: int, lo=None) -> list:
    """Position-decorated :func:`take_smallest`: the ``take`` smallest
    ``(record, scan position)`` pairs strictly greater than the pair ``lo``,
    returned ascending.

    The paper's §2 remark — *"a position index can always be added to make
    keys unique"* — applied below the selection kernel: decorating each
    record with its global scan offset makes every key unique, so the
    running cutoff advances even through runs of duplicates.  Positions are
    derived from the scan order alone (free metadata, no extra I/O), and
    the decoration orders duplicates by position, i.e. the selection
    becomes a *stable* sort.  Same pruning discipline and the same exact
    ``take``-smallest guarantee as :func:`take_smallest`, now over pairs.
    """
    working: list = []
    cutoff = None  # the take-th smallest pair seen so far, once known
    margin = take + (take >> 1) + 1
    base = 0
    for block in blocks:
        cand = [(r, base + i) for i, r in enumerate(block)]
        base += len(block)
        if lo is not None:
            cand = [p for p in cand if p > lo]
        if cutoff is not None:
            cand = [p for p in cand if p < cutoff]
        if not cand:
            continue
        working.extend(cand)
        if len(working) >= margin:
            working.sort()
            del working[take:]
            cutoff = working[-1]
    working.sort()
    del working[take:]
    return working
