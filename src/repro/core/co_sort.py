"""§5.1 / Figure 1: the low-depth cache-oblivious sort with asymmetric costs.

The recursion on an input of size ``n`` (Figure 1, steps (a)-(d)):

(a) split into ``sqrt(n*omega)`` subarrays of size ``sqrt(n/omega)`` and sort
    each recursively;
(b) sample every ``log n``-th element of each sorted subarray, sort the
    ``n/log n`` samples (cache-oblivious mergesort), pick
    ``sqrt(n/omega) - 1`` evenly spaced splitters;
(c) count per-(subarray, bucket) segments by merging the splitters with each
    sorted subarray, prefix-sum the counts, and *bucket transpose* all
    elements into bucket-contiguous order;
(d) pick ``omega - 1`` pivots inside every bucket and scan the bucket
    ``omega`` times, writing one sub-bucket per round back into the input
    array; recurse on each sub-bucket.

Step (d) is the asymmetric innovation: it spends ``O(omega)`` *reads* per
element to cut the sub-problem size from ``O(sqrt(n omega) log n)`` (a
bucket) to ``O(sqrt(n/omega) log n)`` (a sub-bucket), which shortens the
recursion to ``log_{omega M}(omega n)`` levels while each level still writes
every element O(1) times — Theorem 5.1:

    reads  = O((omega n / B) log_{omega M}(omega n)),
    writes = O((n / B) log_{omega M}(omega n)).

Setting ``omega = 1`` makes step (d) a no-op and recovers the original
symmetric sort of [9] — that is exactly the baseline experiment E8 compares
against.

Determinism note: the paper samples pivots randomly inside each bucket and
invokes Chernoff bounds; we take evenly-spaced deterministic samples from
*sorted* subsequences, which achieves the same balance guarantee without a
failure probability (documented deviation, DESIGN.md §4).
"""

from __future__ import annotations

import math

from ..cacheoblivious.kernels import co_prefix_sum, co_scan_copy
from ..cacheoblivious.mergesort import co_mergesort
from ..cacheoblivious.transpose import bucket_transpose, co_transpose
from ..models.counters import PhaseRecorder
from ..models.ideal_cache import CacheSim

#: base-case size floor (the analysis' n <= M base; obliviously constant)
_BASE = 32


def co_sort(
    cache: CacheSim,
    arr,
    omega: int | None = None,
    recorder: PhaseRecorder | None = None,
) -> None:
    """Sort ``arr`` (SimArray/view) in place under the asymmetric ideal cache.

    ``omega`` defaults to the cache's own write-cost parameter; pass
    ``omega=1`` for the classic [9] algorithm.  ``recorder`` attributes the
    *top level*'s cost to Figure-1 stages (experiment E14).
    """
    if omega is None:
        omega = cache.params.omega
    if omega < 1:
        raise ValueError(f"omega must be >= 1, got {omega}")
    _sort(cache, arr, omega, recorder)


def _phase(recorder: PhaseRecorder | None, name: str):
    if recorder is None:
        import contextlib

        return contextlib.nullcontext()
    return recorder.phase(name)


def _sort(cache: CacheSim, arr, omega: int, recorder: PhaseRecorder | None) -> None:
    n = len(arr)
    if n <= max(_BASE, 4 * omega):
        # block-granular base case: one bulk read scan, sort in cache (free),
        # one bulk write scan — identical accesses to the per-element loops
        vals = arr.read_range(0, n)
        vals.sort()
        arr.write_range(0, vals)
        return

    log_n = max(1, math.ceil(math.log2(n)))
    rows = max(2, round(math.sqrt(n * omega)))  # sqrt(n*omega) subarrays
    row_size = math.ceil(n / rows)
    rows = math.ceil(n / row_size)  # ragged last row
    n_buckets = max(2, round(math.sqrt(n / omega)))

    def row_bounds(i: int) -> tuple[int, int]:
        start = i * row_size
        return start, min(start + row_size, n)

    # ---- (a) recursively sort the subarrays --------------------------- #
    with _phase(recorder, "(a) sort subarrays"):
        for i in range(rows):
            start, end = row_bounds(i)
            _sort(cache, arr.view(start, end - start), omega, None)

    # ---- (b) sample every log n-th element; sort; pick splitters ------- #
    with _phase(recorder, "(b) sample + splitters"):
        sample_vals_idx: list[int] = []
        for i in range(rows):
            start, end = row_bounds(i)
            sample_vals_idx.extend(range(start + log_n - 1, end, log_n))
        if not sample_vals_idx:
            sample_vals_idx = [0]
        samples = cache.array(len(sample_vals_idx), name="samples")
        for j, idx in enumerate(sample_vals_idx):
            samples[j] = arr[idx]
        co_mergesort(cache, samples)
        m = len(samples)
        step = max(1, m // n_buckets)
        splitters = []
        for t in range(1, n_buckets):
            pos = t * step
            if pos < m:
                splitters.append(samples[pos])
        n_buckets = len(splitters) + 1

    # Degenerate-sample guard: with very few samples the splitter set can
    # collapse (e.g. a single splitter equal to the minimum key), leaving a
    # bucket as large as the input and stalling the recursion.  The paper's
    # w.h.p. analysis assumes n large; below that regime we finish with the
    # cache-oblivious mergesort (same O() bounds at these sizes).
    if len(splitters) == 0:
        co_mergesort(cache, arr)
        return

    # ---- (c) counts, prefix sums, bucket transpose --------------------- #
    with _phase(recorder, "(c) counts + transpose"):
        seg_start = cache.array(rows * n_buckets, name="seg_start")
        seg_len = cache.array(rows * n_buckets, name="seg_len")
        for i in range(rows):
            start, end = row_bounds(i)
            # merge splitters with the sorted row: one synchronised scan
            pos = start
            base = i * n_buckets
            for b in range(n_buckets):
                seg_begin = pos
                if b < len(splitters):
                    sp = splitters[b]
                    while pos < end and arr[pos] < sp:
                        pos += 1
                else:
                    pos = end
                seg_start[base + b] = seg_begin
                seg_len[base + b] = pos - seg_begin

        # bucket-major destination offsets: transpose counts, prefix-sum,
        # transpose back (all linear / cache-oblivious)
        tlen = cache.array(rows * n_buckets, name="tlen")
        co_transpose(seg_len, tlen, rows, n_buckets)
        total = co_prefix_sum(tlen)  # exclusive; tlen now holds dst offsets
        assert total == n, "segment lengths must cover the input"
        bucket_off = [tlen[b * rows] for b in range(n_buckets)] + [n]
        dst_start = cache.array(rows * n_buckets, name="dst_start")
        co_transpose(tlen, dst_start, n_buckets, rows)

        scratch = cache.array(n, name="buckets")
        bucket_transpose(arr, scratch, seg_start, seg_len, dst_start, rows, n_buckets)

        # second half of the degenerate guard: a bucket as large as the
        # input means the splitters gave no progress
        largest_bucket = max(
            bucket_off[b + 1] - bucket_off[b] for b in range(n_buckets)
        )
        if largest_bucket >= n:
            co_mergesort(cache, arr)
            return

    # ---- (d) omega-way sub-partition of every bucket; recurse ----------- #
    with _phase(recorder, "(d) sub-partition"):
        sub_ranges: list[tuple[int, int]] = []
        for b in range(n_buckets):
            lo, hi = bucket_off[b], bucket_off[b + 1]
            size = hi - lo
            if size == 0:
                continue
            bucket = scratch.view(lo, size)
            if omega == 1 or size <= max(_BASE, 4 * omega):
                # classic algorithm: copy back and recurse on the bucket
                co_scan_copy(bucket, arr.view(lo, size))
                sub_ranges.append((lo, hi))
                continue
            pivots = _choose_pivots(cache, bucket, omega, n)
            # omega rounds over the bucket, writing one sub-bucket per round
            out_pos = lo
            prev = None
            for t in range(len(pivots) + 1):
                hi_key = pivots[t] if t < len(pivots) else None
                sub_lo = out_pos
                for j in range(size):
                    v = bucket[j]
                    if prev is not None and v < prev:
                        continue
                    if prev is not None and v == prev:
                        continue
                    if (prev is None or v > prev) and (hi_key is None or v <= hi_key):
                        arr[out_pos] = v
                        out_pos += 1
                if out_pos > sub_lo:
                    sub_ranges.append((sub_lo, out_pos))
                prev = hi_key
            assert out_pos == hi, "sub-partition lost records"

    with _phase(recorder, "(d') sort sub-buckets"):
        for lo, hi in sub_ranges:
            _sort(cache, arr.view(lo, hi - lo), omega, None)


def _choose_pivots(cache: CacheSim, bucket, omega: int, n: int) -> list:
    """Evenly-spaced pivots producing ``omega`` sub-buckets.

    The paper samples ``max(omega, sqrt(omega n)/log n)`` keys; we sample the
    same count at even offsets, sort them, and take ``omega - 1`` evenly
    spaced pivots.
    """
    size = len(bucket)
    log_n = max(1, math.ceil(math.log2(max(n, 2))))
    want = min(size, max(omega, math.ceil(math.sqrt(omega * n) / log_n)))
    stride = max(1, size // want)
    sample = cache.array(len(range(0, size, stride)), name="pivot-sample")
    for j, idx in enumerate(range(0, size, stride)):
        sample[j] = bucket[idx]
    co_mergesort(cache, sample)
    m = len(sample)
    step = max(1, m // omega)
    pivots = []
    for t in range(1, omega):
        pos = t * step
        if pos < m:
            v = sample[pos]
            if not pivots or v > pivots[-1]:
                pivots.append(v)
    return pivots
