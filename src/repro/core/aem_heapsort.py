"""§4.3.3: the write-efficient AEM priority queue and buffer-tree heapsort.

The priority queue layers three stores, smallest keys first:

* **alpha working set** — at most ``M/4`` records, resident in primary memory
  (operations free);
* **beta working set** — at most ``2kM`` records in external blocks, appended
  unsorted, with *implicit deletions* tracked by an in-memory list of pairs
  ``(i, x)`` meaning "every record at index <= i with key <= x is invalid";
  rebuilt (compacted) after ``k`` extractions or on overflow;
* **buffer tree** — everything else (:class:`~repro.core.buffer_tree.BufferTree`).

Routing invariant: every alpha record <= every valid beta record <= every
buffer-tree record.  Inserts route by comparing against the in-memory maxima
``alpha_max`` / ``beta_max``; DELETE-MIN pops alpha, refilling alpha from beta
(``M/4`` smallest valid, Lemma 4.8) and beta from the tree's leftmost leaf.

Theorem 4.10: ``n`` INSERT / DELETE-MIN operations cost amortized
``O((k/B)(1 + log_{kM/B} n))`` reads and ``O((1/B)(1 + log_{kM/B} n))``
writes each.  Heapsort via the queue therefore matches the §4.1/§4.2 sorting
bounds (the paper's closing remark of §4.3).
"""

from __future__ import annotations

import bisect
import heapq
import math

from ..models.external_memory import AEMachine, BlockWriter, ExtArray, MemoryGuard
from .buffer_tree import BufferTree
from .kernels import SLOW_REFERENCE, register_kernel_entry, resolve_kernel, take_smallest

register_kernel_entry(
    "heapsort",
    vectorized="repro.core.aem_heapsort:aem_heapsort",
    slow_reference="repro.core.aem_heapsort:aem_heapsort",  # same entry point, kernel="slow_reference"
    contract="Theorem 4.10",
)


class AEMPriorityQueue:
    """Write-efficient external-memory priority queue (INSERT / DELETE-MIN).

    ``kernel`` selects the block-granular fast path (``"vectorized"``,
    default) or the record-at-a-time reference (``"slow_reference"``) for the
    alpha/beta maintenance operations and the underlying buffer tree; both
    produce identical contents and identical counters.
    """

    def __init__(self, machine: AEMachine, k: int = 1, guard: MemoryGuard | None = None,
                 *, kernel: str | None = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.machine = machine
        self.k = k
        self.kernel = resolve_kernel(kernel)
        self.guard = guard if guard is not None else MemoryGuard()
        params = machine.params

        self.alpha_capacity = max(1, params.M // 4)
        self.beta_capacity = 2 * k * params.M

        self.tree = BufferTree(machine, k, kernel=self.kernel)
        self._alpha: list = []  # sorted ascending, in memory (free)
        self._beta: ExtArray = machine.allocate("beta")
        self._beta_writer: BlockWriter | None = None  # last block in memory
        self._beta_len = 0  # total records ever appended (incl. invalid)
        self._beta_valid = 0
        self._beta_max = None  # max *valid* key in beta (None = empty)
        self._pairs: list[tuple[int, object]] = []  # implicit-deletion list
        self._extractions_since_rebuild = 0
        self.size = 0
        # statistics for the E5 experiment
        self.beta_rebuilds = 0
        self.beta_overflows = 0
        self.alpha_refills = 0
        self.tree_refills = 0

        # primary-memory footprint: alpha + deletion pairs + beta/root
        # partial blocks + transfer buffers
        self.guard.acquire(self.alpha_capacity + 4 * params.B)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.size

    @property
    def _alpha_max(self):
        return self._alpha[-1] if self._alpha else None

    # ------------------------------------------------------------------ #
    # INSERT
    # ------------------------------------------------------------------ #
    def insert(self, key) -> None:
        """Route ``key`` by the alpha/beta maxima (§4.3.3)."""
        self.size += 1
        if self._alpha and key < self._alpha[-1]:
            bisect.insort(self._alpha, key)  # in-memory, free
            if len(self._alpha) > self.alpha_capacity:
                spill = self._alpha.pop()  # largest; still <= every beta key
                self._beta_append(spill)
            return
        if self._beta_max is not None and key < self._beta_max:
            self._beta_append(key)
            return
        self.tree.insert(key)

    def insert_block(self, block) -> None:
        """Route a whole block of records (§4.3.3 routing, batched where
        that is provably identical to looped :meth:`insert`).

        When both working sets are empty (heapsort's insert half: all
        records precede the first DELETE-MIN) every record routes to the
        buffer tree and nothing can change that mid-block — no alpha means
        no spills, no beta means no overflows — so the whole block lands
        via one :meth:`BufferTree.insert_many` batch.  With a populated
        alpha/beta the routing thresholds are live state (a spill into an
        empty beta *raises* ``beta_max``; a beta overflow pushes records
        into the tree mid-stream), so records route one at a time, exactly
        like :meth:`insert` — deferring tree-bound records there would
        reorder them against overflow pushes and change buffer layouts.
        """
        if not self._alpha and self._beta_max is None:
            self.size += len(block)
            self.tree.insert_many(block)
            return
        for key in block:
            self.insert(key)

    def _beta_append(self, key) -> None:
        if self._beta_writer is None or self._beta_writer.closed:
            self._beta_writer = BlockWriter(self.machine, self._beta)
        self._beta_writer.append(key)
        self._beta_len += 1
        self._beta_valid += 1
        if self._beta_max is None or key > self._beta_max:
            self._beta_max = key
        if self._beta_valid > self.beta_capacity:
            self._beta_overflow()

    # ------------------------------------------------------------------ #
    # DELETE-MIN
    # ------------------------------------------------------------------ #
    def delete_min(self):
        """Pop the global minimum; refill alpha/beta lazily as needed."""
        if self.size == 0:
            raise IndexError("delete_min from an empty priority queue")
        if not self._alpha:
            self._refill_alpha()
        self.size -= 1
        return self._alpha.pop(0)

    def pop_batch(self) -> list:
        """Drain and return the whole alpha working set (refilled first if
        empty) in one bulk operation — ascending order.

        Equivalent to calling :meth:`delete_min` ``len(batch)`` times with no
        interleaved inserts (refills trigger at exactly the same points, so
        charges are identical); the vectorized heapsort driver drains through
        this instead of popping one record at a time.
        """
        if self.size == 0:
            raise IndexError("pop_batch from an empty priority queue")
        if not self._alpha:
            self._refill_alpha()
        batch = self._alpha
        self._alpha = []
        self.size -= len(batch)
        return batch

    def _refill_alpha(self) -> None:
        if self._beta_valid == 0:
            self._refill_beta_from_tree()
        self.alpha_refills += 1
        take = min(self.alpha_capacity, self._beta_valid)
        assert take > 0, "refill with no records anywhere despite size > 0"
        # Lemma 4.8: one read-only pass over beta keeping the `take` smallest
        # valid records in memory (a bounded max-heap), then one appended
        # deletion pair.
        self._seal_beta_writer()
        if self.kernel == SLOW_REFERENCE:
            smallest: list = []  # max-heap via negation
            for rec in self._iter_valid_beta():
                if len(smallest) < take:
                    heapq.heappush(smallest, _Neg(rec))
                elif rec < smallest[0].value:
                    heapq.heapreplace(smallest, _Neg(rec))
            batch = sorted(item.value for item in smallest)
        else:
            # block-granular: the shared bounded-selection kernel over the
            # validity-filtered beta blocks (exact take-smallest multiset,
            # same as the reference's heap; scratch <= 1.5 * take < M/2)
            batch = take_smallest(self._valid_beta_blocks(), take)
        self._alpha = batch
        x = batch[-1]
        # implicit deletion: everything with index <= current length and key
        # <= x is now invalid; keep the pair list's (i asc, x desc) invariant
        while self._pairs and self._pairs[-1][1] <= x:
            self._pairs.pop()
        self._pairs.append((self._beta_len - 1, x))
        self._beta_valid -= len(batch)
        if self._beta_valid == 0:
            self._beta_max = None
        self._extractions_since_rebuild += 1
        if self._extractions_since_rebuild >= self.k:
            self._rebuild_beta()

    def _iter_valid_beta(self):
        """Stream beta's valid records: scan blocks, filtering by the pair
        list (record at index j is invalid iff some pair (i, x) has j <= i
        and key <= x; with the invariant it suffices to find the first pair
        with i >= j and compare against its x)."""
        pairs = self._pairs
        idx = 0
        pi = 0
        for bi in range(self._beta.num_blocks):
            if self._beta.block_len(bi) == 0:  # empty placeholder: no transfer
                continue
            block = self.machine.read_block(self._beta, bi, copy=False)
            for rec in block:
                while pi < len(pairs) and pairs[pi][0] < idx:
                    pi += 1
                invalid = pi < len(pairs) and rec <= pairs[pi][1]
                if not invalid:
                    yield rec
                idx += 1

    def _valid_beta_blocks(self):
        """Block-granular counterpart of :meth:`_iter_valid_beta`: yield one
        list of valid records per scanned beta block (same filter, same
        charges — one read per non-empty block)."""
        pairs = self._pairs
        idx = 0
        pi = 0
        n_pairs = len(pairs)
        for block in self.machine.scan_blocks(self._beta):
            blk_len = len(block)
            if pi >= n_pairs:
                # every deletion pair lies behind the scan: whole block valid
                yield list(block)
                idx += blk_len
                continue
            # the pair list is sorted by index, so the block splits into at
            # most n_pairs+1 segments, each filtered by one comprehension
            valid: list = []
            off = 0
            while off < blk_len:
                while pi < n_pairs and pairs[pi][0] < idx + off:
                    pi += 1
                if pi >= n_pairs:
                    valid.extend(block[off:])
                    break
                bound_i, x = pairs[pi]
                seg_end = min(blk_len, bound_i - idx + 1)
                valid.extend([r for r in block[off:seg_end] if r > x])
                off = seg_end
            idx += blk_len
            yield valid

    def _seal_beta_writer(self) -> None:
        if self._beta_writer is not None and not self._beta_writer.closed:
            self._beta_writer.close()
            self._beta_writer = None

    # ------------------------------------------------------------------ #
    # beta maintenance
    # ------------------------------------------------------------------ #
    def _rebuild_beta(self) -> None:
        """Compact beta: drop invalid records, clear the pair list (Lem 4.9)."""
        self.beta_rebuilds += 1
        self._seal_beta_writer()
        writer = self.machine.writer(name="beta")
        count = 0
        new_max = None
        if self.kernel == SLOW_REFERENCE:
            for rec in self._iter_valid_beta():
                writer.append(rec)
                count += 1
                if new_max is None or rec > new_max:
                    new_max = rec
        else:
            for valid in self._valid_beta_blocks():
                if not valid:
                    continue
                writer.extend(valid)
                count += len(valid)
                m = max(valid)
                if new_max is None or m > new_max:
                    new_max = m
        self._beta = writer.close()
        self._beta_len = count
        self._beta_valid = count
        self._beta_max = new_max
        self._pairs = []
        self._extractions_since_rebuild = 0

    def _beta_overflow(self) -> None:
        """Beta exceeded ``2kM`` valid records: rebuild, sort, keep the
        smallest ``kM`` in beta and push the largest ``kM`` into the tree."""
        self.beta_overflows += 1
        self._rebuild_beta()
        from .selection_sort import selection_sort

        sorted_beta = selection_sort(
            self.machine, self._beta, guard=self.guard, kernel=self.kernel
        )
        keep = self._beta_valid - self._beta_valid // 2
        writer = self.machine.writer(name="beta")
        new_max = None
        if self.kernel == SLOW_REFERENCE:
            idx = 0
            for rec in self.machine.scan(sorted_beta):
                if idx < keep:
                    writer.append(rec)
                    new_max = rec
                else:
                    self.tree.insert(rec)
                idx += 1
        else:
            # sorted scan: the first `keep` records stay in beta (slice per
            # block), the suffix streams into the buffer tree
            idx = 0
            for block in self.machine.scan_blocks(sorted_beta):
                end = idx + len(block)
                if end <= keep:
                    writer.extend(block)
                    new_max = block[-1]
                else:
                    head = block[: keep - idx] if idx < keep else []
                    if head:
                        writer.extend(head)
                        new_max = head[-1]
                    self.tree.insert_many(block[len(head):])
                idx = end
        self._beta = writer.close()
        self._beta_len = keep
        self._beta_valid = keep
        self._beta_max = new_max
        self._pairs = []

    # ------------------------------------------------------------------ #
    # tree refill
    # ------------------------------------------------------------------ #
    def _refill_beta_from_tree(self) -> None:
        """Beta is empty: pull the buffer tree's leftmost leaf (>= kM/4
        records once the tree is warm) into beta."""
        self.tree_refills += 1
        leaf = self.tree.pop_leftmost_leaf()
        if leaf is None:
            raise AssertionError("tree refill requested but buffer tree is empty")
        # rewrite the (sorted) leaf as the new beta contents
        writer = self.machine.writer(name="beta")
        count = 0
        new_max = None
        if self.kernel == SLOW_REFERENCE:
            for rec in self.machine.scan(leaf):
                writer.append(rec)
                count += 1
                new_max = rec
        else:
            for block in self.machine.scan_blocks(leaf):
                writer.extend(block)
                count += len(block)
                new_max = block[-1]
        self._beta = writer.close()
        self._beta_len = count
        self._beta_valid = count
        self._beta_max = new_max
        self._pairs = []
        self._extractions_since_rebuild = 0


class _Neg:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Neg") -> bool:
        return self.value > other.value


# ---------------------------------------------------------------------- #
# heapsort driver
# ---------------------------------------------------------------------- #
def aem_heapsort(
    machine: AEMachine,
    arr: ExtArray,
    k: int = 1,
    guard: MemoryGuard | None = None,
    *,
    kernel: str | None = None,
) -> ExtArray:
    """Sort by ``n`` INSERTs followed by ``n`` DELETE-MINs (§4.3 closing).

    Total cost ``O((kn/B)(1 + log_{kM/B} n))`` reads and
    ``O((n/B)(1 + log_{kM/B} n))`` writes, matching Theorem 4.10.

    The vectorized kernel feeds inserts from whole scanned blocks and drains
    whole alpha batches (:meth:`AEMPriorityQueue.pop_batch`) instead of one
    DELETE-MIN per record; refills — and therefore charges — happen at
    exactly the same points.
    """
    kernel = resolve_kernel(kernel)
    pq = AEMPriorityQueue(machine, k, guard=guard, kernel=kernel)
    if kernel == SLOW_REFERENCE:
        for rec in machine.scan(arr):
            pq.insert(rec)
        out = machine.writer(name="heapsort-out")
        for _ in range(arr.length):
            out.append(pq.delete_min())
        return out.close()
    for block in machine.scan_blocks(arr):
        pq.insert_block(block)
    out = machine.writer(name="heapsort-out")
    written = 0
    n = arr.length
    while written < n:
        batch = pq.pop_batch()
        out.extend(batch)
        written += len(batch)
    return out.close()


# ---------------------------------------------------------------------- #
# Theorem 4.10 closed forms
# ---------------------------------------------------------------------- #
def predicted_amortized_reads(n: int, M: int, B: int, k: int) -> float:
    """Per-operation read bound (unit leading constant)."""
    levels = 1 + max(0.0, math.log(max(n, 2)) / math.log(k * M / B))
    return (k / B) * levels


def predicted_amortized_writes(n: int, M: int, B: int, k: int) -> float:
    """Per-operation write bound (unit leading constant)."""
    levels = 1 + max(0.0, math.log(max(n, 2)) / math.log(k * M / B))
    return (1 / B) * levels
