"""§4.3.3: the write-efficient AEM priority queue and buffer-tree heapsort.

The priority queue layers three stores, smallest keys first:

* **alpha working set** — at most ``M/4`` records, resident in primary memory
  (operations free);
* **beta working set** — at most ``2kM`` records in external blocks, appended
  unsorted, with *implicit deletions* tracked by an in-memory list of pairs
  ``(i, x)`` meaning "every record at index <= i with key <= x is invalid";
  rebuilt (compacted) after ``k`` extractions or on overflow;
* **buffer tree** — everything else (:class:`~repro.core.buffer_tree.BufferTree`).

Routing invariant: every alpha record <= every valid beta record <= every
buffer-tree record.  Inserts route by comparing against the in-memory maxima
``alpha_max`` / ``beta_max``; DELETE-MIN pops alpha, refilling alpha from beta
(``M/4`` smallest valid, Lemma 4.8) and beta from the tree's leftmost leaf.

Theorem 4.10: ``n`` INSERT / DELETE-MIN operations cost amortized
``O((k/B)(1 + log_{kM/B} n))`` reads and ``O((1/B)(1 + log_{kM/B} n))``
writes each.  Heapsort via the queue therefore matches the §4.1/§4.2 sorting
bounds (the paper's closing remark of §4.3).
"""

from __future__ import annotations

import bisect
import heapq
import math

from ..models.external_memory import AEMachine, BlockWriter, ExtArray, MemoryGuard
from .buffer_tree import BufferTree


class AEMPriorityQueue:
    """Write-efficient external-memory priority queue (INSERT / DELETE-MIN)."""

    def __init__(self, machine: AEMachine, k: int = 1, guard: MemoryGuard | None = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.machine = machine
        self.k = k
        self.guard = guard if guard is not None else MemoryGuard()
        params = machine.params

        self.alpha_capacity = max(1, params.M // 4)
        self.beta_capacity = 2 * k * params.M

        self.tree = BufferTree(machine, k)
        self._alpha: list = []  # sorted ascending, in memory (free)
        self._beta: ExtArray = machine.allocate("beta")
        self._beta_writer: BlockWriter | None = None  # last block in memory
        self._beta_len = 0  # total records ever appended (incl. invalid)
        self._beta_valid = 0
        self._beta_max = None  # max *valid* key in beta (None = empty)
        self._pairs: list[tuple[int, object]] = []  # implicit-deletion list
        self._extractions_since_rebuild = 0
        self.size = 0
        # statistics for the E5 experiment
        self.beta_rebuilds = 0
        self.beta_overflows = 0
        self.alpha_refills = 0
        self.tree_refills = 0

        # primary-memory footprint: alpha + deletion pairs + beta/root
        # partial blocks + transfer buffers
        self.guard.acquire(self.alpha_capacity + 4 * params.B)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.size

    @property
    def _alpha_max(self):
        return self._alpha[-1] if self._alpha else None

    # ------------------------------------------------------------------ #
    # INSERT
    # ------------------------------------------------------------------ #
    def insert(self, key) -> None:
        """Route ``key`` by the alpha/beta maxima (§4.3.3)."""
        self.size += 1
        if self._alpha and key < self._alpha[-1]:
            bisect.insort(self._alpha, key)  # in-memory, free
            if len(self._alpha) > self.alpha_capacity:
                spill = self._alpha.pop()  # largest; still <= every beta key
                self._beta_append(spill)
            return
        if self._beta_max is not None and key < self._beta_max:
            self._beta_append(key)
            return
        self.tree.insert(key)

    def _beta_append(self, key) -> None:
        if self._beta_writer is None or self._beta_writer.closed:
            self._beta_writer = BlockWriter(self.machine, self._beta)
        self._beta_writer.append(key)
        self._beta_len += 1
        self._beta_valid += 1
        if self._beta_max is None or key > self._beta_max:
            self._beta_max = key
        if self._beta_valid > self.beta_capacity:
            self._beta_overflow()

    # ------------------------------------------------------------------ #
    # DELETE-MIN
    # ------------------------------------------------------------------ #
    def delete_min(self):
        """Pop the global minimum; refill alpha/beta lazily as needed."""
        if self.size == 0:
            raise IndexError("delete_min from an empty priority queue")
        if not self._alpha:
            self._refill_alpha()
        self.size -= 1
        return self._alpha.pop(0)

    def _refill_alpha(self) -> None:
        if self._beta_valid == 0:
            self._refill_beta_from_tree()
        self.alpha_refills += 1
        take = min(self.alpha_capacity, self._beta_valid)
        assert take > 0, "refill with no records anywhere despite size > 0"
        # Lemma 4.8: one read-only pass over beta keeping the `take` smallest
        # valid records in memory (a bounded max-heap), then one appended
        # deletion pair.
        self._seal_beta_writer()
        smallest: list = []  # max-heap via negation
        for rec in self._iter_valid_beta():
            if len(smallest) < take:
                heapq.heappush(smallest, _Neg(rec))
            elif rec < smallest[0].value:
                heapq.heapreplace(smallest, _Neg(rec))
        batch = sorted(item.value for item in smallest)
        self._alpha = batch
        x = batch[-1]
        # implicit deletion: everything with index <= current length and key
        # <= x is now invalid; keep the pair list's (i asc, x desc) invariant
        while self._pairs and self._pairs[-1][1] <= x:
            self._pairs.pop()
        self._pairs.append((self._beta_len - 1, x))
        self._beta_valid -= len(batch)
        if self._beta_valid == 0:
            self._beta_max = None
        self._extractions_since_rebuild += 1
        if self._extractions_since_rebuild >= self.k:
            self._rebuild_beta()

    def _iter_valid_beta(self):
        """Stream beta's valid records: scan blocks, filtering by the pair
        list (record at index j is invalid iff some pair (i, x) has j <= i
        and key <= x; with the invariant it suffices to find the first pair
        with i >= j and compare against its x)."""
        pairs = self._pairs
        idx = 0
        pi = 0
        for bi in range(self._beta.num_blocks):
            block = self.machine.read_block(self._beta, bi, copy=False)
            for rec in block:
                while pi < len(pairs) and pairs[pi][0] < idx:
                    pi += 1
                invalid = pi < len(pairs) and rec <= pairs[pi][1]
                if not invalid:
                    yield rec
                idx += 1

    def _seal_beta_writer(self) -> None:
        if self._beta_writer is not None and not self._beta_writer.closed:
            self._beta_writer.close()
            self._beta_writer = None

    # ------------------------------------------------------------------ #
    # beta maintenance
    # ------------------------------------------------------------------ #
    def _rebuild_beta(self) -> None:
        """Compact beta: drop invalid records, clear the pair list (Lem 4.9)."""
        self.beta_rebuilds += 1
        self._seal_beta_writer()
        writer = self.machine.writer(name="beta")
        count = 0
        new_max = None
        for rec in self._iter_valid_beta():
            writer.append(rec)
            count += 1
            if new_max is None or rec > new_max:
                new_max = rec
        self._beta = writer.close()
        self._beta_len = count
        self._beta_valid = count
        self._beta_max = new_max
        self._pairs = []
        self._extractions_since_rebuild = 0

    def _beta_overflow(self) -> None:
        """Beta exceeded ``2kM`` valid records: rebuild, sort, keep the
        smallest ``kM`` in beta and push the largest ``kM`` into the tree."""
        self.beta_overflows += 1
        self._rebuild_beta()
        from .selection_sort import selection_sort

        sorted_beta = selection_sort(self.machine, self._beta, guard=self.guard)
        keep = self._beta_valid - self._beta_valid // 2
        writer = self.machine.writer(name="beta")
        new_max = None
        idx = 0
        for rec in self.machine.scan(sorted_beta):
            if idx < keep:
                writer.append(rec)
                new_max = rec
            else:
                self.tree.insert(rec)
            idx += 1
        self._beta = writer.close()
        self._beta_len = keep
        self._beta_valid = keep
        self._beta_max = new_max
        self._pairs = []

    # ------------------------------------------------------------------ #
    # tree refill
    # ------------------------------------------------------------------ #
    def _refill_beta_from_tree(self) -> None:
        """Beta is empty: pull the buffer tree's leftmost leaf (>= kM/4
        records once the tree is warm) into beta."""
        self.tree_refills += 1
        leaf = self.tree.pop_leftmost_leaf()
        if leaf is None:
            raise AssertionError("tree refill requested but buffer tree is empty")
        # rewrite the (sorted) leaf as the new beta contents
        writer = self.machine.writer(name="beta")
        count = 0
        new_max = None
        for rec in self.machine.scan(leaf):
            writer.append(rec)
            count += 1
            new_max = rec
        self._beta = writer.close()
        self._beta_len = count
        self._beta_valid = count
        self._beta_max = new_max
        self._pairs = []
        self._extractions_since_rebuild = 0


class _Neg:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_Neg") -> bool:
        return self.value > other.value


# ---------------------------------------------------------------------- #
# heapsort driver
# ---------------------------------------------------------------------- #
def aem_heapsort(
    machine: AEMachine,
    arr: ExtArray,
    k: int = 1,
    guard: MemoryGuard | None = None,
) -> ExtArray:
    """Sort by ``n`` INSERTs followed by ``n`` DELETE-MINs (§4.3 closing).

    Total cost ``O((kn/B)(1 + log_{kM/B} n))`` reads and
    ``O((n/B)(1 + log_{kM/B} n))`` writes, matching Theorem 4.10.
    """
    pq = AEMPriorityQueue(machine, k, guard=guard)
    for rec in machine.scan(arr):
        pq.insert(rec)
    out = machine.writer(name="heapsort-out")
    for _ in range(arr.length):
        out.append(pq.delete_min())
    return out.close()


# ---------------------------------------------------------------------- #
# Theorem 4.10 closed forms
# ---------------------------------------------------------------------- #
def predicted_amortized_reads(n: int, M: int, B: int, k: int) -> float:
    """Per-operation read bound (unit leading constant)."""
    levels = 1 + max(0.0, math.log(max(n, 2)) / math.log(k * M / B))
    return (k / B) * levels


def predicted_amortized_writes(n: int, M: int, B: int, k: int) -> float:
    """Per-operation write bound (unit leading constant)."""
    levels = 1 + max(0.0, math.log(max(n, 2)) / math.log(k * M / B))
    return (1 / B) * levels
