"""Small external-memory utilities shared by the §4 algorithms.

The main export is :func:`em_two_way_mergesort`, the plain 2-way external
mergesort the paper invokes for *sample* sorting inside the AEM sample sort
("apply a RAM mergesort, which requires at most
O(((l log n0)/B) log(l log n0 / M)) reads and writes").  It is deliberately
the textbook algorithm: run formation by in-memory sorting of M-record
chunks, then repeated pairwise streaming merges.
"""

from __future__ import annotations

from ..models.external_memory import AEMachine, ExtArray


def em_two_way_mergesort(machine: AEMachine, arr: ExtArray) -> ExtArray:
    """Two-way external mergesort: O((n/B)(1 + log2(n/M))) reads and writes."""
    params = machine.params
    n = arr.length
    if n == 0:
        return machine.writer(name="em2sort-out").close()

    # --- run formation: sort M-record chunks in memory ------------------ #
    runs: list[ExtArray] = []
    buf: list = []
    writer = None
    for rec in machine.scan(arr):
        buf.append(rec)
        if len(buf) == params.M:
            writer = machine.writer(name="run")
            writer.extend(sorted(buf))
            runs.append(writer.close())
            buf = []
    if buf:
        writer = machine.writer(name="run")
        writer.extend(sorted(buf))
        runs.append(writer.close())

    # --- pairwise merge passes ------------------------------------------ #
    while len(runs) > 1:
        next_runs: list[ExtArray] = []
        for i in range(0, len(runs), 2):
            if i + 1 == len(runs):
                next_runs.append(runs[i])
                continue
            next_runs.append(_merge_two(machine, runs[i], runs[i + 1]))
        runs = next_runs
    return runs[0]


def _merge_two(machine: AEMachine, a: ExtArray, b: ExtArray) -> ExtArray:
    """Streaming merge of two sorted runs (one block of each in memory)."""
    out = machine.writer(name="merge2-out")
    ra, rb = machine.reader(a), machine.reader(b)
    ita = ra.records()
    itb = rb.records()
    va = next(ita, _DONE)
    vb = next(itb, _DONE)
    while va is not _DONE and vb is not _DONE:
        if va <= vb:
            out.append(va)
            va = next(ita, _DONE)
        else:
            out.append(vb)
            vb = next(itb, _DONE)
    while va is not _DONE:
        out.append(va)
        va = next(ita, _DONE)
    while vb is not _DONE:
        out.append(vb)
        vb = next(itb, _DONE)
    return out.close()


_DONE = object()
