"""Small external-memory utilities shared by the §4 algorithms.

The main export is :func:`em_two_way_mergesort`, the plain 2-way external
mergesort the paper invokes for *sample* sorting inside the AEM sample sort
("apply a RAM mergesort, which requires at most
O(((l log n0)/B) log(l log n0 / M)) reads and writes").  It is deliberately
the textbook algorithm: run formation by in-memory sorting of M-record
chunks, then repeated pairwise streaming merges.

Both kernel modes are provided (see :mod:`repro.core.kernels`): the
vectorized path forms runs from whole scanned blocks and merges two runs by
slicing maximal non-crossing segments with ``bisect`` instead of comparing
record pairs one at a time.  Charges and output blocks are identical.
"""

from __future__ import annotations

import bisect

from ..models.external_memory import AEMachine, ExtArray
from .kernels import SLOW_REFERENCE, register_kernel_entry, resolve_kernel

register_kernel_entry(
    "em2way",
    vectorized="repro.core.em_utils:em_two_way_mergesort",
    slow_reference="repro.core.em_utils:em_two_way_mergesort",  # same entry point, kernel="slow_reference"
    contract="Section 4.2 (2-way EM mergesort)",
)


def em_two_way_mergesort(
    machine: AEMachine, arr: ExtArray, *, kernel: str | None = None
) -> ExtArray:
    """Two-way external mergesort: O((n/B)(1 + log2(n/M))) reads and writes."""
    slow = resolve_kernel(kernel) == SLOW_REFERENCE
    params = machine.params
    n = arr.length
    if n == 0:
        return machine.writer(name="em2sort-out").close()

    # --- run formation: sort M-record chunks in memory ------------------ #
    runs: list[ExtArray] = []
    buf: list = []
    if slow:
        for rec in machine.scan(arr):
            buf.append(rec)
            if len(buf) == params.M:
                writer = machine.writer(name="run")
                writer.extend(sorted(buf))
                runs.append(writer.close())
                buf = []
    else:
        for block in machine.scan_blocks(arr):
            buf.extend(block)
            while len(buf) >= params.M:
                writer = machine.writer(name="run")
                writer.extend(sorted(buf[: params.M]))
                runs.append(writer.close())
                del buf[: params.M]
    if buf:
        writer = machine.writer(name="run")
        writer.extend(sorted(buf))
        runs.append(writer.close())

    # --- pairwise merge passes ------------------------------------------ #
    merge = _merge_two_slow if slow else _merge_two
    while len(runs) > 1:
        next_runs: list[ExtArray] = []
        for i in range(0, len(runs), 2):
            if i + 1 == len(runs):
                next_runs.append(runs[i])
                continue
            next_runs.append(merge(machine, runs[i], runs[i + 1]))
        runs = next_runs
    return runs[0]


def _merge_two(machine: AEMachine, a: ExtArray, b: ExtArray) -> ExtArray:
    """Block-wise streaming merge of two sorted runs.

    Instead of advancing one record per comparison, each step locates (via
    ``bisect``) the maximal segment of the current block that precedes the
    other stream's head and emits it with one ``extend`` — ties go to ``a``,
    matching the reference's ``va <= vb`` rule, so outputs are identical.
    """
    out = machine.writer(name="merge2-out")
    ita = machine.scan_blocks(a)
    itb = machine.scan_blocks(b)
    blka = next(ita, None)
    blkb = next(itb, None)
    ia = ib = 0
    while blka is not None and blkb is not None:
        # all of a's remaining records <= b's head: emit them in one slice
        head_b = blkb[ib]
        j = bisect.bisect_right(blka, head_b, ia)
        if j > ia:
            out.extend(blka if ia == 0 and j == len(blka) else blka[ia:j])
            ia = j
            if ia >= len(blka):
                blka = next(ita, None)
                ia = 0
            continue
        # blka[ia] > head_b: emit b's records strictly below a's head
        head_a = blka[ia]
        j = bisect.bisect_left(blkb, head_a, ib)
        out.extend(blkb if ib == 0 and j == len(blkb) else blkb[ib:j])
        ib = j
        if ib >= len(blkb):
            blkb = next(itb, None)
            ib = 0
    while blka is not None:
        out.extend(blka[ia:] if ia else blka)
        blka = next(ita, None)
        ia = 0
    while blkb is not None:
        out.extend(blkb[ib:] if ib else blkb)
        blkb = next(itb, None)
        ib = 0
    return out.close()


def merge_sorted_block_streams(ita, itb):
    """Merge two streams of sorted, key-ordered *chunks* into merged chunks.

    ``ita`` / ``itb`` yield non-empty lists whose concatenation is sorted;
    the output yields lists whose concatenation is the sorted merge (ties go
    to ``ita``, the ``va <= vb`` rule).  Pure in-memory plumbing — no
    machine, no charges — shared by the vectorized buffer-tree drains.
    """
    blka = next(ita, None)
    blkb = next(itb, None)
    ia = ib = 0
    while blka is not None and blkb is not None:
        head_b = blkb[ib]
        j = bisect.bisect_right(blka, head_b, ia)
        if j > ia:
            yield blka if ia == 0 and j == len(blka) else blka[ia:j]
            ia = j
            if ia >= len(blka):
                blka = next(ita, None)
                ia = 0
            continue
        head_a = blka[ia]
        j = bisect.bisect_left(blkb, head_a, ib)
        yield blkb if ib == 0 and j == len(blkb) else blkb[ib:j]
        ib = j
        if ib >= len(blkb):
            blkb = next(itb, None)
            ib = 0
    while blka is not None:
        yield blka[ia:] if ia else blka
        blka = next(ita, None)
        ia = 0
    while blkb is not None:
        yield blkb[ib:] if ib else blkb
        blkb = next(itb, None)
        ib = 0


def _merge_two_slow(machine: AEMachine, a: ExtArray, b: ExtArray) -> ExtArray:
    """Record-at-a-time reference merge (parity baseline)."""
    out = machine.writer(name="merge2-out")
    ra, rb = machine.reader(a), machine.reader(b)
    ita = ra.records()
    itb = rb.records()
    va = next(ita, _DONE)
    vb = next(itb, _DONE)
    while va is not _DONE and vb is not _DONE:
        if va <= vb:
            out.append(va)
            va = next(ita, _DONE)
        else:
            out.append(vb)
            vb = next(itb, _DONE)
    while va is not _DONE:
        out.append(va)
        va = next(ita, _DONE)
    while vb is not _DONE:
        out.append(vb)
        vb = next(itb, _DONE)
    return out.close()


_DONE = object()
