"""§4.3: the buffer tree with fewer writes (branching factor l = kM/B).

An (a,b)-tree with ``a = l/4``, ``b = l`` where ``l = kM/B``.  Every node
carries an external, unsorted *buffer* of partially-inserted elements; leaves
store between ``lB/4`` and ``lB`` sorted records (§4.3.1 note 2: leaves are
the flattened bottom level, "fringe nodes").

Differences from Arge's original (per §4.3.2):

1. node fanout is ``k`` times larger,
2. the buffer-emptying process sorts its first ``lB = kM`` elements with the
   *external* Lemma 4.2 selection sort (they no longer fit in memory),
3. (the priority queue of §4.3.3, in :mod:`repro.core.aem_heapsort`, keeps
   ``O(kM)`` elements outside the tree).

Cost model notes
----------------
* Elements in buffers live in external :class:`ExtArray` blocks; appends are
  buffered so each full block costs one block write (Lemma 4.6's
  distribution accounting).
* Router keys / child pointers are node metadata of size ``O(l)``; loading or
  rewriting them during an emptying or split charges ``ceil(l/B)`` block
  transfers (a lower-order term the paper's proofs absorb into Lemma 4.6's
  constants — we charge it explicitly to stay conservative).
* In-memory bookkeeping (counts, the emptying work-lists) is free, matching
  the model's free primary-memory computation.

Deviation (documented in DESIGN.md): deleting the leftmost leaf — the only
deletion the priority queue needs — does not rebalance underflowing
ancestors; childless ancestors are removed and a single-child root is
collapsed.  For the left-to-right deletion sweep of heapsort this never
degrades the height bound.

General deletions (§4.3.1: "Supporting general deletions is not much
harder"): buffers carry *operations* ``(key, seq, is_delete)`` with a global
sequence number; sorting by ``(key, seq)`` keeps same-key operations in
arrival order through every emptying, and operations are applied when they
reach a leaf (an insert-then-delete pair annihilates there).  Deleting an
absent key raises ``KeyError`` at application time.  Leaves store plain keys,
so the read path (leftmost-leaf pops, draining) is unchanged.
"""

from __future__ import annotations

import bisect
import math

from ..models.external_memory import AEMachine, BlockWriter, ExtArray
from .kernels import SLOW_REFERENCE, register_kernel_entry, resolve_kernel, take_smallest

register_kernel_entry(
    "buffer-tree",
    vectorized="repro.core.buffer_tree:BufferTree",
    slow_reference="repro.core.buffer_tree:BufferTree",  # same entry point, kernel="slow_reference"
    contract="Theorem 4.10",
)


class _Node:
    """A buffer-tree node.  All fields are metadata except the buffers."""

    __slots__ = (
        "keys",
        "children",
        "buffer",
        "buffer_count",
        "elements",
        "element_count",
        "is_leaf",
    )

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: list = []  # router keys (len == len(children) - 1)
        self.children: list[_Node] = []
        self.buffer: ExtArray | None = None  # unsorted pending inserts
        self.buffer_count = 0
        self.elements: ExtArray | None = None  # sorted leaf payload
        self.element_count = 0


class BufferTree:
    """Write-efficient buffer tree supporting inserts and leftmost-leaf pops.

    Parameters
    ----------
    machine:
        The AEM machine providing block transfers and cost accounting.
    k:
        The extra branching factor (``l = k * M / B``); ``k = 1`` recovers
        Arge's original parameters.
    kernel:
        ``"vectorized"`` (default) drains and distributes buffers in
        block-granular slices; ``"slow_reference"`` is the record-at-a-time
        original.  Identical structure, contents and counters either way.
    """

    def __init__(self, machine: AEMachine, k: int = 1, *, kernel: str | None = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.machine = machine
        self.k = k
        self.kernel = resolve_kernel(kernel)
        params = machine.params
        self.l = params.fanout(k)
        if self.l < 4:
            raise ValueError(
                f"fanout l = kM/B = {self.l} < 4; buffer tree needs a >= 1 "
                "(increase M/B or k)"
            )
        self.leaf_capacity = self.l * params.B  # lB records
        self.buffer_limit = self.l * params.B  # "full" threshold, lB records
        self.root = _Node(is_leaf=True)
        self.size = 0  # net size: inserts minus (assumed-valid) deletes
        self._seq = 0  # global operation sequence number
        #: sticky: any delete op ever buffered (gates the bulk leaf merge)
        self._has_deletes = False
        # the root's partial buffer block stays in memory (Theorem 4.7)
        self._root_writer: BlockWriter | None = None
        # statistics
        self.emptyings = 0
        self.leaf_splits = 0
        self.internal_splits = 0
        self.annihilations = 0  # insert+delete pairs resolved at a leaf

    # ------------------------------------------------------------------ #
    # metadata transfer charges
    # ------------------------------------------------------------------ #
    def _charge_node_read(self, node: _Node) -> None:
        width = max(1, len(node.children), len(node.keys))
        self.machine.counter.charge_block_read(math.ceil(width / self.machine.params.B))

    def _charge_node_write(self, node: _Node) -> None:
        width = max(1, len(node.children), len(node.keys))
        self.machine.counter.charge_block_write(math.ceil(width / self.machine.params.B))

    # ------------------------------------------------------------------ #
    # buffer plumbing
    # ------------------------------------------------------------------ #
    def _root_buffer_writer(self) -> BlockWriter:
        if self._root_writer is None or self._root_writer.closed:
            if self.root.buffer is None:
                self.root.buffer = self.machine.allocate("rootbuf")
            self._root_writer = BlockWriter(self.machine, self.root.buffer)
        return self._root_writer

    def _seal_root_buffer(self) -> None:
        """Flush the in-memory partial block before emptying the root."""
        if self._root_writer is not None and not self._root_writer.closed:
            self._root_writer.close()
            self._root_writer = None

    # ------------------------------------------------------------------ #
    # insertion
    # ------------------------------------------------------------------ #
    def insert(self, key) -> None:
        """Append an insert operation to the root buffer; cascade when full."""
        self._append_op(key, is_delete=False)
        self.size += 1

    def delete(self, key) -> None:
        """Append a delete operation (§4.3.1 general deletions).

        The key must currently be in the tree (possibly still as a buffered
        insert); violating that raises ``KeyError`` when the operation
        reaches its leaf.
        """
        self._has_deletes = True
        self._append_op(key, is_delete=True)
        self.size -= 1

    def _append_op(self, key, *, is_delete: bool) -> None:
        self._root_buffer_writer().append((key, self._seq, is_delete))
        self._seq += 1
        self.root.buffer_count += 1
        if self.root.buffer_count >= self.buffer_limit:
            self._cascade_from(self.root)

    def insert_many(self, keys) -> None:
        """Insert many keys, batching the root-buffer appends.

        The vectorized path stages up to ``buffer_limit - buffer_count``
        operations at a time and appends them with one ``extend`` (identical
        block layout and charges), cascading at exactly the record where the
        record-at-a-time path would.
        """
        if self.kernel == SLOW_REFERENCE:
            for key in keys:
                self.insert(key)
            return
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        pos = 0
        total = len(keys)
        while pos < total:
            room = self.buffer_limit - self.root.buffer_count
            take = max(1, min(room, total - pos))
            seq = self._seq
            ops = [(key, seq + j, False) for j, key in enumerate(keys[pos : pos + take])]
            self._root_buffer_writer().extend(ops)
            self._seq += take
            self.root.buffer_count += take
            self.size += take
            pos += take
            if self.root.buffer_count >= self.buffer_limit:
                self._cascade_from(self.root)

    # ------------------------------------------------------------------ #
    # the two-phase emptying cascade (§4.3.1)
    # ------------------------------------------------------------------ #
    def _cascade_from(self, start: _Node) -> None:
        """Empty ``start`` (if internal) and all children that become full;
        then resolve full leaves (phase 2)."""
        if start is self.root:
            self._seal_root_buffer()
        full_internal: list[_Node] = []
        full_leaves: list[_Node] = []
        (full_leaves if start.is_leaf else full_internal).append(start)
        while full_internal:
            node = full_internal.pop()
            self._empty_internal(node, full_internal, full_leaves)
        for leaf in full_leaves:
            self._empty_leaf(leaf)

    def _drain_buffer_sorted(self, node: _Node):
        """Yield the node's buffered elements in sorted order (streaming).

        Sorts the first ``lB`` elements with the external selection sort
        (Lemma 4.2 — they exceed M); everything beyond the ``lB``-th element
        was appended *in sorted order* by the most recent parent emptying, so
        the tail is a ready sorted run.  The two runs are merged on the fly.
        Afterwards the buffer is discarded.
        """
        if self.kernel != SLOW_REFERENCE:
            return _flatten(self._drain_buffer_sorted_blocks(node))
        buf = node.buffer
        node.buffer = None
        count = node.buffer_count
        node.buffer_count = 0
        if buf is None or count == 0:
            return iter(())
        prefix_len = min(count, self.buffer_limit)
        sorted_prefix = _external_prefix_sort(self.machine, buf, prefix_len)
        tail = _skip_stream(self.machine, buf, prefix_len)
        return _merge_streams(self.machine.scan(sorted_prefix), tail)

    def _drain_buffer_sorted_blocks(self, node: _Node):
        """Block-granular :meth:`_drain_buffer_sorted`: yield sorted *chunks*
        whose concatenation is the sorted buffer — same charges (the prefix
        sort reads/writes the same blocks; the tail blocks are read once)."""
        from .em_utils import merge_sorted_block_streams

        buf = node.buffer
        node.buffer = None
        count = node.buffer_count
        node.buffer_count = 0
        if buf is None or count == 0:
            return iter(())
        prefix_len = min(count, self.buffer_limit)
        sorted_prefix = _external_prefix_sort(
            self.machine, buf, prefix_len, kernel=self.kernel
        )
        tail = _skip_stream_blocks(self.machine, buf, prefix_len)
        return merge_sorted_block_streams(
            self.machine.scan_blocks(sorted_prefix), tail
        )

    def _empty_internal(
        self, node: _Node, full_internal: list[_Node], full_leaves: list[_Node]
    ) -> None:
        """Distribute a (possibly over-full) internal node's buffer to its
        children in sorted order (Lemma 4.6)."""
        self.emptyings += 1
        self._charge_node_read(node)

        writers: list[BlockWriter | None] = [None] * len(node.children)

        def writer_for(idx: int) -> BlockWriter:
            w = writers[idx]
            if w is None:
                child = node.children[idx]
                if child.buffer is None:
                    child.buffer = self.machine.allocate("buf")
                w = writers[idx] = BlockWriter(self.machine, child.buffer)
            return w

        if self.kernel == SLOW_REFERENCE:
            stream = self._drain_buffer_sorted(node)
            idx = 0  # current child under the sorted sweep
            for entry in stream:
                key = entry[0]
                while idx < len(node.keys) and key >= node.keys[idx]:
                    idx += 1
                writer_for(idx).append(entry)
                node.children[idx].buffer_count += 1
        else:
            # block-granular sweep: each sorted chunk is split into per-child
            # segments at the router keys (bisect over the chunk's keys) and
            # each segment lands with one cost-equivalent extend
            routers = node.keys
            n_routers = len(routers)
            idx = 0
            for chunk in self._drain_buffer_sorted_blocks(node):
                keys = [entry[0] for entry in chunk]
                pos = 0
                n_chunk = len(chunk)
                while pos < n_chunk:
                    key = keys[pos]
                    while idx < n_routers and key >= routers[idx]:
                        idx += 1
                    if idx == n_routers:
                        end = n_chunk
                    else:
                        end = bisect.bisect_left(keys, routers[idx], pos)
                    segment = chunk if pos == 0 and end == n_chunk else chunk[pos:end]
                    writer_for(idx).extend(segment)
                    node.children[idx].buffer_count += end - pos
                    pos = end
        for w in writers:
            if w is not None:
                w.close()

        for child in node.children:
            if child.buffer_count >= self.buffer_limit:
                if child.is_leaf:
                    if child not in full_leaves:
                        full_leaves.append(child)
                else:
                    full_internal.append(child)

    def _empty_leaf(self, leaf: _Node) -> None:
        """Apply a leaf's buffered operations to its sorted payload; split if
        the payload exceeds ``lB`` (phase 2 of §4.3.1)."""
        self.emptyings += 1
        merged_writer = self.machine.writer(name="leafmerge")
        if self.kernel == SLOW_REFERENCE:
            stream = self._drain_buffer_sorted(leaf)
            existing = (
                self.machine.scan(leaf.elements)
                if leaf.elements is not None
                else iter(())
            )
            total = 0
            for key in self._apply_ops(stream, existing):
                merged_writer.append(key)
                total += 1
        elif not self._has_deletes:
            # insert-only tree (the heapsort / pure-ingest case): the op
            # stream is just sorted keys, so the leaf merge is a bulk
            # two-stream chunk merge with the same KeyError-on-duplicate
            # detection at the segment boundaries
            total = self._merge_leaf_bulk(leaf, merged_writer)
        else:
            # general deletions: the op/payload merge is inherently
            # sequential (per-key delete / annihilation semantics), but the
            # surviving keys land in one batch
            stream = self._drain_buffer_sorted(leaf)
            existing = (
                self.machine.scan(leaf.elements)
                if leaf.elements is not None
                else iter(())
            )
            surviving = list(self._apply_ops(stream, existing))
            merged_writer.extend(surviving)
            total = len(surviving)
        merged = merged_writer.close()
        leaf.elements = None
        leaf.element_count = 0

        if total <= self.leaf_capacity:
            leaf.elements = merged
            leaf.element_count = total
            return
        self._split_leaf(leaf, merged, total)

    def _merge_leaf_bulk(self, leaf: _Node, out_writer: BlockWriter) -> int:
        """Insert-only leaf emptying: bulk merge of op keys with the payload.

        Materialises the payload run and the (already key-sorted) op-key run
        and lets one C-level sort merge them (timsort detects the two runs
        and gallops).  Preserves :meth:`_apply_ops` semantics for the
        insert-only case — ``KeyError`` on a duplicate insert (against the
        payload or between two buffered inserts), reported at the smallest
        offending key, which in key order is the first the reference would
        hit.  Returns the merged record count.
        """
        merged: list = []
        if leaf.elements is not None:
            for block in self.machine.scan_blocks(leaf.elements):
                merged.extend(block)
        n_payload = len(merged)
        for chunk in self._drain_buffer_sorted_blocks(leaf):
            merged.extend([entry[0] for entry in chunk])
        had_ops = len(merged) > n_payload
        if had_ops and n_payload:
            merged.sort()  # two sorted runs: C-level galloping merge
        if had_ops and len(merged) > 1:
            # duplicate-insert detection: the payload is strictly increasing
            # by invariant, so any duplicate involves an op key
            try:
                distinct = len(set(merged)) == len(merged)
            except TypeError:  # unhashable keys: pairwise scan instead
                distinct = all(x < y for x, y in zip(merged, merged[1:]))
            if not distinct:
                prev = merged[0]
                for key in merged[1:]:
                    if key == prev:
                        raise KeyError(f"duplicate insert of key {key!r}")
                    prev = key
        out_writer.extend(merged)
        return len(merged)

    def _apply_ops(self, ops, payload):
        """Merge an op stream (sorted by ``(key, seq)``) with a sorted key
        payload, yielding the surviving keys in order.

        Operations on one key apply in sequence order; an insert followed by
        a delete annihilates; deleting an absent key raises ``KeyError``.
        """
        sentinel = object()
        op = next(ops, sentinel)
        pay = next(payload, sentinel)
        while op is not sentinel or pay is not sentinel:
            if op is sentinel or (pay is not sentinel and pay < op[0]):
                yield pay
                pay = next(payload, sentinel)
                continue
            key = op[0]
            present = pay is not sentinel and pay == key
            if present:
                pay = next(payload, sentinel)
            had_insert = False
            while op is not sentinel and op[0] == key:
                _key, _seq, is_delete = op
                if is_delete:
                    if not present:
                        raise KeyError(f"delete of absent key {key!r}")
                    present = False
                    if had_insert:
                        self.annihilations += 1
                else:
                    if present:
                        raise KeyError(f"duplicate insert of key {key!r}")
                    present = True
                    had_insert = True
                op = next(ops, sentinel)
            if present:
                yield key

    # ------------------------------------------------------------------ #
    # rebalancing: leaf splits cascading upward
    # ------------------------------------------------------------------ #
    def _split_leaf(self, leaf: _Node, merged: ExtArray, total: int) -> None:
        """Replace an over-full leaf by ``ceil(total / (lB/2))`` new leaves."""
        self.leaf_splits += 1
        target = max(1, self.leaf_capacity // 2)
        pieces = math.ceil(total / target)
        sizes = _even_split(total, pieces)

        new_leaves: list[_Node] = []
        routers: list = []
        if self.kernel == SLOW_REFERENCE:
            stream = self.machine.scan(merged)
            for size in sizes:
                piece = _Node(is_leaf=True)
                w = self.machine.writer(name="leaf")
                first = None
                for _ in range(size):
                    key = next(stream)
                    if first is None:
                        first = key
                    w.append(key)
                piece.elements = w.close()
                piece.element_count = size
                if new_leaves:
                    routers.append(first)
                new_leaves.append(piece)
        else:
            chunks = self.machine.scan_blocks(merged)
            cur: list = []
            pos = 0
            for size in sizes:
                piece = _Node(is_leaf=True)
                w = self.machine.writer(name="leaf")
                first = None
                need = size
                while need:
                    if pos >= len(cur):
                        cur = next(chunks)
                        pos = 0
                    take = min(need, len(cur) - pos)
                    seg = cur if pos == 0 and take == len(cur) else cur[pos : pos + take]
                    if first is None:
                        first = seg[0]
                    w.extend(seg)
                    pos += take
                    need -= take
                piece.elements = w.close()
                piece.element_count = size
                if new_leaves:
                    routers.append(first)
                new_leaves.append(piece)

        parent = self._find_parent(self.root, leaf)
        if parent is None:
            # the leaf was the root: grow a new internal root
            new_root = _Node(is_leaf=False)
            new_root.children = new_leaves
            new_root.keys = routers
            self.root = new_root
            self._charge_node_write(new_root)
            self._split_if_needed(new_root)
            return
        pos = parent.children.index(leaf)
        parent.children[pos : pos + 1] = new_leaves
        parent.keys[pos:pos] = routers
        self._charge_node_write(parent)
        self._split_if_needed(parent)

    def _split_if_needed(self, node: _Node) -> None:
        """(a,b)-tree split cascade, generalised to many-at-once child
        insertions: a node with ``c > l`` children is replaced by
        ``ceil(c / (l/2))`` nodes of ~``l/2`` children each (all within the
        ``[l/4, l]`` arity window), cascading upward.  Every node on the
        cascade has an empty buffer (it was emptied earlier in this cascade
        — see §4.3.1)."""
        while len(node.children) > self.l:
            assert node.buffer_count == 0, "split of a node with a non-empty buffer"
            c = len(node.children)
            target = max(2, self.l // 2)
            n_pieces = math.ceil(c / target)
            sizes = _even_split(c, n_pieces)

            pieces: list[_Node] = []
            separators: list = []
            start = 0
            for size in sizes:
                piece = _Node(is_leaf=False)
                piece.children = node.children[start : start + size]
                piece.keys = node.keys[start : start + size - 1]
                if start > 0:
                    separators.append(node.keys[start - 1])
                pieces.append(piece)
                self.internal_splits += 1
                self._charge_node_write(piece)
                start += size

            parent = self._find_parent(self.root, node)
            if parent is None:
                new_root = _Node(is_leaf=False)
                new_root.children = pieces
                new_root.keys = separators
                self.root = new_root
                self._charge_node_write(new_root)
                node = new_root
                continue
            pos = parent.children.index(node)
            parent.children[pos : pos + 1] = pieces
            parent.keys[pos:pos] = separators
            self._charge_node_write(parent)
            node = parent

    def _find_parent(self, current: _Node, target: _Node) -> _Node | None:
        """Locate ``target``'s parent by router descent (metadata only).

        Router descent needs a representative key; we use the subtree-minimum
        tracked implicitly by walking first children, so instead do a simple
        DFS bounded by the tree height times fanout — acceptable in-memory
        bookkeeping (node metadata already charged by callers).
        """
        if current is target or current.is_leaf:
            return None
        for child in current.children:
            if child is target:
                return current
        for child in current.children:
            found = self._find_parent(child, target)
            if found is not None:
                return found
        return None

    # ------------------------------------------------------------------ #
    # leftmost-leaf extraction (the §4.3.3 refill operation)
    # ------------------------------------------------------------------ #
    def pop_leftmost_leaf(self) -> ExtArray | None:
        """Empty buffers along the root-to-leftmost-leaf path, then detach
        and return the leftmost leaf's sorted elements (or ``None`` if the
        tree holds no elements)."""
        if self.size == 0:
            return None
        self._seal_root_buffer()
        # Empty every buffer on the leftmost path, top-down.  Each emptying
        # distributes to *all* children (same asymptotics as emptying only
        # toward the leftmost child); full descendants are resolved by the
        # standard cascade.  A cascade can restructure the tree (splits), so
        # the descent restarts from the root until it completes untouched.
        while True:
            node = self.root
            restructured = False
            while not node.is_leaf:
                if node.buffer_count > 0:
                    self._cascade_from(node)
                    restructured = True
                    break
                node = node.children[0]
            if not restructured and node.buffer_count > 0:
                self._empty_leaf(node)
                restructured = True
            if not restructured:
                break

        elements = node.elements
        count = node.element_count
        node.elements = None
        node.element_count = 0
        self.size -= count
        self._detach_leftmost_leaf()
        if count == 0:
            return self.pop_leftmost_leaf() if self.size > 0 else None
        return elements

    def _detach_leftmost_leaf(self) -> None:
        """Remove the leftmost leaf; drop childless ancestors; collapse a
        single-child root (the documented no-rebalance deviation)."""
        if self.root.is_leaf:
            self.root = _Node(is_leaf=True)
            return
        # path of internal nodes down the leftmost spine
        path: list[_Node] = []
        node = self.root
        while not node.is_leaf:
            path.append(node)
            node = node.children[0]
        # remove the leaf from its parent, then prune childless ancestors
        # (each path[i] is the first child of path[i-1], so pop(0) walks up)
        for parent in reversed(path):
            parent.children.pop(0)
            if parent.keys:
                parent.keys.pop(0)
            self._charge_node_write(parent)
            if parent.children:
                break
        # Collapse single-child roots — but never one holding buffered
        # records: the discarded node's buffer would be lost (the node may
        # lie off the just-emptied leftmost path).  A buffered single-child
        # root is legal; its buffer is emptied by a later cascade, after
        # which the collapse proceeds.
        while (
            not self.root.is_leaf
            and len(self.root.children) == 1
            and self.root.buffer_count == 0
        ):
            self.root = self.root.children[0]
        if not self.root.is_leaf and not self.root.children:
            self.root = _Node(is_leaf=True)

    # ------------------------------------------------------------------ #
    # verification helpers (uncharged; tests only)
    # ------------------------------------------------------------------ #
    def check_invariants(self) -> None:
        """Router order, leaf payload order/ranges, child-count sanity."""

        def walk(node: _Node, lo, hi) -> None:
            if node.keys != sorted(node.keys):
                raise AssertionError("router keys out of order")
            if node.is_leaf:
                payload = node.elements.peek_list() if node.elements else []
                if payload != sorted(payload):
                    raise AssertionError("leaf payload unsorted")
                for key in payload:
                    if (lo is not None and key < lo) or (hi is not None and key >= hi):
                        raise AssertionError("leaf payload outside router range")
                return
            if len(node.children) != len(node.keys) + 1:
                raise AssertionError("children/keys arity mismatch")
            if len(node.children) > self.l:
                raise AssertionError("node fanout exceeds b = l")
            bounds = [lo] + list(node.keys) + [hi]
            for i, child in enumerate(node.children):
                walk(child, bounds[i], bounds[i + 1])

        walk(self.root, None, None)

    # ------------------------------------------------------------------ #
    # public streaming hooks (the engine's ``StreamSession`` drains here)
    # ------------------------------------------------------------------ #
    @property
    def next_seq(self) -> int:
        """The sequence number the next operation will receive — a unique,
        monotonically increasing id a caller may embed in composite keys
        (the §2 position-index uniquification) before the insert consumes
        it."""
        return self._seq

    def drain_stream(self):
        """Yield every element in sorted order, charging each leaf's block
        reads as it is scanned (leftmost-leaf pops under the hood).

        The streaming counterpart of :meth:`drain_sorted`: records are
        surfaced one at a time so a consumer can re-block them without ever
        materialising the whole output in primary memory.
        """
        while self.size > 0:
            leaf = self.pop_leftmost_leaf()
            if leaf is None:
                break
            if self.kernel == SLOW_REFERENCE:
                yield from self.machine.scan(leaf)
            else:
                for block in self.machine.scan_blocks(leaf):
                    yield from block

    def io_stats(self) -> dict:
        """Structural counters for reports: emptyings, splits, annihilations."""
        return {
            "emptyings": self.emptyings,
            "leaf_splits": self.leaf_splits,
            "internal_splits": self.internal_splits,
            "annihilations": self.annihilations,
        }

    def drain_sorted(self) -> list:
        """Pop every leaf in order; return all elements (testing utility).

        Uses :meth:`peek_list` (uncharged) — tests inspect contents without
        billing the machine; production consumers use :meth:`drain_stream`.
        """
        out: list = []
        while self.size > 0:
            leaf = self.pop_leftmost_leaf()
            if leaf is None:
                break
            out.extend(leaf.peek_list())
        return out


# ---------------------------------------------------------------------- #
# streaming helpers
# ---------------------------------------------------------------------- #
def _external_prefix_sort(
    machine: AEMachine, buf: ExtArray, prefix_len: int, kernel: str = SLOW_REFERENCE
) -> ExtArray:
    """Lemma 4.2 selection sort over the first ``prefix_len`` records of
    ``buf`` (repeated scans of the prefix region; output written once)."""
    import heapq

    params = machine.params
    out = machine.writer(name="bufsort")
    emitted = 0
    last_max = None
    M = params.M
    while emitted < prefix_len:
        if kernel == SLOW_REFERENCE:
            working: list = []
            seen = 0
            for bi in range(buf.num_blocks):
                if seen >= prefix_len:
                    break
                if buf.block_len(bi) == 0:  # empty placeholder: no transfer
                    continue
                block = machine.read_block(buf, bi, copy=False)
                for rec in block:
                    if seen >= prefix_len:
                        break
                    seen += 1
                    if last_max is not None and rec <= last_max:
                        continue
                    if len(working) < M:
                        heapq.heappush(working, _NegKey(rec))
                    elif rec < working[0].value:
                        heapq.heapreplace(working, _NegKey(rec))
            batch = sorted(item.value for item in working)
        else:
            # block-granular selection phase: the shared bounded kernel
            # over the (truncated) prefix blocks — exact M-smallest multiset
            batch = take_smallest(
                _prefix_blocks(machine, buf, prefix_len), M, lo=last_max
            )
        if not batch:
            raise AssertionError("prefix sort stalled")
        if kernel == SLOW_REFERENCE:
            for rec in batch:
                out.append(rec)
        else:
            out.extend(batch)
        emitted += len(batch)
        last_max = batch[-1]
    return out.close()


class _NegKey:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "_NegKey") -> bool:
        return self.value > other.value


def _prefix_blocks(machine: AEMachine, arr: ExtArray, prefix_len: int):
    """Yield the blocks covering ``arr``'s first ``prefix_len`` records
    (straddling block truncated), charging one read per block — the same
    blocks the reference's per-record prefix scan reads."""
    seen = 0
    for bi in range(arr.num_blocks):
        if seen >= prefix_len:
            break
        if arr.block_len(bi) == 0:  # empty placeholder: nothing to transfer
            continue
        block = machine.read_block(arr, bi, copy=False)
        if seen + len(block) > prefix_len:
            block = block[: prefix_len - seen]
        seen += len(block)
        yield block


def _skip_stream(machine: AEMachine, arr: ExtArray, skip: int):
    """Stream ``arr`` skipping its first ``skip`` records.

    Blocks wholly inside the skipped prefix are *not* read (their record
    counts are metadata); the straddling block is read once.
    """
    offset = 0
    for bi in range(arr.num_blocks):
        blk_len = arr.block_len(bi)
        if offset + blk_len <= skip:
            offset += blk_len
            continue
        block = machine.read_block(arr, bi, copy=False)
        start = max(0, skip - offset)
        for rec in block[start:]:
            yield rec
        offset += blk_len


def _skip_stream_blocks(machine: AEMachine, arr: ExtArray, skip: int):
    """Block-granular :func:`_skip_stream`: yield the non-empty suffix of
    each block past the skipped prefix (same blocks read, same charges)."""
    offset = 0
    for bi in range(arr.num_blocks):
        blk_len = arr.block_len(bi)
        if offset + blk_len <= skip:
            offset += blk_len
            continue
        block = machine.read_block(arr, bi, copy=False)
        start = max(0, skip - offset)
        if start < blk_len:
            yield block[start:] if start else block
        offset += blk_len


def _flatten(chunks):
    """Flatten an iterator of lists into a record stream."""
    for chunk in chunks:
        yield from chunk


def _merge_streams(a, b):
    """Merge two sorted record streams."""
    sentinel = object()
    va = next(a, sentinel)
    vb = next(b, sentinel)
    while va is not sentinel and vb is not sentinel:
        if va <= vb:
            yield va
            va = next(a, sentinel)
        else:
            yield vb
            vb = next(b, sentinel)
    while va is not sentinel:
        yield va
        va = next(a, sentinel)
    while vb is not sentinel:
        yield vb
        vb = next(b, sentinel)


def _even_split(total: int, pieces: int) -> list[int]:
    """Split ``total`` into ``pieces`` sizes differing by at most one."""
    base = total // pieces
    extra = total % pieces
    return [base + (1 if i < extra else 0) for i in range(pieces)]
