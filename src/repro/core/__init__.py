"""The paper's algorithms (§3, §4, §5.1).

RAM/PRAM (§3):
    :func:`~repro.core.ram_sort.bst_sort`,
    :func:`~repro.core.pram_sample_sort.pram_sample_sort`.

AEM (§4):
    :func:`~repro.core.selection_sort.selection_sort` (Lemma 4.2),
    :func:`~repro.core.aem_mergesort.aem_mergesort` (Algorithm 2),
    :func:`~repro.core.aem_samplesort.aem_samplesort` (§4.2),
    :class:`~repro.core.buffer_tree.BufferTree` /
    :func:`~repro.core.aem_heapsort.aem_heapsort` (§4.3).

Cache-oblivious (§5.1):
    :func:`~repro.core.co_sort.co_sort` (Figure 1).
"""

from .aem_heapsort import AEMPriorityQueue, aem_heapsort
from .aem_mergesort import aem_mergesort
from .aem_samplesort import aem_samplesort
from .buffer_tree import BufferTree
from .em_utils import em_two_way_mergesort
from .kernels import (
    KERNEL_ENTRIES,
    SLOW_REFERENCE,
    VECTORIZED,
    get_default_kernel,
    kernel_mode,
    set_default_kernel,
)
from .parallel_samplesort import parallel_samplesort
from .ram_sort import RAM_SORTS, bst_sort, heapsort, mergesort, quicksort
from .selection_sort import selection_sort
from .shard_merge import shard_merge

__all__ = [
    "AEMPriorityQueue",
    "BufferTree",
    "KERNEL_ENTRIES",
    "RAM_SORTS",
    "SLOW_REFERENCE",
    "VECTORIZED",
    "aem_heapsort",
    "aem_mergesort",
    "aem_samplesort",
    "bst_sort",
    "em_two_way_mergesort",
    "get_default_kernel",
    "heapsort",
    "kernel_mode",
    "mergesort",
    "parallel_samplesort",
    "quicksort",
    "selection_sort",
    "set_default_kernel",
    "shard_merge",
]
