"""Algorithm 2: AEM mergesort with branching factor l = kM/B (§4.1).

Structure
---------
* Base case ``n <= kM``: the Lemma 4.2 selection sort.
* Otherwise: partition into ``l = kM/B`` block-aligned subarrays (free),
  recursively sort each, then merge all ``l`` runs with an in-memory
  priority queue of capacity ``M``, in *rounds*:

  - **Phase 1** re-reads the current block of every run and inserts eligible
    records (``lastV < key``) into the queue, ejecting the maximum when full.
  - **Phase 2** drains the queue in increasing order to the output; whenever
    the popped record is the last of its block, the run's pointer advances
    and the next block is processed immediately.

Theorem 4.3 bounds: ``R(n) <= (k+1) ceil(n/B) ceil(log_{kM/B}(n/B))`` reads
and ``W(n) <= ceil(n/B) ceil(log_{kM/B}(n/B))`` writes.

Round-threshold correction
--------------------------
The paper's pseudocode admits phase-2 records whenever ``lastV < key <
Q.max`` with ``Q.max = +inf`` when the queue is not full.  As written this
can *strand a record permanently*: a record ``r`` rejected in phase 1
(``r > Q.max``) stays in its un-advanced block, but phase 2 may admit and
output later-block records **larger** than ``r`` (the queue is no longer
full, so ``Q.max = +inf``); once ``lastV > r``, every later round's filter
``(lastV, Q.max)`` excludes ``r`` forever.

Fix: maintain a per-round threshold ``T`` (initially ``+inf``).  Whenever a
record is passed over because of queue capacity — ejected, or skipped because
``key >= Q.max`` — lower ``T`` to that record's key.  Admit records only when
``lastV < key < T``.  Invariants (asserted in tests):

* queue contents are always ``< T`` (ejection sets ``T`` to the old max;
  skipping sets ``T`` to a key ``>=`` the current max), so every output of
  the round is ``< T``;
* every stranded record has key ``>= T > lastV`` at round end, so the next
  round's phase 1 re-admits it;
* outputs within a round are strictly increasing (phase-2 insertions exceed
  the just-popped block-last record, which is the running maximum pop).

A round still outputs at least ``M`` records whenever any capacity event
occurred (the queue held ``M`` records at that moment and all of them pop
this round), so Lemma 4.1's ``ceil(n/M)``-round bound — and hence Theorem
4.3 — is unchanged.
"""

from __future__ import annotations

import bisect
import math

from ..models.external_memory import AEMachine, ExtArray, MemoryGuard
from .kernels import SLOW_REFERENCE, register_kernel_entry, resolve_kernel
from .selection_sort import selection_sort

register_kernel_entry(
    "mergesort",
    vectorized="repro.core.aem_mergesort:aem_mergesort",
    slow_reference="repro.core.aem_mergesort:aem_mergesort",  # same entry point, kernel="slow_reference"
    contract="Theorem 4.3",
)


_INF = object()  # sentinel: larger than every key


class StrandingDetected(RuntimeError):
    """Raised when the paper-literal merge (``round_threshold=False``)
    permanently strands a record — the erratum this module's docstring
    documents.  The fixed algorithm never raises this."""


class _MergeQueue:
    """In-memory double-ended priority queue of capacity M.

    Primary-memory operations are free in the AEM model, so we simply keep a
    sorted list (``bisect``-maintained).  Entries are ``(key, run_index,
    is_last_in_block)``.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._items: list[tuple] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.capacity

    def max_key(self):
        """Largest key currently in the queue (queue must be non-empty)."""
        return self._items[-1][0]

    def push(self, entry: tuple) -> None:
        bisect.insort(self._items, entry)

    def pop_min(self) -> tuple:
        return self._items.pop(0)

    def eject_max(self) -> tuple:
        return self._items.pop()


def aem_mergesort(
    machine: AEMachine,
    arr: ExtArray,
    k: int = 1,
    guard: MemoryGuard | None = None,
    *,
    round_threshold: bool = True,
    kernel: str | None = None,
) -> ExtArray:
    """Sort ``arr`` on the AEM machine; ``k = 1`` recovers classic EM mergesort.

    Parameters
    ----------
    k:
        Extra branching factor, ``1 <= k`` (the paper uses ``k = O(omega)``;
        Appendix A gives the profitable range ``k/log k < omega/log(M/B)``).
    round_threshold:
        ``True`` (default) applies the round-threshold correction described
        in the module docstring.  ``False`` runs the paper's pseudocode
        *literally* — provided as an ablation so the erratum is empirically
        demonstrable; on adversarial inputs it raises
        :class:`StrandingDetected` instead of silently dropping records.
    kernel:
        ``"vectorized"`` (default) merges with block-granular bulk drains;
        ``"slow_reference"`` runs the original record-at-a-time queue.  The
        paper-literal ablation (``round_threshold=False``) always runs the
        reference kernel — it exists to reproduce that code path exactly.

    Returns a new sorted :class:`ExtArray`.
    """
    params = machine.params
    kernel = resolve_kernel(kernel)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    l = params.fanout(k)
    if l < 2:
        raise ValueError(
            f"fanout l = k*M/B = {l} < 2; increase M/B or k so merging can make progress"
        )
    if guard is None:
        guard = MemoryGuard()

    if arr.length <= k * params.M:
        return selection_sort(machine, arr, guard=guard, kernel=kernel)

    runs = machine.split_blocks(arr, l)
    sorted_runs = [
        aem_mergesort(machine, run, k, guard, round_threshold=round_threshold,
                      kernel=kernel)
        for run in runs
    ]
    if kernel == SLOW_REFERENCE or not round_threshold:
        return _merge(machine, sorted_runs, guard, round_threshold=round_threshold)
    return _merge_vectorized(machine, sorted_runs, guard)


def _merge(
    machine: AEMachine,
    runs: list[ExtArray],
    guard: MemoryGuard,
    *,
    round_threshold: bool = True,
) -> ExtArray:
    """Lemma 4.1 multi-way merge (with the round-threshold correction)."""
    params = machine.params
    n = sum(r.length for r in runs)
    out = machine.writer(name="merge-out")
    if n == 0:
        return out.close()

    # primary memory: queue (M) + load buffer (B) + store buffer (B)
    footprint = params.M + 2 * params.B

    queue = _MergeQueue(params.M)
    pointers = [0] * len(runs)  # I_1..I_l: current block index per run
    last_v = None  # last value written to the output (None = -inf)
    written = 0
    threshold = _INF  # per-round cap T (reset each round)

    def admissible(key) -> bool:
        if last_v is not None and key <= last_v:
            return False
        return threshold is _INF or key < threshold

    def process_block(i: int) -> None:
        """Read run i's current block and insert eligible records."""
        nonlocal threshold
        run = runs[i]
        bi = pointers[i]
        if bi >= run.num_blocks:
            return
        block = machine.read_block(run, bi, copy=False)
        for pos, rec in enumerate(block):
            if not admissible(rec):
                continue
            is_last = pos == len(block) - 1
            if queue.full:
                if rec < queue.max_key():
                    ejected = queue.eject_max()
                    if round_threshold:
                        threshold = (
                            ejected[0]
                            if threshold is _INF
                            else min(threshold, ejected[0])
                        )
                    queue.push((rec, i, is_last))
                elif round_threshold:
                    # skipped due to capacity: cap the round at this key
                    threshold = (
                        rec if threshold is _INF else min(threshold, rec)
                    )
            else:
                queue.push((rec, i, is_last))

    guard.acquire(footprint)
    try:
        while written < n:
            threshold = _INF
            # ---- phase 1: one pass over every run's current block ------
            for i in range(len(runs)):
                process_block(i)
            if len(queue) == 0:
                raise StrandingDetected(
                    "merge round admitted no records with "
                    f"{n - written} unwritten: the paper-literal filter "
                    "stranded them (see the module docstring erratum)"
                )
            # ---- phase 2: drain the queue, chasing block boundaries ----
            while len(queue) > 0:
                key, i, is_last = queue.pop_min()
                out.append(key)
                last_v = key
                written += 1
                if is_last:
                    pointers[i] += 1
                    process_block(i)
    finally:
        guard.release(footprint)
    return out.close()


def _splice_sorted(items: list, seg: list) -> None:
    """Merge sorted ``seg`` into sorted ``items`` in place.

    Finds each maximal run of ``seg`` that falls into one gap of ``items``
    (``bisect``) and inserts it with a single slice assignment — a C-level
    ``memmove`` per *gap*, instead of one ``insort`` per record.
    """
    ins = 0
    i0 = 0
    ns = len(seg)
    while i0 < ns:
        ins = bisect.bisect_right(items, seg[i0], ins)
        if ins == len(items):
            items.extend(seg[i0:] if i0 else seg)
            return
        j = bisect.bisect_left(seg, items[ins], i0)
        items[ins:ins] = seg[i0:j]
        ins += j - i0
        i0 = j


def _merge_vectorized(
    machine: AEMachine,
    runs: list[ExtArray],
    guard: MemoryGuard,
) -> ExtArray:
    """Block-granular Lemma 4.1 merge (round-threshold semantics).

    Control flow — which block is read when, which records each round
    admits, ejects or strands — is *identical* to :func:`_merge`; only the
    in-memory mechanics are batched:

    * phase-1 admission slices a block's admissible segment with ``bisect``
      (runs are sorted, so records ``<= lastV`` are a prefix and records
      ``>= T`` a suffix) and, when the whole segment fits without capacity
      events, splices it into the queue with one C-level sort of two sorted
      runs; capacity-constrained blocks fall back to the reference's
      faithful eject/skip loop;
    * phase-2 drains the maximal queue prefix up to the next block-boundary
      entry with one ``extend`` to the output writer instead of a ``pop(0)``
      (an O(M) list shift!) per record.

    Both give byte-identical outputs and counters; the parity suite pins it.
    """
    params = machine.params
    n = sum(r.length for r in runs)
    out = machine.writer(name="merge-out")
    if n == 0:
        return out.close()

    footprint = params.M + 2 * params.B

    M = params.M
    items: list[tuple] = []  # sorted entries (key, run_index, is_last_in_block)
    pointers = [0] * len(runs)  # I_1..I_l: current block index per run
    last_v = None  # last value written to the output (None = -inf)
    written = 0
    threshold = _INF  # per-round cap T (reset each round)

    def process_block(i: int) -> None:
        """Read run i's current block and admit eligible records in bulk."""
        nonlocal threshold
        run = runs[i]
        bi = pointers[i]
        if bi >= run.num_blocks:
            return
        block = machine.read_block(run, bi, copy=False)
        blk_len = len(block)
        start = bisect.bisect_right(block, last_v) if last_v is not None else 0
        if threshold is _INF:
            end = blk_len
        else:
            end = bisect.bisect_left(block, threshold, start)
        if end <= start:
            return
        if start == 0 and end == blk_len:
            seg = [(rec, i, False) for rec in block]
            seg[-1] = (block[-1], i, True)
        else:
            last_pos = blk_len - 1
            seg = [(block[pos], i, pos == last_pos) for pos in range(start, end)]
        free = M - len(items)
        if len(seg) <= free:
            # no capacity event possible: splice the sorted segment into the
            # sorted queue, one C-level slice insertion per gap
            if not items or seg[0] >= items[-1]:
                items.extend(seg)
            else:
                _splice_sorted(items, seg)
            return
        # Capacity-constrained admission, batched.  The reference processes
        # the (ascending) segment one record at a time: fill free slots,
        # then each further record either ejects the queue max (if smaller)
        # or is skipped, capping the round threshold and ending the block
        # (everything later is larger still).  Because admitted records are
        # never the queue max, the ejected entries are exactly the top ``t``
        # of the pre-admission queue, where ``t`` is the largest prefix of
        # the segment with ``seg[j] < items[M-1-j]`` — so the whole exchange
        # is one slice delete plus one splice, and the threshold drops to
        # the smallest ejected key (then to the first skipped key, if that
        # skip was still admissible).
        if free:
            head = seg[:free]
            if not items or head[0] >= items[-1]:
                items.extend(head)
            else:
                _splice_sorted(items, head)
            seg = seg[free:]
        t = 0
        ns = len(seg)
        while t < ns and seg[t][0] < items[M - 1 - t][0]:
            t += 1
        if t:
            ejected_min = items[M - t][0]
            threshold = (
                ejected_min if threshold is _INF else min(threshold, ejected_min)
            )
            del items[M - t :]
            admitted = seg[:t]
            if not items or admitted[0] >= items[-1]:
                items.extend(admitted)
            else:
                _splice_sorted(items, admitted)
        if t < ns:
            rec = seg[t][0]
            if threshold is _INF or rec < threshold:
                # skipped due to capacity while still admissible: cap the
                # round at this key
                threshold = rec if threshold is _INF else min(threshold, rec)

    n_runs = len(runs)
    phase1_margin = M + 1 + (M >> 1)
    guard.acquire(footprint)
    try:
        while written < n:
            # ---- phase 1: one pass over every run's current block ----------
            # The round starts with an empty queue, so its outcome is closed
            # form: the queue ends as the M smallest admissible entries across
            # all current blocks, and the round threshold T ends at the
            # (M+1)-th (every eject/skip key has M smaller keys already seen,
            # so T can never undercut it; the (M+1)-th itself is ejected,
            # skipped, or T-filtered).  Gather candidate windows per run with
            # one listcomp each, keep the M+1 smallest (pruned at 1.5M so the
            # scratch stays bounded), then cut the queue and T together —
            # no per-record queue traffic at all.
            threshold = _INF
            cutoff = None  # running (M+1)-th smallest key
            for i in range(n_runs):
                run = runs[i]
                bi = pointers[i]
                if bi >= run.num_blocks:
                    continue
                block = machine.read_block(run, bi, copy=False)
                blk_len = len(block)
                start = bisect.bisect_right(block, last_v) if last_v is not None else 0
                end = (
                    blk_len
                    if cutoff is None
                    else bisect.bisect_right(block, cutoff, start)
                )
                if end <= start:
                    continue
                if start == 0 and end == blk_len:
                    seg = [(rec, i, False) for rec in block]
                    seg[-1] = (block[-1], i, True)
                else:
                    last_pos = blk_len - 1
                    seg = [(block[pos], i, pos == last_pos) for pos in range(start, end)]
                items.extend(seg)
                if len(items) >= phase1_margin:
                    items.sort()
                    del items[M + 1 :]
                    cutoff = items[-1][0]
            items.sort()
            if len(items) > M:
                threshold = items[M][0]
                del items[M:]
            if not items:
                raise StrandingDetected(
                    "merge round admitted no records with "
                    f"{n - written} unwritten: the paper-literal filter stranded "
                    "them (see the module docstring erratum)"
                )
            # ---- phase 2: bulk-drain up to each block boundary -------------
            while items:
                idx = 0
                n_items = len(items)
                while idx < n_items and not items[idx][2]:
                    idx += 1
                if idx == n_items:
                    # no boundary entry left: drain the whole queue
                    out.extend([e[0] for e in items])
                    written += n_items
                    last_v = items[-1][0]
                    items.clear()
                    break
                batch = items[: idx + 1]
                del items[: idx + 1]
                out.extend([e[0] for e in batch])
                written += len(batch)
                last_v, i, _ = batch[-1]
                pointers[i] += 1
                process_block(i)

    finally:
        guard.release(footprint)
    return out.close()


# ---------------------------------------------------------------------- #
# Theorem 4.3 closed forms
# ---------------------------------------------------------------------- #
def merge_levels(n: int, M: int, B: int, k: int) -> int:
    """``ceil(log_{kM/B}(n/B))`` — recursion levels including the base round."""
    if n <= B:
        return 1
    l = k * M // B
    return max(1, math.ceil(math.log(n / B) / math.log(l)))


def predicted_reads(n: int, M: int, B: int, k: int) -> int:
    """Theorem 4.3: ``R(n) <= (k+1) ceil(n/B) ceil(log_{kM/B}(n/B))``."""
    return (k + 1) * math.ceil(n / B) * merge_levels(n, M, B, k)


def predicted_writes(n: int, M: int, B: int, k: int) -> int:
    """Theorem 4.3: ``W(n) <= ceil(n/B) ceil(log_{kM/B}(n/B))``."""
    return math.ceil(n / B) * merge_levels(n, M, B, k)
