"""Classic (write-oblivious) baseline algorithms.

The paper's §4 algorithms generalise the classic EM algorithms: setting the
extra branching factor ``k = 1`` *is* the classic algorithm ("the new
algorithm will perform exactly the same as the classic EM mergesort", §4.1).
These wrappers freeze ``k = 1`` so experiments and examples can name the
baselines explicitly.
"""

from .classic import (
    classic_em_heapsort,
    classic_em_mergesort,
    classic_em_samplesort,
)

__all__ = [
    "classic_em_heapsort",
    "classic_em_mergesort",
    "classic_em_samplesort",
]
