"""k = 1 instantiations of the §4 algorithms: the classic EM sorts.

All three classic EM sorting algorithms (M/B-way mergesort, distribution
sort, buffer-tree heapsort) achieve the optimal symmetric EM bound

    Theta((n/B) log_{M/B}(n/B))

total transfers (Aggarwal–Vitter).  Under asymmetric write costs they pay
``omega`` on every one of those writes; the experiments compare them against
their ``k = O(omega)`` write-efficient counterparts.
"""

from __future__ import annotations

from ..core.aem_heapsort import aem_heapsort
from ..core.aem_mergesort import aem_mergesort
from ..core.aem_samplesort import aem_samplesort
from ..models.external_memory import AEMachine, ExtArray


def classic_em_mergesort(machine: AEMachine, arr: ExtArray) -> ExtArray:
    """The classic M/B-way EM mergesort (Algorithm 2 with ``k = 1``)."""
    return aem_mergesort(machine, arr, k=1)


def classic_em_samplesort(machine: AEMachine, arr: ExtArray, seed: int = 0) -> ExtArray:
    """The classic EM distribution sort (§4.2 with ``k = 1``)."""
    return aem_samplesort(machine, arr, k=1, seed=seed)


def classic_em_heapsort(machine: AEMachine, arr: ExtArray) -> ExtArray:
    """The classic buffer-tree heapsort (§4.3 with ``k = 1``)."""
    return aem_heapsort(machine, arr, k=1)
