"""The :class:`SortEngine` session façade: one object, every entry point.

The public surface had grown call-by-call — ``sort_external`` / ``sort_ram``
/ ``sort_auto`` / ``run_batch`` / ``calibrate`` each re-threaded ``params``,
``constants=``, ``cache=`` and executor knobs — and none of them could accept
records *incrementally*.  ``SortEngine`` is the canonical entry point that
owns the configuration once:

* one :class:`~repro.models.params.MachineParams` (the machine every call
  runs on unless a batch job pins its own),
* one :class:`~repro.planner.plan_cache.PlanCache` shared by every adaptive
  path (one-shot, batch, streaming), so plans are memoised across the whole
  session,
* one optional :class:`~repro.planner.calibration.CostConstants` so every
  ranking uses the same calibrated leading constants (refreshable in place
  via :meth:`SortEngine.calibrate`),
* the default batch executor (``"thread"`` or ``"process"``) and pool width.

Entry points
------------
``engine.sort(data, algorithm="auto")``
    One-shot sort: adaptive planning by default, or any registry algorithm
    (``mergesort`` / ``samplesort`` / ``heapsort`` / ``selection`` / ``ram``).
``engine.batch(jobs)``
    Concurrent execution of many jobs through the engine's shared plan cache
    and constants (:class:`~repro.planner.batch.BatchReport`).
``engine.calibrate()``
    Measure + fit :class:`CostConstants` on the engine's machine and adopt
    them for every subsequent ranking.
``engine.stream()``
    The streaming/online entry point: a context manager yielding a
    :class:`StreamSession` that ingests records incrementally into a §4.3
    :class:`~repro.core.buffer_tree.BufferTree` at amortized
    ``O((1/B) log_{kM/B}(n/B))`` block I/O per record, with general deletions,
    and drains to a sorted :class:`~repro.api.SortReport` on ``flush()`` /
    ``close()``.

The legacy module-level calls (``sort_external`` & co. in :mod:`repro.api`,
``run_batch`` in :mod:`repro.planner.batch`) are thin backward-compatible
shims over a throwaway engine instance.

Uniform external-sort registry
------------------------------
:data:`EXTERNAL_SORTS` gives every §4 external sort one dispatch signature
``run(machine, arr, k, guard)`` — the Lemma 4.2 selection sort (which has no
branching factor) simply ignores ``k`` instead of being special-cased behind
a ``None`` sentinel as the old ``api._EXTERNAL_SORTS`` table did.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Callable

from .core.aem_heapsort import aem_heapsort
from .core.aem_mergesort import aem_mergesort
from .core.aem_samplesort import aem_samplesort
from .core.buffer_tree import BufferTree
from .core.ram_sort import RAM_SORTS
from .core.selection_sort import selection_sort
from .models.counters import CostCounter
from .models.external_memory import AEMachine, ExtArray, MemoryGuard
from .models.params import MachineParams


# ---------------------------------------------------------------------- #
# the uniform external-sort registry
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExternalSortSpec:
    """One §4 external sort with a uniform dispatch signature.

    ``run(machine, arr, k, guard)`` for every entry; ``takes_k`` records
    whether the algorithm actually has a branching factor (it shapes the
    report label and extras, not the call).
    """

    family: str
    run: Callable[[AEMachine, ExtArray, int, MemoryGuard], ExtArray]
    takes_k: bool = True

    def label(self, k: int | None) -> str:
        if not self.takes_k:
            return f"aem-{self.family}"
        return f"aem-{self.family}(k={k})"

    def extras(self, k: int | None) -> dict:
        return {"k": k} if self.takes_k else {}


def _run_mergesort(machine, arr, k, guard):
    return aem_mergesort(machine, arr, k, guard=guard)


def _run_samplesort(machine, arr, k, guard):
    return aem_samplesort(machine, arr, k, guard=guard)


def _run_heapsort(machine, arr, k, guard):
    return aem_heapsort(machine, arr, k, guard=guard)


def _run_selection(machine, arr, k, guard):
    # Lemma 4.2 has no branching factor; the uniform signature ignores k
    return selection_sort(machine, arr, guard=guard)


#: every §4 external sort, uniformly callable as ``run(machine, arr, k, guard)``
EXTERNAL_SORTS: dict[str, ExternalSortSpec] = {
    "mergesort": ExternalSortSpec("mergesort", _run_mergesort),
    "samplesort": ExternalSortSpec("samplesort", _run_samplesort),
    "heapsort": ExternalSortSpec("heapsort", _run_heapsort),
    "selection": ExternalSortSpec("selection", _run_selection, takes_k=False),
}


# ---------------------------------------------------------------------- #
# machine-independent report builders (shared by the engine and the shims)
# ---------------------------------------------------------------------- #
def external_sort_report(
    data: Sequence,
    params: MachineParams,
    algorithm: str = "mergesort",
    k: int | None = None,
):
    """Run one registry sort on a fresh AEM machine and report block costs."""
    from .api import SortReport

    spec = EXTERNAL_SORTS.get(algorithm)
    if spec is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(EXTERNAL_SORTS)}"
        )
    if spec.takes_k and k is None:
        from .analysis.ktuning import choose_k

        k = choose_k(params, n=len(data))
    machine = AEMachine(params)
    arr = machine.from_list(data, name="input")
    guard = MemoryGuard()
    out = spec.run(machine, arr, k, guard)
    return SortReport(
        algorithm=spec.label(k),
        n=len(data),
        params=params,
        output=out.peek_list(),
        counter=machine.counter,
        memory_high_water=guard.high_water,
        extras=spec.extras(k),
        family=spec.family,
        granularity="block",
    )


def ram_sort_report(data: Sequence, algorithm: str = "bst-rb"):
    """Sort in the Asymmetric RAM model (§3), element granularity."""
    from .api import SortReport

    if algorithm not in RAM_SORTS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(RAM_SORTS)}"
        )
    out, counter = RAM_SORTS[algorithm](data)
    return SortReport(
        algorithm=f"ram-{algorithm}",
        n=len(data),
        params=None,
        output=out,
        counter=counter,
        family="ram",
        granularity="element",
    )


def ram_on_machine_report(
    data: Sequence, params: MachineParams, algorithm: str = "bst-rb"
):
    """The in-memory plan at AEM *block* granularity: one scan in
    (``ceil(n/B)`` reads), any :data:`RAM_SORTS` sort for free in primary
    memory, one stream out (``ceil(n/B)`` writes).

    Raises ``ValueError`` when ``n > M`` — the input would not fit, exactly
    as :func:`repro.planner.cost_model.predict_candidate` rejects the
    ``ram`` plan for such an ``n``.
    """
    if len(data) > params.M:
        raise ValueError(f"ram sort requires n <= M, got n={len(data)} > M={params.M}")
    report = ram_sort_report(data, algorithm=algorithm)
    report.params = params
    blocks = math.ceil(len(data) / params.B)
    report.counter.charge_block_read(blocks)
    report.counter.charge_block_write(blocks)
    report.granularity = "block"
    return report


# ---------------------------------------------------------------------- #
# the engine
# ---------------------------------------------------------------------- #
class SortEngine:
    """Stateful session façade over the planner, the executors and the sorts.

    Parameters
    ----------
    params:
        The machine every call runs on (batch jobs may pin their own).
    constants:
        Optional calibrated :class:`CostConstants` used by every adaptive
        ranking; :meth:`calibrate` fits and adopts a fresh set in place.
    cache:
        The shared :class:`PlanCache`; one is created when ``None``.  All
        paths — one-shot, batch, streaming — consult this single cache.
    executor / workers:
        Default batch backend (``"thread"`` or ``"process"``) and pool
        width, overridable per :meth:`batch` call.
    """

    def __init__(
        self,
        params: MachineParams,
        *,
        constants=None,
        cache=None,
        executor: str = "thread",
        workers: int | None = None,
    ):
        from .planner.plan_cache import PlanCache

        if not isinstance(params, MachineParams):
            raise TypeError(f"params must be MachineParams, got {type(params).__name__}")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'thread' or 'process'"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 or None, got {workers}")
        self.params = params
        self.constants = constants
        self.cache = cache if cache is not None else PlanCache()
        self.executor = executor
        self.workers = workers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SortEngine({self.params}, executor={self.executor!r}, "
            f"calibrated={self.constants is not None})"
        )

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, n: int, algorithms: tuple[str, ...] | None = None, k_max: int | None = None):
        """The memoised ranked :class:`SortPlan` for ``n`` records on the
        engine's machine, under the engine's constants."""
        return self.cache.plan(
            n, self.params, algorithms=algorithms, k_max=k_max, constants=self.constants
        )

    # ------------------------------------------------------------------ #
    # one-shot sorting
    # ------------------------------------------------------------------ #
    def sort(
        self,
        data: Sequence,
        algorithm: str = "auto",
        k: int | None = None,
        algorithms: tuple[str, ...] | None = None,
        ram_algorithm: str = "bst-rb",
    ):
        """Sort ``data`` on the engine's machine.

        ``algorithm="auto"`` plans through the shared cache and executes the
        minimum-predicted-cost candidate (the plan rides along in
        ``extras["plan"]``); a registry name pins the external sort; ``"ram"``
        pins the in-memory plan, executed with ``ram_algorithm`` (any
        :data:`~repro.core.ram_sort.RAM_SORTS` entry) at block granularity.
        """
        if algorithm == "auto":
            plan = self.plan(len(data), algorithms=algorithms)
            chosen = plan.chosen
            if chosen.model == "ram":
                report = ram_on_machine_report(data, self.params, algorithm=ram_algorithm)
            else:
                report = external_sort_report(
                    data, self.params, algorithm=chosen.algorithm, k=chosen.k
                )
            report.extras["plan"] = plan.as_dict()
            return report
        if algorithm == "ram":
            return ram_on_machine_report(data, self.params, algorithm=ram_algorithm)
        return external_sort_report(data, self.params, algorithm=algorithm, k=k)

    # ------------------------------------------------------------------ #
    # batch execution
    # ------------------------------------------------------------------ #
    def batch(
        self,
        jobs: Sequence,
        *,
        check_sorted: bool = False,
        executor: str | None = None,
        workers: int | None = None,
    ):
        """Execute many jobs through the engine's cache and constants.

        ``jobs`` items are :class:`~repro.planner.batch.SortJob`\\ s (a bare
        data sequence is wrapped into an adaptive job on the engine's
        machine; a job with ``params=None`` inherits the engine's machine).
        ``executor`` / ``workers`` default to the engine's configuration.
        """
        from dataclasses import replace

        from .planner.batch import SortJob, execute_batch

        normalized = []
        for job in jobs:
            if not isinstance(job, SortJob):
                job = SortJob(data=job)
            if job.params is None:
                job = replace(job, params=self.params)
            normalized.append(job)
        return execute_batch(
            normalized,
            max_workers=workers if workers is not None else self.workers,
            check_sorted=check_sorted,
            executor=executor if executor is not None else self.executor,
            plan_cache=self.cache,
            constants=self.constants,
        )

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        sizes: Sequence[int] | None = None,
        algorithms: Sequence[str] | None = None,
        scenario: str = "uniform",
        seed: int = 0,
        adopt: bool = True,
    ):
        """Measure the real sorts on the engine's machine, fit
        :class:`CostConstants`, and (by default) adopt them for every
        subsequent adaptive call.  Returns the fitted constants.

        Adoption never stales the plan cache: constants are part of every
        cache key, so rankings under the new constants are computed fresh.
        """
        from .planner.calibration import (
            CALIBRATABLE_ALGORITHMS,
            DEFAULT_SIZES,
            calibrate,
        )

        constants = calibrate(
            self.params,
            sizes=tuple(sizes) if sizes is not None else DEFAULT_SIZES,
            algorithms=tuple(algorithms) if algorithms is not None else CALIBRATABLE_ALGORITHMS,
            scenario=scenario,
            seed=seed,
        )
        if adopt:
            self.constants = constants
        return constants

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def stream(self, k: int | None = None) -> "StreamSession":
        """Open a buffer-tree-backed :class:`StreamSession` on a fresh AEM
        machine (usable directly or as a context manager).

        ``k`` is the §4.3 extra branching factor; the default is the
        Appendix-A ``n``-blind recipe (``n`` is unknown up front in a
        stream), clamped to the tree's feasible range.
        """
        if k is None:
            from .analysis.ktuning import choose_k

            k = choose_k(self.params)
            # the tree needs fanout kM/B >= 4; bump k on narrow machines
            while self.params.fanout(k) < 4:
                k += 1
        return StreamSession(self, k=k)


class StreamSession:
    """Incremental ingestion into a §4.3 :class:`BufferTree`, draining to
    sorted :class:`~repro.api.SortReport`\\ s.

    Records are pushed (and deleted — §4.3.1 general deletions) one at a
    time or in bulk; each record costs amortized
    ``O((1/B)(1 + log_{kM/B}(n/B)))`` block writes and ``k`` times that in
    reads (Theorem 4.10's buffer-tree terms).  ``flush()`` drains everything
    currently held into a sorted report billed with the block I/O incurred
    since the previous flush; ``close()`` performs a final flush and seals
    the session (also called by ``with engine.stream() as s:``, after which
    ``s.report`` holds the final report).

    Duplicate keys are legal: following the paper's §2 remark that "a
    position index can always be added to make keys unique", records enter
    the tree as ``(key, seq)`` pairs and are unwrapped on drain, so equal
    keys coexist and drain in arrival order.  ``delete(key)`` removes the
    most recently pushed live instance of ``key`` (raising ``KeyError`` if
    none is live); the per-key liveness index is in-memory session
    bookkeeping, free under the model like the priority queue's
    implicit-deletion pair list.
    """

    def __init__(self, engine: SortEngine, k: int = 1):
        self.engine = engine
        self.params = engine.params
        self.k = k
        self.machine = AEMachine(self.params)
        self.tree = BufferTree(self.machine, k=k)
        self.closed = False
        #: total records pushed / deleted over the session's lifetime
        self.pushed = 0
        self.deleted = 0
        #: reports of every flush, in order; ``report`` is the final one
        self.reports: list = []
        self.report = None
        self._live: dict = {}  # key -> live seqs (most recent last)
        self._reads_mark = 0
        self._writes_mark = 0
        self._ops_mark = 0  # pushes + deletes billed by earlier flushes

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # don't mask an in-flight exception with a drain of a half-built tree
        if exc_type is None:
            self.close()
        else:
            self.closed = True

    def __len__(self) -> int:
        return self.tree.size

    def _require_open(self) -> None:
        if self.closed:
            raise RuntimeError("stream session is closed")

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def push(self, record) -> None:
        """Ingest one record (amortized buffer-tree insert)."""
        self._require_open()
        seq = self.tree.next_seq  # the tree's op counter doubles as the uid
        self.tree.insert((record, seq))
        self._live.setdefault(record, []).append(seq)
        self.pushed += 1

    def push_many(self, records: Iterable) -> None:
        """Ingest records in bulk (one amortized insert each)."""
        for rec in records:
            self.push(rec)

    def delete(self, key) -> None:
        """Remove the most recently pushed live instance of ``key``.

        Raises ``KeyError`` immediately when no instance is live (unlike raw
        :meth:`BufferTree.delete`, which defers to application time — the
        session's liveness index can afford to fail fast).
        """
        self._require_open()
        seqs = self._live.get(key)
        if not seqs:
            raise KeyError(f"delete of absent key {key!r}")
        seq = seqs.pop()
        if not seqs:
            del self._live[key]
        self.tree.delete((key, seq))
        self.deleted += 1

    # ------------------------------------------------------------------ #
    # draining
    # ------------------------------------------------------------------ #
    def flush(self):
        """Drain every record currently held into a sorted
        :class:`~repro.api.SortReport` and return it.

        The report's counters carry the block I/O incurred since the
        previous flush (ingestion + this drain), so its ``cost()`` is the
        stream's actual bill; ``extras`` records the tree's structural
        statistics and the Theorem 4.10 unit-constant prediction for every
        operation billed here (pushes *and* deletes).  The session stays
        open for further pushes.
        """
        self._require_open()
        return self._drain()

    def close(self):
        """Final flush (any remaining records — possibly none) and seal the
        session.  Returns the final report, also kept as ``self.report``."""
        if self.closed:
            return self.report
        report = self._drain()
        self.closed = True
        return report

    def _drain(self):
        from .api import SortReport
        from .planner.cost_model import predict_stream_io

        # unwrap the (key, seq) uniquifying pairs (§2 position index)
        out = [key for key, _seq in self.tree.drain_stream()]
        self._live.clear()
        counter = self.machine.counter
        delta = CostCounter(
            block_reads=counter.block_reads - self._reads_mark,
            block_writes=counter.block_writes - self._writes_mark,
        )
        self._reads_mark = counter.block_reads
        self._writes_mark = counter.block_writes
        n = len(out)
        # the prediction covers every operation billed in this flush —
        # deletes are buffer-tree ops too, so a delete-heavy session is
        # compared against the work it actually did, not just its survivors
        ops = (self.pushed + self.deleted) - self._ops_mark
        self._ops_mark = self.pushed + self.deleted
        pred_reads, pred_writes = predict_stream_io(ops, self.params, self.k)
        report = SortReport(
            algorithm=f"stream-buffer-tree(k={self.k})",
            n=n,
            params=self.params,
            output=out,
            counter=delta,
            extras={
                "k": self.k,
                "pushed": self.pushed,
                "deleted": self.deleted,
                **self.tree.io_stats(),
                "predicted_reads": pred_reads,
                "predicted_writes": pred_writes,
            },
            family="stream",
            granularity="block",
        )
        self.reports.append(report)
        self.report = report
        return report
