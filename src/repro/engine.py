"""The :class:`SortEngine` session façade: one object, every entry point.

The public surface had grown call-by-call — ``sort_external`` / ``sort_ram``
/ ``sort_auto`` / ``run_batch`` / ``calibrate`` each re-threaded ``params``,
``constants=``, ``cache=`` and executor knobs — and none of them could accept
records *incrementally*.  ``SortEngine`` is the canonical entry point that
owns the configuration once:

* one :class:`~repro.models.params.MachineParams` (the machine every call
  runs on unless a batch job pins its own),
* one :class:`~repro.planner.plan_cache.PlanCache` shared by every adaptive
  path (one-shot, batch, streaming), so plans are memoised across the whole
  session,
* one optional :class:`~repro.planner.calibration.CostConstants` so every
  ranking uses the same calibrated leading constants (refreshable in place
  via :meth:`SortEngine.calibrate`),
* the default batch executor (``"thread"`` or ``"process"``) and pool width.

Entry points
------------
``engine.sort(data, algorithm="auto")``
    One-shot sort: adaptive planning by default, or any registry algorithm
    (``mergesort`` / ``samplesort`` / ``heapsort`` / ``selection`` / ``ram``).
``engine.batch(jobs)``
    Concurrent execution of many jobs through the engine's shared plan cache
    and constants (:class:`~repro.planner.batch.BatchReport`) — since the
    service redesign, a thin ``submit_many`` + ``gather`` client of
    ``engine.service()``, the persistent :class:`~repro.service.SortService`
    pool the engine keeps alive across calls (shut down via
    :meth:`SortEngine.close` or the engine's context manager).
``engine.calibrate()``
    Measure + fit :class:`CostConstants` on the engine's machine and adopt
    them for every subsequent ranking.
``engine.stream()``
    The streaming/online entry point: a context manager yielding a
    :class:`StreamSession` that ingests records incrementally into a §4.3
    :class:`~repro.core.buffer_tree.BufferTree` at amortized
    ``O((1/B) log_{kM/B}(n/B))`` block I/O per record, with general deletions,
    and drains to a sorted :class:`~repro.api.SortReport` on ``flush()`` /
    ``close()`` — or partially via ``pop_min(m)`` (top-m extraction without
    a full flush).

The legacy module-level calls (``sort_external`` & co. in :mod:`repro.api`,
``run_batch`` in :mod:`repro.planner.batch`) are thin backward-compatible
shims over a throwaway engine instance.  The asynchronous
submission surface (futures, priorities, the socket server) lives in
:mod:`repro.service`.

Uniform external-sort registry
------------------------------
:data:`EXTERNAL_SORTS` gives every §4 external sort one dispatch signature
``run(machine, arr, k, guard)`` — the Lemma 4.2 selection sort (which has no
branching factor) simply ignores ``k`` instead of being special-cased behind
a ``None`` sentinel as the old ``api._EXTERNAL_SORTS`` table did.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Callable

from .core.aem_heapsort import aem_heapsort
from .core.aem_mergesort import aem_mergesort
from .core.aem_samplesort import aem_samplesort
from .core.buffer_tree import BufferTree
from .core.ram_sort import RAM_SORTS
from .core.selection_sort import selection_sort
from .models.counters import CostCounter
from .models.external_memory import AEMachine, ExtArray, MemoryGuard
from .models.params import MachineParams


# ---------------------------------------------------------------------- #
# the uniform external-sort registry
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExternalSortSpec:
    """One §4 external sort with a uniform dispatch signature.

    ``run(machine, arr, k, guard)`` for every entry; ``takes_k`` records
    whether the algorithm actually has a branching factor (it shapes the
    report label and extras, not the call).
    """

    family: str
    run: Callable[[AEMachine, ExtArray, int, MemoryGuard], ExtArray]
    takes_k: bool = True

    def label(self, k: int | None) -> str:
        if not self.takes_k:
            return f"aem-{self.family}"
        return f"aem-{self.family}(k={k})"

    def extras(self, k: int | None) -> dict:
        return {"k": k} if self.takes_k else {}


def _run_mergesort(machine, arr, k, guard):
    return aem_mergesort(machine, arr, k, guard=guard)


def _run_samplesort(machine, arr, k, guard):
    return aem_samplesort(machine, arr, k, guard=guard)


def _run_heapsort(machine, arr, k, guard):
    return aem_heapsort(machine, arr, k, guard=guard)


def _run_selection(machine, arr, k, guard):
    # Lemma 4.2 has no branching factor; the uniform signature ignores k
    return selection_sort(machine, arr, guard=guard)


#: every §4 external sort, uniformly callable as ``run(machine, arr, k, guard)``
EXTERNAL_SORTS: dict[str, ExternalSortSpec] = {
    "mergesort": ExternalSortSpec("mergesort", _run_mergesort),
    "samplesort": ExternalSortSpec("samplesort", _run_samplesort),
    "heapsort": ExternalSortSpec("heapsort", _run_heapsort),
    "selection": ExternalSortSpec("selection", _run_selection, takes_k=False),
}


# ---------------------------------------------------------------------- #
# machine-independent report builders (shared by the engine and the shims)
# ---------------------------------------------------------------------- #
def external_sort_report(
    data: Sequence,
    params: MachineParams,
    algorithm: str = "mergesort",
    k: int | None = None,
):
    """Run one registry sort on a fresh AEM machine and report block costs."""
    from .api import SortReport

    spec = EXTERNAL_SORTS.get(algorithm)
    if spec is None:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(EXTERNAL_SORTS)}"
        )
    if spec.takes_k and k is None:
        from .analysis.ktuning import choose_k

        k = choose_k(params, n=len(data))
    machine = AEMachine(params)
    arr = machine.from_list(data, name="input")
    guard = MemoryGuard()
    out = spec.run(machine, arr, k, guard)
    return SortReport(
        algorithm=spec.label(k),
        n=len(data),
        params=params,
        output=out.peek_list(),
        counter=machine.counter,
        memory_high_water=guard.high_water,
        extras=spec.extras(k),
        family=spec.family,
        granularity="block",
    )


def ram_sort_report(data: Sequence, algorithm: str = "bst-rb"):
    """Sort in the Asymmetric RAM model (§3), element granularity."""
    from .api import SortReport

    if algorithm not in RAM_SORTS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(RAM_SORTS)}"
        )
    out, counter = RAM_SORTS[algorithm](data)
    return SortReport(
        algorithm=f"ram-{algorithm}",
        n=len(data),
        params=None,
        output=out,
        counter=counter,
        family="ram",
        granularity="element",
    )


def ram_on_machine_report(
    data: Sequence, params: MachineParams, algorithm: str = "bst-rb"
):
    """The in-memory plan at AEM *block* granularity: one scan in
    (``ceil(n/B)`` reads), any :data:`RAM_SORTS` sort for free in primary
    memory, one stream out (``ceil(n/B)`` writes).

    Raises ``ValueError`` when ``n > M`` — the input would not fit, exactly
    as :func:`repro.planner.cost_model.predict_candidate` rejects the
    ``ram`` plan for such an ``n``.
    """
    if len(data) > params.M:
        raise ValueError(f"ram sort requires n <= M, got n={len(data)} > M={params.M}")
    report = ram_sort_report(data, algorithm=algorithm)
    report.params = params
    blocks = math.ceil(len(data) / params.B)
    report.counter.charge_block_read(blocks)
    report.counter.charge_block_write(blocks)
    report.granularity = "block"
    return report


# ---------------------------------------------------------------------- #
# the engine
# ---------------------------------------------------------------------- #
class SortEngine:
    """Stateful session façade over the planner, the executors and the sorts.

    Parameters
    ----------
    params:
        The machine every call runs on (batch jobs may pin their own).
    constants:
        Optional calibrated :class:`CostConstants` used by every adaptive
        ranking; :meth:`calibrate` fits and adopts a fresh set in place.
    cache:
        The shared :class:`PlanCache`; one is created when ``None``.  All
        paths — one-shot, batch, streaming — consult this single cache.
    executor / workers:
        Default batch backend (``"thread"`` or ``"process"``) and pool
        width, overridable per :meth:`batch` call.
    """

    def __init__(
        self,
        params: MachineParams,
        *,
        constants=None,
        cache=None,
        executor: str = "thread",
        workers: int | None = None,
    ):
        from .planner.plan_cache import PlanCache

        if not isinstance(params, MachineParams):
            raise TypeError(f"params must be MachineParams, got {type(params).__name__}")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'thread' or 'process'"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1 or None, got {workers}")
        self.params = params
        self.constants = constants
        self.cache = cache if cache is not None else PlanCache()
        self.executor = executor
        self.workers = workers
        # persistent SortService pools, keyed by (executor, workers) — the
        # batch path reuses them across calls instead of rebuilding per run
        self._services: dict = {}
        # persistent ClusterCoordinators, keyed by the host tuple — same
        # reuse contract as _services, torn down by close()
        self._clusters: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SortEngine({self.params}, executor={self.executor!r}, "
            f"calibrated={self.constants is not None})"
        )

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, n: int, algorithms: tuple[str, ...] | None = None, k_max: int | None = None):
        """The memoised ranked :class:`SortPlan` for ``n`` records on the
        engine's machine, under the engine's constants."""
        return self.cache.plan(
            n, self.params, algorithms=algorithms, k_max=k_max, constants=self.constants
        )

    # ------------------------------------------------------------------ #
    # one-shot sorting
    # ------------------------------------------------------------------ #
    def sort(
        self,
        data: Sequence,
        algorithm: str = "auto",
        k: int | None = None,
        algorithms: tuple[str, ...] | None = None,
        ram_algorithm: str = "bst-rb",
    ):
        """Sort ``data`` on the engine's machine.

        ``algorithm="auto"`` plans through the shared cache and executes the
        minimum-predicted-cost candidate (the plan rides along in
        ``extras["plan"]``); a registry name pins the external sort; ``"ram"``
        pins the in-memory plan, executed with ``ram_algorithm`` (any
        :data:`~repro.core.ram_sort.RAM_SORTS` entry) at block granularity.
        """
        if algorithm == "auto":
            plan = self.plan(len(data), algorithms=algorithms)
            chosen = plan.chosen
            if chosen.model == "ram":
                report = ram_on_machine_report(data, self.params, algorithm=ram_algorithm)
            else:
                report = external_sort_report(
                    data, self.params, algorithm=chosen.algorithm, k=chosen.k
                )
            report.extras["plan"] = plan.as_dict()
            return report
        if algorithm == "ram":
            return ram_on_machine_report(data, self.params, algorithm=ram_algorithm)
        return external_sort_report(data, self.params, algorithm=algorithm, k=k)

    # ------------------------------------------------------------------ #
    # batch execution (a thin client of the job service)
    # ------------------------------------------------------------------ #
    def service(
        self,
        executor: str | None = None,
        workers: int | None = None,
        warm_cache=None,
        *,
        max_queue: int | None = None,
        admission: str = "reject",
        block_timeout: float | None = None,
    ):
        """The engine's persistent :class:`~repro.service.SortService` for
        the given pool shape (created on first use, then reused — workers
        live across :meth:`batch` calls and direct submissions alike).

        ``executor`` / ``workers`` default to the engine's configuration;
        ``warm_cache`` pre-seeds planning when the pool is first built (use
        :meth:`~repro.service.SortService.warm` to reheat a live pool).
        ``max_queue`` bounds the pending queue; ``admission`` picks the
        overload policy (``"reject"`` / ``"block"`` / ``"shed-lowest"``,
        see :class:`~repro.service.SortService`).  Admission knobs are part
        of the cache key — a bounded and an unbounded service for the same
        pool shape are distinct pools.
        """
        from .service import SortService

        executor = executor if executor is not None else self.executor
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'thread' or 'process'"
            )
        if workers is None:
            workers = self.workers
        key = (executor, workers, max_queue, admission, block_timeout)
        svc = self._services.get(key)
        if svc is None:
            svc = SortService(
                self,
                workers=workers,
                executor=executor,
                warm_cache=warm_cache,
                max_queue=max_queue,
                admission=admission,
                block_timeout=block_timeout,
            )
            self._services[key] = svc
        elif warm_cache is not None:
            svc.warm(warm_cache)
        return svc

    def cluster(
        self,
        hosts,
        *,
        retries: int = 2,
        connect_retries: int = 25,
        timeout: float | None = None,
        warm_cache=None,
    ):
        """The engine's persistent
        :class:`~repro.cluster.ClusterCoordinator` over the given
        EngineServer ``hosts`` (created on first use, then reused) —
        symmetric with :meth:`service` for the distributed case.

        ``hosts`` is an iterable of ``(host, port)`` pairs (or a
        :class:`~repro.cluster.ClusterSpec`, whose knobs then win).
        ``warm_cache`` replays a plan-cache snapshot's sizes on every host
        when passed (first build *and* reuse — rewarming a live fleet is
        cheap and idempotent).  Coordinators are closed by
        :meth:`close` / the engine's context manager; the remote servers
        belong to their owners and keep running.
        """
        from .cluster import ClusterCoordinator, ClusterSpec

        if isinstance(hosts, ClusterSpec):
            spec = hosts
        else:
            spec = ClusterSpec(
                hosts=tuple((str(h), int(p)) for h, p in hosts),
                retries=retries,
                connect_retries=connect_retries,
                timeout=timeout,
            )
        key = spec.hosts
        coord = self._clusters.get(key)
        if coord is None:
            coord = ClusterCoordinator(spec, self.params)
            self._clusters[key] = coord
        if warm_cache is not None:
            coord.warm(warm_cache)
        return coord

    def batch(
        self,
        jobs: Sequence,
        *,
        check_sorted: bool = False,
        executor: str | None = None,
        workers: int | None = None,
        warm_cache=None,
    ):
        """Execute many jobs through the engine's cache and constants.

        Since the service redesign this is ``submit_many`` + ``gather`` on
        the engine's persistent :meth:`service` pool — the call signature
        and the :class:`~repro.planner.batch.BatchReport` it returns are
        unchanged (parity-tested against the one-shot
        :func:`~repro.planner.batch.execute_batch` reference), but the
        worker pool now survives across calls.

        ``jobs`` items are :class:`~repro.planner.batch.SortJob`\\ s (a bare
        data sequence is wrapped into an adaptive job on the engine's
        machine; a job with ``params=None`` inherits the engine's machine).
        ``executor`` / ``workers`` default to the engine's configuration;
        ``warm_cache`` pre-seeds planning (per-worker in process mode) with
        a parent cache's hot entries.
        """
        import time as _time

        from .planner.batch import BatchReport

        executor = executor if executor is not None else self.executor
        if executor not in ("thread", "process"):
            raise ValueError(
                f"unknown executor {executor!r}; choose 'thread' or 'process'"
            )
        if workers is not None and workers < 1:
            raise ValueError(f"max_workers must be >= 1 or None, got {workers}")
        jobs = list(jobs)
        if not jobs:
            return BatchReport(executor=executor)
        # workers=None maps to ONE shared default-width pool (keyed
        # (executor, None)) rather than a pool per distinct batch size —
        # otherwise batches of varying lengths would each leave a live pool
        # behind on a long-lived engine
        svc = self.service(executor=executor, workers=workers, warm_cache=warm_cache)
        t0 = _time.perf_counter()
        # round-robin pinning in process mode reproduces the historical
        # shard deal exactly (per-worker caches see the same job streams)
        futures = svc.submit_many(
            jobs, check_sorted=check_sorted, round_robin=(executor == "process")
        )
        report = svc.gather(futures)
        report.wall_seconds = _time.perf_counter() - t0
        return report

    def close(self) -> None:
        """Shut down the engine's persistent service pools (idempotent).

        Queued-but-undispatched jobs are cancelled; in-flight jobs finish.
        Worker threads/processes are daemons, so an unclosed engine cannot
        hang interpreter exit — closing simply reclaims them earlier.
        """
        services, self._services = list(self._services.values()), {}
        for svc in services:
            svc.shutdown(drain=False, wait=True)
        clusters, self._clusters = list(self._clusters.values()), {}
        for coord in clusters:
            coord.close()

    def __enter__(self) -> "SortEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # calibration
    # ------------------------------------------------------------------ #
    def calibrate(
        self,
        sizes: Sequence[int] | None = None,
        algorithms: Sequence[str] | None = None,
        scenario: str = "uniform",
        seed: int = 0,
        adopt: bool = True,
    ):
        """Measure the real sorts on the engine's machine, fit
        :class:`CostConstants`, and (by default) adopt them for every
        subsequent adaptive call.  Returns the fitted constants.

        Adoption never stales the plan cache: constants are part of every
        cache key, so rankings under the new constants are computed fresh.
        """
        from .planner.calibration import (
            CALIBRATABLE_ALGORITHMS,
            DEFAULT_SIZES,
            calibrate,
        )

        constants = calibrate(
            self.params,
            sizes=tuple(sizes) if sizes is not None else DEFAULT_SIZES,
            algorithms=tuple(algorithms) if algorithms is not None else CALIBRATABLE_ALGORITHMS,
            scenario=scenario,
            seed=seed,
        )
        if adopt:
            self.constants = constants
        return constants

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def stream(self, k: int | None = None) -> "StreamSession":
        """Open a buffer-tree-backed :class:`StreamSession` on a fresh AEM
        machine (usable directly or as a context manager).

        ``k`` is the §4.3 extra branching factor; the default is the
        Appendix-A ``n``-blind recipe (``n`` is unknown up front in a
        stream), clamped to the tree's feasible range.
        """
        if k is None:
            from .analysis.ktuning import choose_k

            k = choose_k(self.params)
            # the tree needs fanout kM/B >= 4; bump k on narrow machines
            while self.params.fanout(k) < 4:
                k += 1
        return StreamSession(self, k=k)


class StreamSession:
    """Incremental ingestion into a §4.3 :class:`BufferTree`, draining to
    sorted :class:`~repro.api.SortReport`\\ s.

    Records are pushed (and deleted — §4.3.1 general deletions) one at a
    time or in bulk; each record costs amortized
    ``O((1/B)(1 + log_{kM/B}(n/B)))`` block writes and ``k`` times that in
    reads (Theorem 4.10's buffer-tree terms).  ``flush()`` drains everything
    currently held into a sorted report billed with the block I/O incurred
    since the previous flush; ``close()`` performs a final flush and seals
    the session (also called by ``with engine.stream() as s:``, after which
    ``s.report`` holds the final report).

    Duplicate keys are legal: following the paper's §2 remark that "a
    position index can always be added to make keys unique", records enter
    the tree as ``(key, seq)`` pairs and are unwrapped on drain, so equal
    keys coexist and drain in arrival order.  ``delete(key)`` removes the
    most recently pushed live instance of ``key`` (raising ``KeyError`` if
    none is live); the per-key liveness index is in-memory session
    bookkeeping, free under the model like the priority queue's
    implicit-deletion pair list.
    """

    def __init__(self, engine: SortEngine, k: int = 1):
        self.engine = engine
        self.params = engine.params
        self.k = k
        self.machine = AEMachine(self.params)
        self.tree = BufferTree(self.machine, k=k)
        self.closed = False
        #: total records pushed / deleted over the session's lifetime
        self.pushed = 0
        self.deleted = 0
        #: reports of every drain (flushes and pop_mins), in order;
        #: ``report`` is the most recent one
        self.reports: list = []
        self.report = None
        self._live: dict = {}  # key -> live seqs (most recent last)
        self._reads_mark = 0
        self._writes_mark = 0
        self._ops_mark = 0  # tree ops billed by earlier drains
        self._reinserts = 0  # surplus records pop_min returned to the tree

    # ------------------------------------------------------------------ #
    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # don't mask an in-flight exception with a drain of a half-built tree
        if exc_type is None:
            self.close()
        else:
            self.closed = True

    def __len__(self) -> int:
        return self.tree.size

    def _require_open(self) -> None:
        if self.closed:
            raise RuntimeError("stream session is closed")

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def push(self, record) -> None:
        """Ingest one record (amortized buffer-tree insert)."""
        self._require_open()
        seq = self.tree.next_seq  # the tree's op counter doubles as the uid
        self.tree.insert((record, seq))
        self._live.setdefault(record, []).append(seq)
        self.pushed += 1

    def push_many(self, records: Iterable) -> None:
        """Ingest records in bulk (one amortized insert each)."""
        for rec in records:
            self.push(rec)

    def delete(self, key) -> None:
        """Remove the most recently pushed live instance of ``key``.

        Raises ``KeyError`` immediately when no instance is live (unlike raw
        :meth:`BufferTree.delete`, which defers to application time — the
        session's liveness index can afford to fail fast).
        """
        self._require_open()
        seqs = self._live.get(key)
        if not seqs:
            raise KeyError(f"delete of absent key {key!r}")
        seq = seqs.pop()
        if not seqs:
            del self._live[key]
        self.tree.delete((key, seq))
        self.deleted += 1

    # ------------------------------------------------------------------ #
    # draining
    # ------------------------------------------------------------------ #
    def flush(self):
        """Drain every record currently held into a sorted
        :class:`~repro.api.SortReport` and return it.

        The report's counters carry the block I/O incurred since the
        previous flush (ingestion + this drain), so its ``cost()`` is the
        stream's actual bill; ``extras`` records the tree's structural
        statistics and the Theorem 4.10 unit-constant prediction for every
        operation billed here (pushes *and* deletes).  The session stays
        open for further pushes.
        """
        self._require_open()
        return self._drain()

    def close(self):
        """Final flush (any remaining records — possibly none) and seal the
        session.  Returns the final report, also kept as ``self.report``."""
        if self.closed:
            return self.report
        report = self._drain()
        self.closed = True
        return report

    # ------------------------------------------------------------------ #
    # windowed/partial drains
    # ------------------------------------------------------------------ #
    def pop_min(self, m: int):
        """Extract the ``m`` smallest records currently held — without a
        full flush — and return a delta-billed
        :class:`~repro.api.SortReport` of just those records.

        Leaves are popped off the tree's left edge
        (:meth:`BufferTree.pop_leftmost_leaf`, the §4.3.3 refill move) until
        ``m`` records are in hand; the surplus from the last leaf is
        re-inserted (amortized buffer-tree inserts — the re-insertion I/O is
        billed to this report and counted in its prediction, so the bill
        stays honest).  The session stays open: later pushes, deletes,
        ``pop_min`` and ``flush`` calls all compose, and the delta-I/O
        accounting is identical to :meth:`flush` — each report carries
        exactly the block I/O incurred since the previous report.

        Fewer than ``m`` records may be returned when the session holds
        fewer; an empty session yields an empty report.
        """
        self._require_open()
        if m < 1:
            raise ValueError(f"pop_min needs m >= 1, got {m}")
        taken: list = []
        while len(taken) < m and self.tree.size > 0:
            leaf = self.tree.pop_leftmost_leaf()
            if leaf is None:
                break
            taken.extend(self.machine.scan(leaf))
        surplus = taken[m:]
        taken = taken[:m]
        # the last leaf rarely lands exactly on m: everything beyond goes
        # back into the tree as ordinary (key, seq) inserts, keeping their
        # original sequence numbers so arrival order survives the round trip
        for pair in surplus:
            self.tree.insert(pair)
        self._reinserts += len(surplus)
        # the extracted records leave the session's liveness index
        for key, seq in taken:
            seqs = self._live.get(key)
            if seqs is not None:
                try:
                    seqs.remove(seq)
                except ValueError:  # pragma: no cover - index out of sync
                    pass
                if not seqs:
                    del self._live[key]
        out = [key for key, _seq in taken]
        return self._delta_report(out, algorithm=f"stream-pop-min(k={self.k})")

    def _drain(self):
        # unwrap the (key, seq) uniquifying pairs (§2 position index)
        out = [key for key, _seq in self.tree.drain_stream()]
        self._live.clear()
        return self._delta_report(out, algorithm=f"stream-buffer-tree(k={self.k})")

    def _delta_report(self, out: list, algorithm: str):
        """Bill a drain (full flush or partial pop) with the block I/O
        incurred since the previous report, stamp the Theorem 4.10
        unit-constant prediction for the ops covered, and record it."""
        from .api import SortReport
        from .planner.cost_model import predict_stream_io

        counter = self.machine.counter
        delta = CostCounter(
            block_reads=counter.block_reads - self._reads_mark,
            block_writes=counter.block_writes - self._writes_mark,
        )
        self._reads_mark = counter.block_reads
        self._writes_mark = counter.block_writes
        # the prediction covers every operation billed in this report —
        # deletes are buffer-tree ops too (a delete-heavy session is
        # compared against the work it actually did, not just its
        # survivors), and so are pop_min's surplus re-insertions
        total_ops = self.pushed + self.deleted + self._reinserts
        ops = total_ops - self._ops_mark
        self._ops_mark = total_ops
        pred_reads, pred_writes = predict_stream_io(ops, self.params, self.k)
        report = SortReport(
            algorithm=algorithm,
            n=len(out),
            params=self.params,
            output=out,
            counter=delta,
            extras={
                "k": self.k,
                "pushed": self.pushed,
                "deleted": self.deleted,
                "reinserted": self._reinserts,
                **self.tree.io_stats(),
                "predicted_reads": pred_reads,
                "predicted_writes": pred_writes,
            },
            family="stream",
            granularity="block",
        )
        self.reports.append(report)
        self.report = report
        return report
