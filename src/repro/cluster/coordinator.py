"""The cluster coordinator: scatter-gather and routing over EngineServer hosts.

One :class:`ClusterCoordinator` owns a :class:`~repro.service.ServiceClient`
per host and speaks the existing serve line protocol — no new wire ops.  Two
traffic shapes:

* **Scatter-gather** (:meth:`ClusterCoordinator.sort`) for one huge job:
  sample splitters centrally from a strided prefix scan (the Theorem 4.5
  pivot-sampling structure lifted one level), partition into per-host
  shards, submit the shard sorts remotely in parallel, and k-way merge the
  sorted shards with the contracted ``shardmerge`` kernel — the merge I/O is
  billed through a real :class:`~repro.models.counters.CostCounter`, so the
  cluster-level :class:`~repro.api.SortReport` stays contract-honest (remote
  shard I/O rides along in ``extras``).
* **Load-aware routing** (:meth:`submit` / :meth:`result`) for many small
  jobs: each job goes to the least-loaded live host (local in-flight
  accounting plus polled ``stats()`` queue depth, TTL-cached).

Fault tolerance reuses :class:`~repro.service.WorkerDiedError` semantics at
host granularity: a dead host fails only its in-flight shards, which are
resubmitted on the least-loaded survivor within a bounded retry budget
(shard sorts are idempotent — the coordinator retains the shard data until
its result lands).  :meth:`warm` replays a :class:`~repro.planner.PlanCache`
snapshot's problem sizes as control-priority jobs on every host, warming the
remote plan caches through the existing ``submit``/``result`` ops.

Lock discipline: the coordinator lock guards only host bookkeeping (alive
flags, in-flight counts, counters, the stats cache).  Every wire call —
connect, submit, result, stats — happens strictly outside the lock; routing
decisions are computed under it, I/O runs outside it, outcomes are published
back under it (the same fork-outside/publish-under pattern as the
scheduler's respawn path).
"""

from __future__ import annotations

import bisect
import threading
import time
from dataclasses import dataclass, field

from ..analysis.locksan import wrap_lock
from ..core.shard_merge import shard_merge
from ..models.external_memory import AEMachine, MemoryGuard
from ..models.params import MachineParams
from ..planner.cost_model import plan_cluster_shards
from ..planner.sharding import WorkerDiedError
from ..service.backoff import backoff_delay
from ..service.scheduler import PRIORITY_CONTROL, QueueFullError
from ..service.server import ServiceClient, ServiceError

#: wire-level failures that mean "this host is gone" (vs a job-level error)
_HOST_DOWN = (ConnectionError, OSError)


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of one cluster: hosts plus coordinator knobs."""

    #: ``((host, port), ...)`` of the EngineServer fleet
    hosts: tuple[tuple[str, int], ...]
    #: resubmissions allowed per job when hosts die mid-flight
    retries: int = 2
    #: connect polls per host at coordinator construction
    connect_retries: int = 25
    connect_delay: float = 0.1
    #: socket timeout for every wire call (None = block)
    timeout: float | None = None
    #: splitter sample records per host (scatter planning)
    oversample: int = 32
    #: seconds a polled per-host stats() load stays fresh for routing
    stats_ttl: float = 0.25
    #: retry backoff: first delay and cap for the capped-exponential curve
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    #: per-request socket deadline for routed wire calls (None = block)
    request_timeout: float | None = None
    #: dead hosts re-enter service automatically when a probation-interval
    #: ping succeeds (set ``rejoin=False`` for permanent funerals)
    rejoin: bool = True
    rejoin_interval: float = 0.5

    def __post_init__(self):
        if not self.hosts:
            raise ValueError("ClusterSpec needs at least one host")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ValueError(
                "need 0 < backoff_base <= backoff_cap, got "
                f"{self.backoff_base}/{self.backoff_cap}"
            )
        if self.rejoin_interval <= 0:
            raise ValueError(
                f"rejoin_interval must be > 0, got {self.rejoin_interval}"
            )


@dataclass
class ClusterTicket:
    """Coordinator-side handle for one routed job.

    Retains the job's input so a host death can resubmit it idempotently on
    a survivor (the remote sort has no side effects beyond its ticket).
    """

    host_index: int
    ticket: int
    n: int
    data: list = field(repr=False)
    priority: float = 0
    kwargs: dict = field(default_factory=dict, repr=False)
    attempts: int = 0


class ClusterCoordinator:
    """Scatter-gather and load-aware routing over N EngineServer hosts.

    ``spec`` is a :class:`ClusterSpec` (or a bare iterable of ``(host,
    port)`` pairs); ``params`` is the AEM machine the coordinator's merge is
    billed on (the remote hosts run their own configured machines — point
    them at the same ``M:B:omega`` for meaningful aggregate counters).
    """

    def __init__(self, spec, params: MachineParams):
        if not isinstance(spec, ClusterSpec):
            spec = ClusterSpec(hosts=tuple((str(h), int(p)) for h, p in spec))
        if not isinstance(params, MachineParams):
            raise TypeError(f"params must be MachineParams, got {type(params).__name__}")
        self.spec = spec
        self.params = params
        self._clients = [
            ServiceClient(
                host,
                port,
                retries=spec.connect_retries,
                retry_delay=spec.connect_delay,
                timeout=spec.timeout,
                request_timeout=spec.request_timeout,
            )
            for host, port in spec.hosts
        ]
        self._lock = wrap_lock(threading.Lock(), "ClusterCoordinator._lock")
        self._alive = [True] * len(self._clients)
        self._inflight = [0] * len(self._clients)
        self._stats_cache: dict[int, tuple[float, int]] = {}
        #: rejoin probation: earliest monotonic stamp to re-probe each dead
        #: host, plus an in-progress guard so only one thread probes a host
        self._next_probe: dict[int, float] = {}
        self._probing: set[int] = set()
        #: distinct warm sizes replayed so far — a rejoining host's plan
        #: cache is re-warmed from these
        self._warm_sizes: set[int] = set()
        self._retries = 0
        self._rebalances = 0
        self._scatter_jobs = 0
        self._routed_jobs = 0
        self._rejoins = 0
        self._closed = False
        #: test seam: called between scatter and gather (e.g. to kill a host)
        self._fault_hook = None

    # ------------------------------------------------------------------ #
    # host bookkeeping (lock-guarded; no wire I/O under the lock)
    # ------------------------------------------------------------------ #
    def live_hosts(self) -> list[int]:
        """Indices of hosts still believed alive."""
        with self._lock:
            return [i for i, alive in enumerate(self._alive) if alive]

    def _mark_dead(self, index: int) -> None:
        now = time.monotonic()
        with self._lock:
            was_alive = self._alive[index]
            self._alive[index] = False
            self._inflight[index] = 0
            self._stats_cache.pop(index, None)
            if self.spec.rejoin:
                self._next_probe[index] = now + self.spec.rejoin_interval
        if was_alive:
            try:
                self._clients[index].close()
            except OSError:  # pragma: no cover - already torn down
                pass

    # ------------------------------------------------------------------ #
    # host auto-rejoin (probation ping, then re-warm and re-admit)
    # ------------------------------------------------------------------ #
    def _maybe_rejoin(self) -> None:
        """Probe dead hosts whose probation expired; re-admit responders.

        Piggybacked on routing and stats traffic rather than run on a timer
        thread.  Due probes are *claimed* under the lock (so concurrent
        callers never double-probe one host), then the ping, the client
        rebuild and the cache re-warm all run outside it — the same
        fork-outside/publish-under pattern as every other wire call here.
        """
        if not self.spec.rejoin:
            return
        now = time.monotonic()
        with self._lock:
            if self._closed:
                return
            due = [
                i for i, at in self._next_probe.items()
                if now >= at and not self._alive[i] and i not in self._probing
            ]
            self._probing.update(due)
        for index in due:
            self._probe(index)

    def _probe(self, index: int) -> None:
        """One probation ping against a dead host (caller claimed it)."""
        host, port = self.spec.hosts[index]
        client: ServiceClient | None = None
        try:
            client = ServiceClient(
                host,
                port,
                timeout=self.spec.timeout,
                request_timeout=self.spec.request_timeout,
            )
            client.ping()
        except (*_HOST_DOWN, ServiceError):
            if client is not None:
                try:
                    client.close()
                except OSError:  # pragma: no cover - already torn down
                    pass
            with self._lock:  # still dead: next probation window
                self._next_probe[index] = time.monotonic() + self.spec.rejoin_interval
                self._probing.discard(index)
            return
        with self._lock:
            warm_sizes = sorted(self._warm_sizes)
        self._rewarm_client(client, warm_sizes)
        old = self._clients[index]
        with self._lock:
            self._clients[index] = client
            self._alive[index] = True
            self._next_probe.pop(index, None)
            self._probing.discard(index)
            self._rejoins += 1
        try:
            old.close()
        except OSError:  # pragma: no cover - already torn down
            pass

    @staticmethod
    def _rewarm_client(client: ServiceClient, sizes) -> None:
        """Re-warm one fresh host's plan cache before it takes real traffic
        (a respawned server boots cold; rejoin must not reintroduce
        first-query planning latency)."""
        handles = []
        for n in sizes:
            try:
                handles.append(
                    client.submit(
                        list(range(n)), PRIORITY_CONTROL, label=f"rewarm(n={n})"
                    )
                )
            except (*_HOST_DOWN, ServiceError):  # pragma: no cover - benign
                return
        for ticket in handles:
            try:
                client.result(ticket)
            except (*_HOST_DOWN, ServiceError):  # pragma: no cover - benign
                return

    def _polled_load(self, index: int) -> float:
        """The host's queued depth from ``stats()``, TTL-cached."""
        now = time.monotonic()
        with self._lock:
            cached = self._stats_cache.get(index)
        if cached is not None and now - cached[0] < self.spec.stats_ttl:
            return cached[1]
        try:
            stats = self._clients[index].stats()
        except _HOST_DOWN:
            self._mark_dead(index)
            return float("inf")
        load = int(stats.get("queued", 0))
        with self._lock:
            self._stats_cache[index] = (now, load)
        return load

    def _pick_host(self, exclude=()) -> int:
        """Least-loaded live host: local in-flight + polled queue depth."""
        self._maybe_rejoin()
        live = [i for i in self.live_hosts() if i not in exclude]
        if not live:
            raise WorkerDiedError(
                "no live cluster host left to take the job "
                f"({len(self._clients)} configured)"
            )
        loads = {i: self._polled_load(i) for i in live}
        with self._lock:
            return min(live, key=lambda i: (self._inflight[i] + loads[i], i))

    # ------------------------------------------------------------------ #
    # load-aware routing of many small jobs
    # ------------------------------------------------------------------ #
    def submit(self, data, priority: float = 0, **kwargs) -> ClusterTicket:
        """Route one job to the least-loaded live host; return its handle."""
        handle = self._submit_once(list(data), priority, dict(kwargs))
        with self._lock:
            self._routed_jobs += 1
        return handle

    def _submit_once(self, data, priority, kwargs, exclude=(), prefer=None) -> ClusterTicket:
        tried = set(exclude)
        shedding: list[float] = []
        last: Exception | None = None
        for _ in range(len(self._clients)):
            if prefer is not None and prefer not in tried:
                index, prefer = prefer, None
            else:
                try:
                    index = self._pick_host(exclude=tried)
                except WorkerDiedError:
                    if shedding:  # every reachable host shed us
                        break
                    raise
            try:
                ticket = self._clients[index].submit(data, priority, **kwargs)
            except _HOST_DOWN as exc:
                last = exc
                tried.add(index)
                self._mark_dead(index)
                with self._lock:
                    self._retries += 1
                continue
            except ServiceError as exc:
                if not exc.overloaded:
                    raise
                # the host is alive but shedding load: skip it this round
                # and propagate its back-pressure hint if nobody admits us
                last = exc
                tried.add(index)
                shedding.append(exc.retry_after or 0.05)
                continue
            with self._lock:
                self._inflight[index] += 1
            return ClusterTicket(index, ticket, len(data), data, priority, kwargs)
        if shedding:
            raise QueueFullError(
                f"all {len(shedding)} reachable host(s) are overloaded: {last}",
                policy="reject",
                retry_after=min(shedding),
            )
        raise WorkerDiedError(f"no live host accepted the job: {last}")

    def result(self, handle: ClusterTicket, timeout: float | None = None) -> dict:
        """Block for one routed job's result record (the serve ``result``
        reply: ``output`` / ``reads`` / ``writes`` / ``cost`` …).

        A host death (or a remote worker death) fails only this in-flight
        attempt: the retained input is resubmitted on the least-loaded
        survivor, bounded by ``spec.retries`` per job, after which the
        failure surfaces as :class:`WorkerDiedError`.
        """
        while True:
            try:
                record = self._clients[handle.host_index].result(handle.ticket, timeout)
            except _HOST_DOWN as exc:
                self._mark_dead(handle.host_index)
                self._retry(handle, exclude={handle.host_index}, cause=exc)
                continue
            except ServiceError as exc:
                with self._lock:
                    if self._inflight[handle.host_index] > 0:
                        self._inflight[handle.host_index] -= 1
                if exc.reply.get("kind") != WorkerDiedError.__name__:
                    raise
                # the remote pool lost its worker mid-job: same semantics
                # as a dead host, minus the host funeral
                self._retry(handle, exclude=(), cause=exc)
                continue
            with self._lock:
                if self._inflight[handle.host_index] > 0:
                    self._inflight[handle.host_index] -= 1
            return record

    def _retry(self, handle: ClusterTicket, exclude, cause: Exception) -> None:
        """Resubmit a failed handle in place (or give up loudly)."""
        with self._lock:
            self._retries += 1
            self._rebalances += 1
        if handle.attempts >= self.spec.retries:
            raise WorkerDiedError(
                f"job of n={handle.n} failed {handle.attempts + 1} time(s); "
                f"retry budget {self.spec.retries} exhausted: {cause}"
            ) from cause
        # capped exponential backoff with jitter before the resubmit: a
        # fleet-wide hiccup must not turn every coordinator into a
        # synchronized retry stampede (sleep taken outside the lock)
        time.sleep(
            backoff_delay(
                handle.attempts,
                base=self.spec.backoff_base,
                cap=self.spec.backoff_cap,
            )
        )
        replacement = self._submit_once(
            handle.data, handle.priority, handle.kwargs, exclude=exclude
        )
        handle.host_index = replacement.host_index
        handle.ticket = replacement.ticket
        handle.attempts += 1

    def gather(self, handles, timeout: float | None = None) -> list[dict]:
        return [self.result(h, timeout) for h in handles]

    # ------------------------------------------------------------------ #
    # scatter-gather for one huge job
    # ------------------------------------------------------------------ #
    def sort(
        self,
        data,
        *,
        algorithm: str | None = None,
        k: int | None = None,
        check_sorted: bool = False,
        label: str = "scatter",
    ):
        """Sort one large input across every live host and merge the shards.

        Returns a cluster-level :class:`~repro.api.SortReport` whose counter
        carries exactly the coordinator's ``shardmerge`` I/O (certified
        against the Section 4.1 contract); the remote shard sorts' aggregate
        reads/writes/cost ride in ``extras`` alongside the splitters, the
        realized shard sizes and the :class:`ClusterShardPlan` prediction.
        """
        from ..api import SortReport

        data = list(data)
        n = len(data)
        live = self.live_hosts()
        if not live:
            raise WorkerDiedError("no live cluster hosts to scatter over")
        with self._lock:
            retries_before = self._retries
        plan = plan_cluster_shards(
            n, len(live), self.params, oversample=self.spec.oversample
        )
        splitters = self._splitters(data, plan)
        shards: list[list] = [[] for _ in range(len(live))]
        for rec in data:
            shards[bisect.bisect_right(splitters, rec)].append(rec)

        # scatter: one shard per live host, preferring its planned host but
        # falling back through _submit_once's routing when one is dead
        handles = [
            self._submit_once(
                shard,
                0,
                {
                    "algorithm": algorithm,
                    "k": k,
                    "label": f"{label}/shard{i}",
                    "check_sorted": check_sorted,
                },
                prefer=host_index,
            )
            for i, (host_index, shard) in enumerate(zip(live, shards))
        ]
        with self._lock:
            self._scatter_jobs += 1

        if self._fault_hook is not None:
            self._fault_hook(self)

        # gather: servers sort concurrently; a host death mid-gather
        # resubmits only that host's shard on a survivor
        records = self.gather(handles)

        # merge the sorted shards on a real AEM machine: shards load free
        # (their I/O was billed remotely), the k-way merge is billed here
        machine = AEMachine(self.params)
        arrays = [
            machine.from_list(rec["output"], name=f"shard{i}")
            for i, rec in enumerate(records)
        ]
        guard = MemoryGuard()
        merged = shard_merge(machine, arrays, guard)
        with self._lock:
            scatter_retries = self._retries - retries_before
        report = SortReport(
            algorithm=f"cluster-scatter(hosts={len(live)})+shardmerge",
            n=n,
            params=self.params,
            output=merged.peek_list(),
            counter=machine.counter,
            memory_high_water=guard.high_water,
            extras={
                "hosts": len(live),
                "splitters": splitters,
                "shard_sizes": [len(s) for s in shards],
                "shard_tickets": [(h.host_index, h.ticket) for h in handles],
                "remote_reads": sum(r["reads"] for r in records),
                "remote_writes": sum(r["writes"] for r in records),
                "remote_cost": sum(r["cost"] for r in records),
                # worker-measured per-shard timings: cpu is the honest
                # compute figure when hosts timeshare cores (scale-out
                # benches reconstruct the data-parallel critical path
                # from it), wall is the raw figure
                "shard_walls": [r.get("wall_seconds", 0.0) for r in records],
                "shard_cpu_seconds": [
                    r.get("cpu_seconds", 0.0) for r in records
                ],
                "retries": scatter_retries,
                "plan": plan.as_dict(),
            },
            family="cluster",
            granularity="block",
        )
        if check_sorted and not report.is_sorted():
            raise AssertionError("cluster scatter-gather produced unsorted output")
        return report

    def _splitters(self, data, plan) -> list:
        """``hosts - 1`` splitters at even quantiles of a strided sample.

        One pass over the input in scan order, keeping every ``step``-th
        record — Theorem 4.5's pivot sampling lifted to the host level.
        Duplicate-heavy inputs may repeat a splitter; equal keys then all
        land in one shard (``bisect_right``) and some shards come back
        empty, which the merge kernel skips for free.
        """
        if plan.hosts <= 1 or plan.n == 0:
            return []
        step = max(1, plan.n // plan.sample_size)
        sample = sorted(data[::step])
        return [
            sample[min(len(sample) - 1, (i * len(sample)) // plan.hosts)]
            for i in range(1, plan.hosts)
        ]

    # ------------------------------------------------------------------ #
    # cache warming and stats
    # ------------------------------------------------------------------ #
    def warm(self, source) -> int:
        """Warm every live host's plan cache from a local cache snapshot.

        ``source`` is a :class:`~repro.planner.PlanCache` (or an iterable of
        its ``(key, plan)`` snapshot entries); the distinct problem sizes
        are replayed as control-priority sort jobs on every live host — the
        warming rides the existing ``submit``/``result`` wire ops, no new
        protocol.  Returns the number of distinct sizes replayed.
        """
        entries = source.snapshot() if hasattr(source, "snapshot") else list(source)
        sizes = sorted({key[0] for key, _plan in entries})
        with self._lock:
            self._warm_sizes.update(sizes)  # rejoining hosts re-warm from these
        handles = []
        for n in sizes:
            probe = list(range(n))
            for index in self.live_hosts():
                try:
                    ticket = self._clients[index].submit(
                        probe, PRIORITY_CONTROL, label=f"warm(n={n})"
                    )
                except _HOST_DOWN:
                    self._mark_dead(index)
                    continue
                handles.append((index, ticket))
        for index, ticket in handles:
            try:
                self._clients[index].result(ticket)
            except _HOST_DOWN:
                self._mark_dead(index)
            except ServiceError:  # pragma: no cover - warm probes are benign
                pass
        return len(sizes)

    def stats(self) -> dict:
        """Per-host polled stats plus cluster-level aggregates."""
        self._maybe_rejoin()
        per_host = []
        records_per_sec = 0.0
        completed = 0
        for index, (host, port) in enumerate(self.spec.hosts):
            with self._lock:
                alive = self._alive[index]
                inflight = self._inflight[index]
            entry: dict = {
                "host": host,
                "port": port,
                "alive": alive,
                "in_flight": inflight,
            }
            if alive:
                try:
                    remote = self._clients[index].stats()
                except _HOST_DOWN:
                    self._mark_dead(index)
                    entry["alive"] = False
                else:
                    entry.update(remote)
                    records_per_sec += float(remote.get("records_per_sec", 0.0))
                    completed += int(remote.get("completed", 0))
            per_host.append(entry)
        with self._lock:
            aggregate = {
                "hosts": len(self._clients),
                "live_hosts": sum(self._alive),
                "records_per_sec": records_per_sec,
                "completed": completed,
                "in_flight": sum(self._inflight),
                "retries": self._retries,
                "rebalances": self._rebalances,
                "scatter_jobs": self._scatter_jobs,
                "routed_jobs": self._routed_jobs,
                "rejoins": self._rejoins,
            }
        return {"aggregate": aggregate, "per_host": per_host}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Drain-shutdown the fleet: ask every live host to stop listening
        (in-flight work drains server-side), then close the connections."""
        for index in self.live_hosts():
            try:
                self._clients[index].shutdown_server()
            except (*_HOST_DOWN, ServiceError):  # pragma: no cover - racing death
                pass
        self.close()

    def close(self) -> None:
        """Close every client connection (idempotent; servers keep running)."""
        with self._lock:
            already = self._closed
            self._closed = True
        if already:
            return
        for client in self._clients:
            try:
                client.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
