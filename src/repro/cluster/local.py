"""Spawn a local EngineServer fleet as subprocesses (CLI, tests, benches).

Each server is a real ``python -m repro serve`` process bound to an
ephemeral port; the port is read back from the server's startup banner, so
there is no bind race.  A child that dies (or stalls) before printing the
banner fails the spawn *fast* with its captured stderr in the error — a
bad flag or an import crash must not hang the caller on a pipe read.
:meth:`LocalCluster.kill` hard-kills one server (the fault-tolerance
tests' host funeral) and :meth:`LocalCluster.restart` respawns it on the
same port (the rejoin drills' host resurrection);
:meth:`LocalCluster.shutdown` tears the fleet down.  Use :meth:`connect`
for a ready :class:`~repro.cluster.ClusterCoordinator` over the fleet.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading

from ..models.params import MachineParams
from .coordinator import ClusterCoordinator, ClusterSpec

_BANNER = re.compile(r"serving sort jobs on ([\d.]+):(\d+)")

#: seconds a child gets to print its startup banner before the spawn fails
BANNER_TIMEOUT = 30.0


def _src_pythonpath() -> str:
    """PYTHONPATH entry exposing this repo's ``repro`` package to children."""
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.dirname(package_dir)


def _read_banner(proc: subprocess.Popen, timeout: float) -> str | None:
    """First stdout line of ``proc``, or ``None`` on timeout/EOF.

    The read runs on a daemon thread so a child that never writes (hung
    import, wedged interpreter) cannot hang the spawning caller — the
    caller kills the child and reports instead.
    """
    box: list[str] = []

    def _read() -> None:
        line = proc.stdout.readline()
        if line:
            box.append(line)

    reader = threading.Thread(target=_read, daemon=True, name="banner-read")
    reader.start()
    reader.join(timeout=timeout)
    return box[0] if box else None


class LocalCluster:
    """``servers`` local EngineServer subprocesses on one machine.

    All servers run the same ``params`` machine (so cluster-level counter
    aggregates are meaningful) with ``workers`` pool threads/processes
    each.  Context-manager friendly: ``with LocalCluster(3) as fleet:``.
    """

    def __init__(
        self,
        servers: int = 2,
        *,
        workers: int | None = None,
        executor: str = "thread",
        params: MachineParams | None = None,
        python: str | None = None,
        max_queue: int | None = None,
        admission: str = "reject",
        max_client_tickets: int | None = None,
        banner_timeout: float = BANNER_TIMEOUT,
    ):
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self.params = params if params is not None else MachineParams(M=64, B=8, omega=8)
        self.procs: list[subprocess.Popen] = []
        self.addresses: list[tuple[str, int]] = []
        self._banner_timeout = banner_timeout
        self._env = dict(os.environ)
        src = _src_pythonpath()
        self._env["PYTHONPATH"] = (
            src + os.pathsep + self._env["PYTHONPATH"]
            if self._env.get("PYTHONPATH")
            else src
        )
        cmd = [
            python or sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--executor",
            executor,
            "--M",
            str(self.params.M),
            "--B",
            str(self.params.B),
            "--omega",
            str(self.params.omega),
        ]
        if workers is not None:
            cmd += ["--workers", str(workers)]
        if max_queue is not None:
            cmd += ["--max-queue", str(max_queue), "--admission", admission]
        if max_client_tickets is not None:
            cmd += ["--max-client-tickets", str(max_client_tickets)]
        self._cmd = cmd
        try:
            for _ in range(servers):
                proc, address = self._spawn(cmd)
                self.procs.append(proc)
                self.addresses.append(address)
        except BaseException:
            self.shutdown()
            raise

    def _spawn(self, cmd) -> tuple[subprocess.Popen, tuple[str, int]]:
        """Launch one server and read its banner, failing fast and loudly.

        stderr is captured separately from the banner pipe so a child that
        crashes before binding reports its actual traceback, not a cryptic
        empty-banner error.
        """
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=self._env,
        )
        banner = _read_banner(proc, self._banner_timeout)
        match = _BANNER.search(banner) if banner is not None else None
        if match is None:
            proc.kill()
            try:
                _, stderr = proc.communicate(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                stderr = ""
            detail = (stderr or "").strip()
            why = (
                f"no banner within {self._banner_timeout}s"
                if banner is None
                else f"bad banner {banner.strip()!r}"
            )
            raise RuntimeError(
                f"local sort server failed to start ({why})"
                + (f"; stderr:\n{detail}" if detail else "")
            )
        return proc, (match.group(1), int(match.group(2)))

    # ------------------------------------------------------------------ #
    def spec(self, **overrides) -> ClusterSpec:
        return ClusterSpec(hosts=tuple(self.addresses), **overrides)

    def connect(self, **overrides) -> ClusterCoordinator:
        """A coordinator over the fleet (caller closes it)."""
        return ClusterCoordinator(self.spec(**overrides), self.params)

    def kill(self, index: int) -> None:
        """Hard-kill one server (SIGKILL) — the host-death fault injection."""
        proc = self.procs[index]
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    def restart(self, index: int) -> tuple[str, int]:
        """Respawn a killed server on its original port (host resurrection
        for the rejoin drills; coordinators then re-admit it on the next
        successful probation ping).  Returns the (unchanged) address."""
        if self.procs[index].poll() is None:
            raise RuntimeError(f"server {index} is still running; kill it first")
        host, port = self.addresses[index]
        cmd = list(self._cmd)
        cmd[cmd.index("--port") + 1] = str(port)
        proc, address = self._spawn(cmd)
        self.procs[index] = proc
        self.addresses[index] = address
        return address

    def alive(self) -> list[int]:
        return [i for i, proc in enumerate(self.procs) if proc.poll() is None]

    def wait(self, timeout: float = 10.0) -> None:
        """Wait for every server process to exit (after a drain-shutdown)."""
        for proc in self.procs:
            proc.wait(timeout=timeout)

    def shutdown(self) -> None:
        """Terminate any still-running servers and reap them (idempotent)."""
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                proc.kill()
                proc.wait(timeout=10)
            for stream in (proc.stdout, proc.stderr):
                if stream is not None:
                    stream.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
