"""Spawn a local EngineServer fleet as subprocesses (CLI, tests, benches).

Each server is a real ``python -m repro serve`` process bound to an
ephemeral port; the port is read back from the server's startup banner, so
there is no bind race.  :meth:`LocalCluster.kill` hard-kills one server
(the fault-tolerance tests' host funeral); :meth:`LocalCluster.shutdown`
tears the fleet down.  Use :meth:`connect` for a ready
:class:`~repro.cluster.ClusterCoordinator` over the fleet.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

from ..models.params import MachineParams
from .coordinator import ClusterCoordinator, ClusterSpec

_BANNER = re.compile(r"serving sort jobs on ([\d.]+):(\d+)")


def _src_pythonpath() -> str:
    """PYTHONPATH entry exposing this repo's ``repro`` package to children."""
    package_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.dirname(package_dir)


class LocalCluster:
    """``servers`` local EngineServer subprocesses on one machine.

    All servers run the same ``params`` machine (so cluster-level counter
    aggregates are meaningful) with ``workers`` pool threads/processes
    each.  Context-manager friendly: ``with LocalCluster(3) as fleet:``.
    """

    def __init__(
        self,
        servers: int = 2,
        *,
        workers: int | None = None,
        executor: str = "thread",
        params: MachineParams | None = None,
        python: str | None = None,
    ):
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self.params = params if params is not None else MachineParams(M=64, B=8, omega=8)
        self.procs: list[subprocess.Popen] = []
        self.addresses: list[tuple[str, int]] = []
        env = dict(os.environ)
        src = _src_pythonpath()
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
        )
        cmd = [
            python or sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--executor",
            executor,
            "--M",
            str(self.params.M),
            "--B",
            str(self.params.B),
            "--omega",
            str(self.params.omega),
        ]
        if workers is not None:
            cmd += ["--workers", str(workers)]
        try:
            for _ in range(servers):
                proc = subprocess.Popen(
                    cmd,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.STDOUT,
                    text=True,
                    env=env,
                )
                self.procs.append(proc)
                banner = proc.stdout.readline()
                match = _BANNER.search(banner)
                if match is None:
                    proc.kill()
                    raise RuntimeError(
                        f"local sort server failed to start: {banner.strip()!r}"
                    )
                self.addresses.append((match.group(1), int(match.group(2))))
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------ #
    def spec(self, **overrides) -> ClusterSpec:
        return ClusterSpec(hosts=tuple(self.addresses), **overrides)

    def connect(self, **overrides) -> ClusterCoordinator:
        """A coordinator over the fleet (caller closes it)."""
        return ClusterCoordinator(self.spec(**overrides), self.params)

    def kill(self, index: int) -> None:
        """Hard-kill one server (SIGKILL) — the host-death fault injection."""
        proc = self.procs[index]
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    def alive(self) -> list[int]:
        return [i for i, proc in enumerate(self.procs) if proc.poll() is None]

    def wait(self, timeout: float = 10.0) -> None:
        """Wait for every server process to exit (after a drain-shutdown)."""
        for proc in self.procs:
            proc.wait(timeout=timeout)

    def shutdown(self) -> None:
        """Terminate any still-running servers and reap them (idempotent)."""
        for proc in self.procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
                proc.kill()
                proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
