"""Distributed sort cluster: coordinator-led scatter-gather over EngineServer
hosts.

The service layer made one engine a long-running server
(``python -m repro serve``); this package scales that out.  A
:class:`ClusterCoordinator` owns one :class:`~repro.service.ServiceClient`
per host and speaks only the existing newline-delimited-JSON wire ops —
``submit`` / ``result`` / ``stats`` / ``shutdown`` — so any fleet of plain
serve processes is already a cluster:

* :meth:`ClusterCoordinator.sort` — scatter-gather one huge job: sample
  splitters centrally (Theorem 4.5's structure one level up), scatter
  per-host shards, merge the sorted shards through the contracted
  ``shardmerge`` kernel with the merge I/O billed on a real cost counter;
* :meth:`ClusterCoordinator.submit` / ``result`` — route many small jobs to
  the least-loaded host, with host-death retries bounded per job
  (:class:`~repro.service.WorkerDiedError` semantics at host granularity);
* :meth:`ClusterCoordinator.warm` — replay a local
  :class:`~repro.planner.PlanCache` snapshot's sizes as control-priority
  jobs so every host plans hot;
* :class:`LocalCluster` — spawn N real serve subprocesses on this machine
  (the ``python -m repro cluster`` CLI, the fault-injection tests and the
  scale-out bench all build on it).

``SortEngine.cluster(hosts)`` is the engine-level entry point, symmetric
with ``engine.service()``.
"""

from .coordinator import ClusterCoordinator, ClusterSpec, ClusterTicket
from .local import LocalCluster

__all__ = [
    "ClusterCoordinator",
    "ClusterSpec",
    "ClusterTicket",
    "LocalCluster",
]
