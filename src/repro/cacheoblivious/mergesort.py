"""Cache-oblivious mergesort (the sample-sorting subroutine of §5.1).

Classic halving recursion with the :func:`~repro.cacheoblivious.kernels.co_merge`
scan-merge: ``O((n/B) log_2 (n/M))`` misses, cache-obliviously.  §5.1 uses it
to sort the ``n / log n`` samples ("these n/log n samples are sorted using a
cache-oblivious mergesort"), where its log factor is absorbed by the sample
being a log-factor smaller than the input.
"""

from __future__ import annotations

from ..models.ideal_cache import CacheSim
from .kernels import co_merge, co_scan_copy

#: below this size, read-sort-write directly (the O(1)-size base case)
_BASE = 16


def co_mergesort(cache: CacheSim, arr) -> None:
    """Sort ``arr`` (a SimArray or view) in place, cache-obliviously."""
    n = len(arr)
    if n <= 1:
        return
    scratch = cache.array(n, name="ms-scratch")
    _sort(arr, scratch)


def _sort(arr, scratch) -> None:
    """Sort ``arr`` in place using ``scratch`` (same length) for merges."""
    n = len(arr)
    if n <= _BASE:
        vals = sorted(arr[i] for i in range(n))
        for i, v in enumerate(vals):
            arr[i] = v
        return
    mid = n // 2
    left, right = arr.view(0, mid), arr.view(mid, n - mid)
    _sort(left, scratch.view(0, mid))
    _sort(right, scratch.view(mid, n - mid))
    co_merge(left, right, scratch.view(0, n))
    co_scan_copy(scratch.view(0, n), arr)
