"""Primitive cache-oblivious kernels: scans and merges.

Sequential scans are trivially cache-oblivious (``O(n/B)`` misses); a two-way
merge is a pair of synchronised scans.  These are the building blocks the §5
sort uses ("prefix sums and mergesort as subroutines ... described in [9]").
"""

from __future__ import annotations

from ..models.ideal_cache import bulk_copy


def co_scan_copy(src, dst) -> None:
    """Copy ``src`` into ``dst`` with two synchronised scans: O(n/B) misses.

    Sim arrays take the block-granular bulk path (identical access sequence
    and charges, batched per block span); anything else falls back to the
    per-element loop.
    """
    if len(src) != len(dst):
        raise ValueError(f"length mismatch: {len(src)} vs {len(dst)}")
    if bulk_copy(src, dst):
        return
    for i in range(len(src)):
        dst[i] = src[i]


def co_merge(a, b, out) -> None:
    """Merge two sorted arrays into ``out``: O((|a|+|b|)/B) misses."""
    na, nb = len(a), len(b)
    if len(out) != na + nb:
        raise ValueError("output length must be |a| + |b|")
    i = j = k = 0
    if na and nb:
        va = a[i]
        vb = b[j]
        while True:
            if va <= vb:
                out[k] = va
                k += 1
                i += 1
                if i == na:
                    break
                va = a[i]
            else:
                out[k] = vb
                k += 1
                j += 1
                if j == nb:
                    break
                vb = b[j]
    while i < na:
        out[k] = a[i]
        i += 1
        k += 1
    while j < nb:
        out[k] = b[j]
        j += 1
        k += 1


def co_prefix_sum(arr) -> int:
    """In-place exclusive prefix sum by linear scan; returns the total.

    (The PRAM version is the classic O(log n)-depth tree; sequentially — the
    order the Ideal-Cache model analyses — a scan has identical I/O.)
    """
    total = 0
    for i in range(len(arr)):
        v = arr[i]
        arr[i] = total
        total += v
    return total
