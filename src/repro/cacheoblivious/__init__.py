"""Cache-oblivious kernels and the §5 algorithms (sort, FFT, matmul).

Everything here runs against :class:`~repro.models.ideal_cache.SimArray`
arrays: algorithms never see ``M`` or ``B``; the cache simulator measures
their miss/write-back counts under the Asymmetric Ideal-Cache model.
"""

from .fft import brute_force_dft, co_fft, co_fft_asymmetric
from .kernels import co_merge, co_scan_copy
from .matmul import Matrix, co_matmul_asymmetric, co_matmul_classic, em_blocked_matmul
from .mergesort import co_mergesort
from .transpose import bucket_transpose, co_transpose

__all__ = [
    "Matrix",
    "brute_force_dft",
    "bucket_transpose",
    "co_fft",
    "co_fft_asymmetric",
    "co_matmul_asymmetric",
    "co_matmul_classic",
    "co_merge",
    "co_mergesort",
    "co_scan_copy",
    "co_transpose",
    "em_blocked_matmul",
]
