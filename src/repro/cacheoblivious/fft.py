"""§5.2: cache-oblivious FFT, standard and write-efficient variants.

Both variants are Cooley-Tukey factor decompositions executed with
cache-oblivious transposes:

* :func:`co_fft` — the classic [20] recursion: view the input as a
  ``sqrt(n) x sqrt(n)`` matrix; transpose, FFT rows, twiddle, transpose, FFT
  rows, transpose.  ``O((n/B) log_M n)`` reads *and* writes.
* :func:`co_fft_asymmetric` — the paper's variant: view the input as a
  ``(omega sqrt(n/omega)) x sqrt(n/omega)`` matrix; the long row DFTs are
  themselves decomposed as ``omega x sqrt(n/omega)`` with the omega-point
  column DFTs computed **brute force** (omega reads + 1 write per value).
  This wastes an ``omega`` factor in reads to halve the number of recursion
  levels on the write side:

      reads  = O((omega n / B) log_{omega M}(omega n)),
      writes = O((n / B) log_{omega M}(omega n)).

Derivation used throughout (``n = n1 * n2``, input index ``j = j1*n2 + j2``,
output index ``k = k2*n1 + k1``)::

    X[k2*n1 + k1] = sum_{j2} w_{n2}^{j2 k2} ( w_n^{j2 k1}
                       sum_{j1} x[j1*n2 + j2] w_{n1}^{j1 k1} )

i.e. transpose -> length-``n1`` DFTs on rows -> twiddle by ``w_n^{j2 k1}`` ->
transpose -> length-``n2`` DFTs on rows -> transpose to natural order.

All sizes (and ``omega``) must be powers of two, as the paper assumes.
"""

from __future__ import annotations

import cmath
import math

from ..models.ideal_cache import CacheSim
from .kernels import co_scan_copy
from .transpose import co_transpose

#: direct-DFT base-case size
_BASE = 8


def _is_pow2(x: int) -> bool:
    return x >= 1 and (x & (x - 1)) == 0


def brute_force_dft(cache: CacheSim, row) -> None:
    """In-place direct DFT of a (short) row: ``L`` reads per output value.

    Charges ``L^2`` reads and ``L`` writes for length ``L`` — the counts of
    the paper's step 2(b)i (which writes each value to a separate row; we
    buffer the ``L`` outputs in registers instead, with identical transfer
    counts).
    """
    L = len(row)
    out = []
    for k in range(L):
        acc = 0j
        for j in range(L):
            acc += row[j] * cmath.exp(-2j * cmath.pi * j * k / L)
        out.append(acc)
    for k in range(L):
        row[k] = out[k]


def _factor_step(
    cache: CacheSim, x, n1: int, n2: int, fft_n1, fft_n2, *, fused: bool = False
) -> None:
    """One Cooley-Tukey factor step on contiguous ``x`` of length ``n1*n2``.

    ``fft_n1`` / ``fft_n2`` transform a contiguous row view in place.

    ``fused=True`` applies the improvement §5.2 sketches ("the transposes
    ... can be merged"): the twiddle multiplication is folded into the
    middle transpose instead of a separate read+write pass over the array,
    saving one full sweep of reads *and* writes per recursion level.  The
    default reproduces the as-described algorithm.
    """
    n = n1 * n2
    t = cache.array(n, name="fft-scratch")
    co_transpose(x, t, n1, n2)  # t: n2 x n1
    for r in range(n2):
        fft_n1(t.view(r * n1, n1))
    if fused:
        # transpose t -> x multiplying w_n^{j2 k1} on the fly
        _transpose_twiddle(t, x, n2, n1, n)
    else:
        # twiddle: t[j2][k1] *= w_n^{j2 k1}  (one read + one write each)
        for j2 in range(1, n2):  # row 0 multiplies by 1
            base = j2 * n1
            for k1 in range(1, n1):
                t[base + k1] = t[base + k1] * cmath.exp(
                    -2j * cmath.pi * j2 * k1 / n
                )
        co_transpose(t, x, n2, n1)  # x: n1 x n2
    for r in range(n1):
        fft_n2(x.view(r * n2, n2))
    co_transpose(x, t, n1, n2)  # t holds natural order: t[k2*n1 + k1]
    co_scan_copy(t, x)


def _transpose_twiddle(src, dst, rows: int, cols: int, n: int) -> None:
    """Cache-oblivious transpose that multiplies ``w_n^{row*col}`` in flight.

    ``src`` is ``rows x cols`` row-major (rows = j2, cols = k1); ``dst``
    receives the ``cols x rows`` transpose of ``src[j2][k1] * w_n^{j2 k1}``.
    Same recursion (and hence the same O(rows*cols/B) miss bound) as
    :func:`repro.cacheoblivious.transpose.co_transpose`.
    """
    def rec(r0: int, r1: int, c0: int, c1: int) -> None:
        nr, nc = r1 - r0, c1 - c0
        if nr * nc <= 16:
            for r in range(r0, r1):
                base = r * cols
                for c in range(c0, c1):
                    v = src[base + c]
                    if r and c:
                        v = v * cmath.exp(-2j * cmath.pi * r * c / n)
                    dst[c * rows + r] = v
            return
        if nr >= nc:
            mid = (r0 + r1) // 2
            rec(r0, mid, c0, c1)
            rec(mid, r1, c0, c1)
        else:
            mid = (c0 + c1) // 2
            rec(r0, r1, c0, mid)
            rec(r0, r1, mid, c1)

    rec(0, rows, 0, cols)


def co_fft(cache: CacheSim, x) -> None:
    """Classic cache-oblivious FFT ([20]), in place.  ``len(x)`` = power of 2."""
    n = len(x)
    if not _is_pow2(n):
        raise ValueError(f"FFT size must be a power of two, got {n}")
    if n <= _BASE:
        brute_force_dft(cache, x)
        return
    n1 = 1 << math.ceil(math.log2(n) / 2)
    n2 = n // n1
    _factor_step(
        cache,
        x,
        n1,
        n2,
        lambda row: co_fft(cache, row),
        lambda row: co_fft(cache, row),
    )


def co_fft_asymmetric(
    cache: CacheSim, x, omega: int | None = None, *, fused: bool = False
) -> None:
    """The §5.2 write-efficient FFT, in place.

    ``omega`` defaults to the cache's write-cost parameter (and must be a
    power of two; ``omega = 1`` degenerates to :func:`co_fft`).

    ``fused=True`` enables the merged twiddle-transpose optimisation that
    §5.2 sketches in its closing paragraph; the default runs the algorithm
    exactly as described (including its extra passes — see experiment E9).
    """
    if omega is None:
        omega = cache.params.omega
    n = len(x)
    if not _is_pow2(n):
        raise ValueError(f"FFT size must be a power of two, got {n}")
    if not _is_pow2(omega):
        raise ValueError(f"omega must be a power of two, got {omega}")
    if omega == 1:
        co_fft(cache, x)
        return
    _fft_asym(cache, x, omega, fused)


def _fft_asym(cache: CacheSim, x, omega: int, fused: bool = False) -> None:
    n = len(x)
    if n <= max(_BASE, 2 * omega):
        brute_force_dft(cache, x)
        return
    # n = (omega * m1) * m2 with m1, m2 as close as possible
    t = int(math.log2(n // omega))
    m1 = 1 << math.ceil(t / 2)
    m2 = 1 << (t - math.ceil(t / 2))
    n1 = omega * m1

    def fft_long_row(row) -> None:
        # step 2: the length-(omega*m1) row DFT, decomposed omega x m1 with
        # brute-force omega-point column DFTs (the extra nesting level)
        _factor_step(
            cache,
            row,
            omega,
            m1,
            lambda r: brute_force_dft(cache, r),  # 2(b)i: brute force
            lambda r: _fft_asym(cache, r, omega, fused),  # 2(b)ii: recurse
            fused=fused,
        )

    _factor_step(
        cache,
        x,
        n1,
        m2,
        fft_long_row,
        lambda row: _fft_asym(cache, row, omega, fused),  # step 4
        fused=fused,
    )
