"""Cache-oblivious matrix transpose and the bucket transpose of the §5 sort.

Both follow the classic Frigo et al. recursion: split the larger dimension in
half until the submatrix is small, then move elements directly.  Under the
tall-cache assumption this costs ``O(nm/B)`` misses, obliviously.

The *bucket transpose* generalises element transpose to ragged segments: the
(row, bucket) grid of the §5 sort holds a variable-length segment per cell;
recursing over the grid (splitting the larger of rows/buckets) keeps both the
source segments and the destination buckets block-local, which is exactly how
[9] achieves ``O(n/B)`` for the bucket-placement step.
"""

from __future__ import annotations

#: below this many cells the recursion copies directly
_BASE_CELLS = 16


def co_transpose(src, dst, rows: int, cols: int) -> None:
    """Transpose the ``rows x cols`` row-major ``src`` into the
    ``cols x rows`` row-major ``dst`` (distinct arrays), cache-obliviously."""
    if len(src) != rows * cols or len(dst) != rows * cols:
        raise ValueError("array sizes must equal rows*cols")
    _transpose_rec(src, dst, 0, rows, 0, cols, cols, rows)


def _transpose_rec(src, dst, r0: int, r1: int, c0: int, c1: int, src_stride: int, dst_stride: int) -> None:
    nr, nc = r1 - r0, c1 - c0
    if nr * nc <= _BASE_CELLS:
        for r in range(r0, r1):
            base = r * src_stride
            for c in range(c0, c1):
                dst[c * dst_stride + r] = src[base + c]
        return
    if nr >= nc:
        mid = (r0 + r1) // 2
        _transpose_rec(src, dst, r0, mid, c0, c1, src_stride, dst_stride)
        _transpose_rec(src, dst, mid, r1, c0, c1, src_stride, dst_stride)
    else:
        mid = (c0 + c1) // 2
        _transpose_rec(src, dst, r0, r1, c0, mid, src_stride, dst_stride)
        _transpose_rec(src, dst, r0, r1, mid, c1, src_stride, dst_stride)


def bucket_transpose(
    src,
    dst,
    seg_start,
    seg_len,
    dst_start,
    rows: int,
    buckets: int,
) -> None:
    """Move every (row, bucket) segment of ``src`` to its bucket-contiguous
    position in ``dst``, cache-obliviously.

    Parameters
    ----------
    seg_start, seg_len:
        Row-major ``rows x buckets`` arrays: segment (r, b) occupies
        ``src[seg_start[r*buckets+b] : +seg_len[r*buckets+b]]``.
    dst_start:
        Row-major ``rows x buckets`` array of destination offsets into
        ``dst`` (bucket-major layout: bucket b's region holds its segments
        in row order).
    """
    _bucket_rec(src, dst, seg_start, seg_len, dst_start, 0, rows, 0, buckets, buckets)


def _bucket_rec(src, dst, seg_start, seg_len, dst_start, r0, r1, b0, b1, stride) -> None:
    nr, nb = r1 - r0, b1 - b0
    if nr * nb <= _BASE_CELLS:
        for r in range(r0, r1):
            base = r * stride
            for b in range(b0, b1):
                start = seg_start[base + b]
                length = seg_len[base + b]
                dest = dst_start[base + b]
                for i in range(length):
                    dst[dest + i] = src[start + i]
        return
    if nr >= nb:
        mid = (r0 + r1) // 2
        _bucket_rec(src, dst, seg_start, seg_len, dst_start, r0, mid, b0, b1, stride)
        _bucket_rec(src, dst, seg_start, seg_len, dst_start, mid, r1, b0, b1, stride)
    else:
        mid = (b0 + b1) // 2
        _bucket_rec(src, dst, seg_start, seg_len, dst_start, r0, r1, b0, mid, stride)
        _bucket_rec(src, dst, seg_start, seg_len, dst_start, r0, r1, mid, b1, stride)
