"""§5.3: matrix multiplication under asymmetric read/write costs.

Three algorithms:

* :func:`em_blocked_matmul` — Theorem 5.2's explicit EM algorithm:
  ``sqrt(M) x sqrt(M)`` tiles, each output tile accumulated entirely in
  primary memory and written once.  ``O(n^3/(B sqrt(M)))`` reads,
  ``O(n^2/B)`` writes.
* :func:`co_matmul_classic` — the standard cache-oblivious divide-and-conquer
  ([11, 20]): 2x2 block recursion, the two products per output quadrant
  processed sequentially.  ``Theta(n^3/(B sqrt(M)))`` reads *and* writes.
* :func:`co_matmul_asymmetric` — the paper's variant: recurse on an
  ``omega x omega`` grid (``omega^3`` subproblems, the ``omega`` products per
  output block sequential so the block stays cached), with a *randomized
  first round* branching ``2^b`` for ``b`` uniform in ``1..log2(omega)``.
  Expected ``O(n^3 omega/(B sqrt(M) log omega))`` reads and
  ``O(n^3/(B sqrt(M) log omega))`` writes — an ``O(log omega)`` total-cost
  improvement (Theorem 5.3).

Matrices are dense, row-major over :class:`SimArray` (cache-oblivious
algorithms) or tiled :class:`ExtArray` (EM algorithm).
"""

from __future__ import annotations

import math
import random

from ..models.external_memory import AEMachine
from ..models.ideal_cache import CacheSim

#: triple-loop base-case dimension for the recursions
_BASE = 4


class Matrix:
    """A square submatrix window over a row-major backing array."""

    __slots__ = ("arr", "n", "row0", "col0", "size", "stride")

    def __init__(self, arr, n: int, row0: int = 0, col0: int = 0, size: int | None = None):
        self.arr = arr
        self.n = n
        self.stride = n
        self.row0 = row0
        self.col0 = col0
        self.size = size if size is not None else n

    @classmethod
    def zeros(cls, cache: CacheSim, n: int, name: str = "") -> "Matrix":
        arr = cache.array([0] * (n * n), name=name)
        return cls(arr, n)

    @classmethod
    def from_rows(cls, cache: CacheSim, rows: list[list], name: str = "") -> "Matrix":
        n = len(rows)
        flat: list = []
        for row in rows:
            if len(row) != n:
                raise ValueError("matrix must be square")
            flat.extend(row)
        return cls(cache.array(flat, name=name), n)

    def sub(self, dr: int, dc: int, size: int) -> "Matrix":
        """The ``size x size`` submatrix with top-left corner (dr, dc)."""
        return Matrix(self.arr, self.n, self.row0 + dr, self.col0 + dc, size)

    def get(self, r: int, c: int):
        return self.arr[(self.row0 + r) * self.stride + self.col0 + c]

    def set(self, r: int, c: int, v) -> None:
        self.arr[(self.row0 + r) * self.stride + self.col0 + c] = v

    def peek_rows(self) -> list[list]:
        """Uncharged copy (verification only)."""
        data = self.arr.peek_list() if hasattr(self.arr, "peek_list") else list(self.arr)
        return [
            [
                data[(self.row0 + r) * self.stride + self.col0 + c]
                for c in range(self.size)
            ]
            for r in range(self.size)
        ]


def _base_multiply(A: Matrix, B: Matrix, C: Matrix) -> None:
    """C += A @ B by triple loop; each C entry read once and written once."""
    s = A.size
    for i in range(s):
        for j in range(s):
            acc = C.get(i, j)
            for k in range(s):
                acc += A.get(i, k) * B.get(k, j)
            C.set(i, j, acc)


def co_matmul_classic(cache: CacheSim, A: Matrix, B: Matrix, C: Matrix) -> None:
    """Standard cache-oblivious C += A @ B (2x2 block recursion)."""
    s = A.size
    if s != B.size or s != C.size:
        raise ValueError("size mismatch")
    if s <= _BASE:
        _base_multiply(A, B, C)
        return
    h = s // 2
    if 2 * h != s:
        raise ValueError(f"matrix size must be a power of two, got {s}")
    for u in (0, 1):
        for v in (0, 1):
            Cuv = C.sub(u * h, v * h, h)
            # the two products into Cuv run sequentially (block stays cached)
            co_matmul_classic(cache, A.sub(u * h, 0, h), B.sub(0, v * h, h), Cuv)
            co_matmul_classic(cache, A.sub(u * h, h, h), B.sub(h, v * h, h), Cuv)


def co_matmul_asymmetric(
    cache: CacheSim,
    A: Matrix,
    B: Matrix,
    C: Matrix,
    omega: int | None = None,
    seed: int = 0,
) -> None:
    """The Theorem 5.3 algorithm: omega x omega recursion, randomized first
    round.  ``omega`` must be a power of two (defaults to the cache's)."""
    if omega is None:
        omega = cache.params.omega
    if omega < 2 or omega & (omega - 1):
        raise ValueError(f"omega must be a power of two >= 2, got {omega}")
    rng = random.Random(seed)
    # first round: branching 2^b, b uniform in 1..log2(omega)
    b = rng.randint(1, int(math.log2(omega)))
    _mm_grid(cache, A, B, C, 1 << b, omega)


def _mm_grid(cache: CacheSim, A: Matrix, B: Matrix, C: Matrix, g: int, omega: int) -> None:
    """Recurse on a g x g grid of blocks (g = omega after the first round)."""
    s = A.size
    if s <= _BASE or s < g:
        _base_multiply(A, B, C)
        return
    if s % g:
        raise ValueError(f"matrix size {s} not divisible by branching factor {g}")
    h = s // g
    for u in range(g):
        for v in range(g):
            Cuv = C.sub(u * h, v * h, h)
            for w in range(g):  # sequential: Cuv stays cached across products
                _mm_grid(cache, A.sub(u * h, w * h, h), B.sub(w * h, v * h, h), Cuv, omega, omega)


# ---------------------------------------------------------------------- #
# Theorem 5.2: explicit EM blocked matmul
# ---------------------------------------------------------------------- #
def em_blocked_matmul(machine: AEMachine, A_rows: list[list], B_rows: list[list]) -> list[list]:
    """Multiply two ``n x n`` matrices on the AEM machine with
    ``t x t`` tiles, ``t = floor(sqrt(M/3))`` (three tiles resident at once).

    Each output tile is accumulated in primary memory across all ``n/t``
    products and written exactly once: ``O(n^3/(B sqrt(M)))`` block reads,
    ``O(n^2/B)`` block writes (Theorem 5.2).  Returns the product rows.
    """
    n = len(A_rows)
    params = machine.params
    t = max(1, int(math.isqrt(params.M // 3)))
    t = min(t, n)
    if n % t:
        # shrink to a divisor of n so tiles align (counts unaffected in O())
        while n % t:
            t -= 1
    g = n // t

    def make_tiles(rows: list[list], name: str) -> list[list]:
        tiles = []
        for bi in range(g):
            row_tiles = []
            for bj in range(g):
                flat = []
                for r in range(bi * t, (bi + 1) * t):
                    flat.extend(rows[r][bj * t : (bj + 1) * t])
                row_tiles.append(machine.from_list(flat, name=f"{name}[{bi}][{bj}]"))
            tiles.append(row_tiles)
        return tiles

    A_tiles = make_tiles(A_rows, "A")
    B_tiles = make_tiles(B_rows, "B")

    out_rows = [[0] * n for _ in range(n)]
    for bi in range(g):
        for bj in range(g):
            acc = [0.0] * (t * t)  # resident output tile
            for bk in range(g):
                a = _read_tile(machine, A_tiles[bi][bk])
                b = _read_tile(machine, B_tiles[bk][bj])
                for r in range(t):
                    arow = a[r * t : (r + 1) * t]
                    accrow_base = r * t
                    for c in range(t):
                        s = 0.0
                        for k in range(t):
                            s += arow[k] * b[k * t + c]
                        acc[accrow_base + c] += s
            # write the finished tile once
            writer = machine.writer(name=f"C[{bi}][{bj}]")
            writer.extend(acc)
            writer.close()
            for r in range(t):
                for c in range(t):
                    out_rows[bi * t + r][bj * t + c] = acc[r * t + c]
    return out_rows


def _read_tile(machine: AEMachine, tile) -> list:
    vals: list = []
    for rec in machine.scan(tile):
        vals.append(rec)
    return vals
