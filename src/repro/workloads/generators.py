"""Seeded workload generators.

The paper's sorting problem (§2) assumes *unique* keys — "a position index can
always be added to make them unique".  Generators here follow that convention:
distributions with duplicates are tie-broken into unique keys by composing
``key * n + position``, preserving the distribution's shape while meeting the
uniqueness precondition that several algorithms (mergesort's ``lastV`` filter,
sample-sort splitters) rely on.

Every generator takes an explicit ``seed`` so experiments are reproducible.
"""

from __future__ import annotations

import math
import random


def random_permutation(n: int, seed: int = 0) -> list[int]:
    """A uniformly random permutation of ``0..n-1`` (the default workload)."""
    rng = random.Random(seed)
    data = list(range(n))
    rng.shuffle(data)
    return data


def uniform_ints(n: int, lo: int = 0, hi: int = 1 << 30, seed: int = 0) -> list[int]:
    """``n`` unique uniform integers in ``[lo, hi)``, shuffled."""
    if hi - lo < n:
        raise ValueError(f"range [{lo}, {hi}) too small for {n} unique keys")
    rng = random.Random(seed)
    keys = rng.sample(range(lo, hi), n)
    return keys


def sorted_run(n: int, seed: int = 0) -> list[int]:
    """Already-sorted input (best case for adaptive algorithms)."""
    return list(range(n))


def reverse_sorted(n: int, seed: int = 0) -> list[int]:
    """Reverse-sorted input."""
    return list(range(n - 1, -1, -1))


def nearly_sorted(n: int, swaps: int | None = None, seed: int = 0) -> list[int]:
    """Sorted input perturbed by ``swaps`` random transpositions.

    Defaults to ``n // 16`` swaps.
    """
    rng = random.Random(seed)
    data = list(range(n))
    if swaps is None:
        swaps = max(1, n // 16)
    for _ in range(swaps):
        i = rng.randrange(n)
        j = rng.randrange(n)
        data[i], data[j] = data[j], data[i]
    return data


def few_distinct(n: int, distinct: int = 8, seed: int = 0) -> list[int]:
    """``distinct`` key classes, tie-broken to unique keys.

    Key of record at position ``p`` is ``cls * n + p`` so that ordering by the
    composite key groups the classes (the shape a radix-style distribution
    sees) while keys remain unique.
    """
    rng = random.Random(seed)
    return [rng.randrange(distinct) * n + p for p in range(n)]


def gaussian_keys(n: int, seed: int = 0) -> list[int]:
    """Clustered (Gaussian) keys, tie-broken to unique integers."""
    rng = random.Random(seed)
    raw = sorted(range(n), key=lambda _i: rng.gauss(0.0, 1.0))
    # raw is a permutation induced by gaussian draws; compose with position
    return [raw[p] * n + p for p in range(n)]


def zipf_keys(n: int, skew: float = 1.1, seed: int = 0) -> list[int]:
    """Zipf-distributed key classes (heavy duplicates), tie-broken unique."""
    rng = random.Random(seed)
    classes = max(2, int(math.sqrt(n)))
    weights = [1.0 / (i + 1) ** skew for i in range(classes)]
    total = sum(weights)
    cum = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cum.append(acc)

    def pick() -> int:
        x = rng.random()
        lo, hi = 0, classes - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cum[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return [pick() * n + p for p in range(n)]


#: Named scenario registry: every entry is callable as ``f(n, seed=seed)``.
#: Used by the ``python -m repro batch`` mixed-workload driver and the batch
#: tests to exercise diverse input shapes through the adaptive planner.
SCENARIOS = {
    "uniform": random_permutation,
    "presorted": sorted_run,
    "reversed": reverse_sorted,
    "nearly-sorted": nearly_sorted,
    "duplicates": few_distinct,
    "gaussian": gaussian_keys,
    "zipf": zipf_keys,
}


def make_scenario(name: str, n: int, seed: int = 0) -> list[int]:
    """Generate the named scenario's input (see :data:`SCENARIOS`)."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    return SCENARIOS[name](n, seed=seed)


def calibration_suite(
    sizes, scenario: str = "uniform", seed: int = 0
) -> list[tuple[int, list[int]]]:
    """Deterministic ``(n, data)`` pairs for planner calibration.

    One input per requested size, all drawn from the same named scenario
    (see :data:`SCENARIOS`) with a distinct per-size seed, so
    :mod:`repro.planner.calibration` measures every algorithm on identical
    inputs and repeated calibrations are reproducible.
    """
    return [
        (int(n), make_scenario(scenario, int(n), seed=seed + i))
        for i, n in enumerate(sizes)
    ]


def adversarial_merge_killer(n: int, l: int, seed: int = 0) -> list[int]:
    """Input arranged so consecutive merge runs interleave maximally.

    When split into ``l`` contiguous subarrays, every subarray contains keys
    striped across the whole range, forcing each merge round to touch all
    runs — the worst case for the phase-1 re-read behaviour of Algorithm 2.
    """
    if l < 1:
        raise ValueError("l must be >= 1")
    # striping: subarray j gets keys j, j+l, j+2l, ...
    out: list[int] = []
    for j in range(l):
        out.extend(range(j, n, l))
    return out[:n]
