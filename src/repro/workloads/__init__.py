"""Seeded input generators for sorting experiments."""

from .generators import (
    SCENARIOS,
    adversarial_merge_killer,
    calibration_suite,
    few_distinct,
    gaussian_keys,
    make_scenario,
    nearly_sorted,
    random_permutation,
    reverse_sorted,
    sorted_run,
    uniform_ints,
    zipf_keys,
)

__all__ = [
    "SCENARIOS",
    "adversarial_merge_killer",
    "calibration_suite",
    "few_distinct",
    "gaussian_keys",
    "make_scenario",
    "nearly_sorted",
    "random_permutation",
    "reverse_sorted",
    "sorted_run",
    "uniform_ints",
    "zipf_keys",
]
