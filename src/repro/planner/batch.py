"""Batch execution: plan → execute over ``concurrent.futures``.

Production traffic is many sort requests, not one; this module runs a list of
:class:`SortJob`\\ s concurrently and aggregates the per-job
:class:`~repro.api.SortReport`\\ s into a :class:`BatchReport` throughput
summary (jobs/s, records/s, total asymmetric I/O cost, per-family mix).

Jobs default to adaptive planning (:func:`repro.api.sort_auto`); a job may
pin ``algorithm`` (and ``k``) to force a specific strategy.  One failing job
does not abort the batch — failures are captured per job and reported.

Two executors are available:

* ``executor="thread"`` — a shared :class:`ThreadPoolExecutor`.  The simulated
  machines are independent (one
  :class:`~repro.models.external_memory.AEMachine` per job, no shared
  counters) so jobs are trivially parallelisable, but under CPython the GIL
  serialises the pure-Python simulation work: fine for *model* costs, no
  wall-clock scaling.
* ``executor="process"`` — jobs are partitioned into shards, each shard runs
  in its own worker process (one machine per job, one
  :class:`~repro.planner.plan_cache.PlanCache` per shard) and the per-shard
  :class:`BatchReport`\\ s are merged back in submission order
  (:mod:`~repro.planner.sharding`).  This is the CPU-bound scale-out path:
  wall-clock throughput grows with cores.

Model-level aggregates (reads / writes / cost) are executor-independent:
both paths run the identical per-job simulation, only the scheduling
differs.

Adaptive planning is memoised through a :class:`PlanCache` (plans are pure
functions of ``(n, machine, constants)``); the batch summary surfaces the
hit/miss counts so cache effectiveness is visible per run.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..models.params import MachineParams
from .plan_cache import PlanCache


@dataclass
class SortJob:
    """One sort request: data + machine, optionally pinned to an algorithm.

    Plain data all the way down (a list, a frozen
    :class:`~repro.models.params.MachineParams`, strings) so jobs pickle
    cleanly across the process-pool boundary.

    ``params`` may be left ``None`` when the job runs through
    :meth:`~repro.engine.SortEngine.batch`, which fills in the engine's
    machine; the module-level :func:`run_batch` requires it.
    """

    data: Sequence
    params: MachineParams | None = None
    label: str = ""
    #: ``None`` → let the planner choose; otherwise one of
    #: :data:`~repro.planner.cost_model.PLANNABLE_ALGORITHMS`
    algorithm: str | None = None
    k: int | None = None


@dataclass
class JobFailure:
    """A job that raised, with enough context to reproduce it."""

    index: int
    label: str
    error: Exception


@dataclass
class BatchReport:
    """Aggregated outcome of one batch run."""

    #: successful reports, in job-submission order
    reports: list = field(default_factory=list)
    failures: list[JobFailure] = field(default_factory=list)
    wall_seconds: float = 0.0
    #: which backend ran the batch (``"thread"`` or ``"process"``)
    executor: str = "thread"
    #: plan-cache effectiveness over the batch (summed across shards in
    #: process mode); pinned jobs never consult the cache
    plan_hits: int = 0
    plan_misses: int = 0
    #: per-shard (hits, misses) pairs in shard order — populated by the
    #: process executor (each shard/worker owns its cache), empty in thread
    #: mode where one shared cache already tells the whole story
    shard_plan_stats: list = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def jobs_completed(self) -> int:
        return len(self.reports)

    @property
    def total_records(self) -> int:
        return sum(r.n for r in self.reports)

    @property
    def total_reads(self) -> int:
        return sum(r.reads for r in self.reports)

    @property
    def total_writes(self) -> int:
        return sum(r.writes for r in self.reports)

    def total_cost(self) -> float:
        """Summed per-job asymmetric cost (each at its own machine's omega)."""
        return float(sum(r.cost() for r in self.reports))

    @property
    def jobs_per_second(self) -> float:
        return self.jobs_completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def records_per_second(self) -> float:
        return self.total_records / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def algorithm_mix(self) -> dict[str, int]:
        """How many jobs each algorithm *family* won (``"mergesort"``,
        ``"selection"``, ``"ram"``, …) — one bucket per algorithm, not one
        per ``(algorithm, k)`` label."""
        return dict(Counter(r.family for r in self.reports))

    def summary(self) -> dict:
        """One flat dict — the headline row of the batch."""
        return {
            "jobs": self.jobs_completed,
            "failed": len(self.failures),
            "records": self.total_records,
            "reads": self.total_reads,
            "writes": self.total_writes,
            "cost": self.total_cost(),
            "wall_s": round(self.wall_seconds, 4),
            "jobs/s": round(self.jobs_per_second, 2),
            "records/s": round(self.records_per_second, 1),
            "executor": self.executor,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_per_shard": (
                ",".join(f"{h}/{m}" for h, m in self.shard_plan_stats)
                if self.shard_plan_stats
                else "-"
            ),
        }

    def mix_rows(self) -> list[dict]:
        """Per-family breakdown rows (for ``format_table``)."""
        rows = []
        for name, count in sorted(self.algorithm_mix().items()):
            group = [r for r in self.reports if r.family == name]
            rows.append(
                {
                    "family": name,
                    "jobs": count,
                    "records": sum(r.n for r in group),
                    "reads": sum(r.reads for r in group),
                    "writes": sum(r.writes for r in group),
                    "cost": float(sum(r.cost() for r in group)),
                }
            )
        return rows


def _execute_job(job: SortJob, cache: PlanCache | None = None, constants=None):
    # local import: the engine imports this package (engine.batch → here)
    from ..engine import SortEngine

    if job.params is None:
        raise ValueError(
            f"job {job.label!r} has no machine params; run it through "
            "SortEngine.batch (which fills in the engine's machine) or set "
            "SortJob.params"
        )
    engine = SortEngine(job.params, constants=constants, cache=cache)
    if job.algorithm is None:
        return engine.sort(job.data, algorithm="auto")
    # a pinned "ram" job reports at block granularity so batch aggregates
    # stay in one currency
    return engine.sort(job.data, algorithm=job.algorithm, k=job.k)


def execute_and_check(
    index: int,
    job: SortJob,
    cache: PlanCache | None = None,
    constants=None,
    check_sorted: bool = False,
):
    """The per-job semantics shared by BOTH executors: run the job, enforce
    ``check_sorted``, raise on any problem (the caller records the
    :class:`JobFailure`).  Thread and process backends must not diverge here."""
    rep = _execute_job(job, cache=cache, constants=constants)
    if check_sorted and not rep.is_sorted():
        raise AssertionError(f"job {index} ({job.label!r}) output not sorted")
    return rep


def execute_batch(
    jobs: Sequence[SortJob],
    max_workers: int | None = None,
    check_sorted: bool = False,
    executor: str = "thread",
    plan_cache: PlanCache | None = None,
    constants=None,
    warm_cache=None,
) -> BatchReport:
    """Execute ``jobs`` concurrently and aggregate their reports — the
    one-shot orchestration core.

    Since the :class:`repro.service.SortService` redesign this is the
    *reference* batch path: :meth:`~repro.engine.SortEngine.batch` (and the
    legacy :func:`run_batch` shim) now submit through a persistent service
    pool and are parity-tested against the reports this function produces.

    Parameters
    ----------
    max_workers:
        Pool width.  Thread mode defaults to ``min(8, len(jobs))``; process
        mode defaults to one shard per CPU core (capped at the job count).
    check_sorted:
        Verify every output is sorted (costs an extra O(n) pass per job);
        a violation is recorded as that job's failure.
    executor:
        ``"thread"`` (GIL-bound, zero start-up cost) or ``"process"``
        (sharded across worker processes for real multi-core scaling).
    plan_cache:
        Memoisation table for adaptive planning.  Thread mode shares it
        across workers (one is created internally when ``None``); process
        mode builds one cache per shard instead — a cross-process shared
        cache would serialise the very work the shards parallelise — and a
        caller-supplied cache is ignored there.
    constants:
        Optional :class:`~repro.planner.calibration.CostConstants` so
        adaptive jobs rank with calibrated rather than unit leading
        constants.
    warm_cache:
        A :class:`PlanCache` (or its :meth:`~PlanCache.snapshot` entries) to
        pre-seed planning with: thread mode seeds the shared cache, process
        mode seeds every shard's local cache so shards start with the
        parent's hot entries instead of cold-ranking per shard.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r}; choose 'thread' or 'process'")
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1 or None, got {max_workers}")
    if not jobs:
        return BatchReport(executor=executor)
    if isinstance(warm_cache, PlanCache):
        warm_cache = warm_cache.snapshot()
    t0 = time.perf_counter()
    if executor == "process":
        from .sharding import run_sharded

        report = run_sharded(
            jobs,
            num_shards=max_workers,
            check_sorted=check_sorted,
            constants=constants,
            warm_entries=warm_cache,
        )
    else:
        report = BatchReport(executor="thread")
        cache = plan_cache if plan_cache is not None else PlanCache()
        if warm_cache:
            cache.seed(warm_cache)
        # delta stats: a caller-supplied cache may be warm from earlier batches
        hits0, misses0 = cache.hits, cache.misses
        if max_workers is None:
            max_workers = min(8, len(jobs))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(execute_and_check, i, job, cache, constants, check_sorted)
                for i, job in enumerate(jobs)
            ]
            for i, (job, fut) in enumerate(zip(jobs, futures)):
                try:
                    report.reports.append(fut.result())
                except Exception as exc:  # noqa: BLE001 — captured per job by design
                    report.failures.append(JobFailure(index=i, label=job.label, error=exc))
        report.plan_hits = cache.hits - hits0
        report.plan_misses = cache.misses - misses0
    report.wall_seconds = time.perf_counter() - t0
    return report


def run_batch(
    jobs: Sequence[SortJob],
    max_workers: int | None = None,
    check_sorted: bool = False,
    executor: str = "thread",
    plan_cache: PlanCache | None = None,
    constants=None,
    warm_cache=None,
) -> BatchReport:
    """Backward-compatible shim: build a throwaway
    :class:`~repro.engine.SortEngine` and run ``jobs`` through
    :meth:`~repro.engine.SortEngine.batch` (which submits through a
    :class:`~repro.service.SortService` pool and gathers the futures).

    Every job must carry its own ``params`` here (the engine default used to
    fill in ``params=None`` jobs is taken from the first job's machine).
    ``warm_cache`` pre-seeds the batch's planning (per-shard in process
    mode) with a parent cache's hot entries.  Prefer a long-lived engine —
    or a :class:`~repro.service.SortService` directly — when issuing many
    batches: both keep the worker pool, one plan cache and one set of
    calibrated constants alive across all of them, where this shim tears
    everything down per call.
    """
    if executor not in ("thread", "process"):
        raise ValueError(f"unknown executor {executor!r}; choose 'thread' or 'process'")
    if max_workers is not None and max_workers < 1:
        raise ValueError(f"max_workers must be >= 1 or None, got {max_workers}")
    if not jobs:
        return BatchReport(executor=executor)
    from ..engine import SortEngine

    anchor = next((job.params for job in jobs if job.params is not None), None)
    if anchor is None:
        raise ValueError("run_batch requires at least one job with machine params")
    engine = SortEngine(
        anchor,
        constants=constants,
        cache=plan_cache,
        executor=executor,
        workers=max_workers,
    )
    try:
        return engine.batch(jobs, check_sorted=check_sorted, warm_cache=warm_cache)
    finally:
        engine.close()
