"""Batch execution: plan → execute over ``concurrent.futures``.

Production traffic is many sort requests, not one; this module runs a list of
:class:`SortJob`\\ s concurrently and aggregates the per-job
:class:`~repro.api.SortReport`\\ s into a :class:`BatchReport` throughput
summary (jobs/s, records/s, total asymmetric I/O cost, per-algorithm mix).

Jobs default to adaptive planning (:func:`repro.api.sort_auto`); a job may
pin ``algorithm`` (and ``k``) to force a specific strategy.  One failing job
does not abort the batch — failures are captured per job and reported.

The executor uses threads: the simulated machines are independent (one
:class:`~repro.models.external_memory.AEMachine` per job, no shared counters)
so jobs are trivially parallelisable; under CPython the GIL serialises the
pure-Python simulation work, which is fine for the *model* costs this repo
measures.  Process-pool sharding for wall-clock speedups is a ROADMAP item.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..models.params import MachineParams


@dataclass
class SortJob:
    """One sort request: data + machine, optionally pinned to an algorithm."""

    data: Sequence
    params: MachineParams
    label: str = ""
    #: ``None`` → let the planner choose; otherwise one of
    #: :data:`~repro.planner.cost_model.PLANNABLE_ALGORITHMS`
    algorithm: str | None = None
    k: int | None = None


@dataclass
class JobFailure:
    """A job that raised, with enough context to reproduce it."""

    index: int
    label: str
    error: Exception


@dataclass
class BatchReport:
    """Aggregated outcome of one batch run."""

    #: successful reports, in job-submission order
    reports: list = field(default_factory=list)
    failures: list[JobFailure] = field(default_factory=list)
    wall_seconds: float = 0.0

    # ------------------------------------------------------------------ #
    @property
    def jobs_completed(self) -> int:
        return len(self.reports)

    @property
    def total_records(self) -> int:
        return sum(r.n for r in self.reports)

    @property
    def total_reads(self) -> int:
        return sum(r.reads for r in self.reports)

    @property
    def total_writes(self) -> int:
        return sum(r.writes for r in self.reports)

    def total_cost(self) -> float:
        """Summed per-job asymmetric cost (each at its own machine's omega)."""
        return float(sum(r.cost() for r in self.reports))

    @property
    def jobs_per_second(self) -> float:
        return self.jobs_completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def records_per_second(self) -> float:
        return self.total_records / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def algorithm_mix(self) -> dict[str, int]:
        """How many jobs each algorithm won (by executed-report label)."""
        return dict(Counter(r.algorithm for r in self.reports))

    def summary(self) -> dict:
        """One flat dict — the headline row of the batch."""
        return {
            "jobs": self.jobs_completed,
            "failed": len(self.failures),
            "records": self.total_records,
            "reads": self.total_reads,
            "writes": self.total_writes,
            "cost": self.total_cost(),
            "wall_s": round(self.wall_seconds, 4),
            "jobs/s": round(self.jobs_per_second, 2),
            "records/s": round(self.records_per_second, 1),
        }

    def mix_rows(self) -> list[dict]:
        """Per-algorithm breakdown rows (for ``format_table``)."""
        rows = []
        for name, count in sorted(self.algorithm_mix().items()):
            group = [r for r in self.reports if r.algorithm == name]
            rows.append(
                {
                    "algorithm": name,
                    "jobs": count,
                    "records": sum(r.n for r in group),
                    "reads": sum(r.reads for r in group),
                    "writes": sum(r.writes for r in group),
                    "cost": float(sum(r.cost() for r in group)),
                }
            )
        return rows


def _execute_job(job: SortJob):
    # local import: api imports this package (sort_auto → planner)
    from ..api import ram_report_on_machine, sort_auto, sort_external

    if job.algorithm is None:
        return sort_auto(job.data, job.params)
    if job.algorithm == "ram":
        # block-granularity report so batch aggregates stay in one currency
        return ram_report_on_machine(job.data, job.params)
    return sort_external(job.data, job.params, algorithm=job.algorithm, k=job.k)


def run_batch(
    jobs: Sequence[SortJob],
    max_workers: int | None = None,
    check_sorted: bool = False,
) -> BatchReport:
    """Execute ``jobs`` concurrently and aggregate their reports.

    Parameters
    ----------
    max_workers:
        Thread-pool width; defaults to ``min(8, len(jobs))``.
    check_sorted:
        Verify every output is sorted (costs an extra O(n) pass per job);
        a violation is recorded as that job's failure.
    """
    report = BatchReport()
    if not jobs:
        return report
    if max_workers is None:
        max_workers = min(8, len(jobs))
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = [pool.submit(_execute_job, job) for job in jobs]
        for i, (job, fut) in enumerate(zip(jobs, futures)):
            try:
                rep = fut.result()
                if check_sorted and not rep.is_sorted():
                    raise AssertionError(f"job {i} ({job.label!r}) output not sorted")
                report.reports.append(rep)
            except Exception as exc:  # noqa: BLE001 — captured per job by design
                report.failures.append(JobFailure(index=i, label=job.label, error=exc))
    report.wall_seconds = time.perf_counter() - t0
    return report
