"""Memoised sort planning.

A :class:`~repro.planner.cost_model.SortPlan` is a pure function of
``(n, M, B, omega, algorithms, k_max, constants)`` — nothing about the input
*data* enters the ranking.  Batch workloads repeat the same ``(n, machine)``
combinations constantly (the CLI driver draws job sizes from a small range,
production traffic clusters around popular request shapes), so re-ranking per
job is pure waste.  :class:`PlanCache` memoises the ranking behind a lock
(safe to share across the thread executor; the process executor builds one
per shard) and counts hits/misses so :meth:`~repro.planner.batch.BatchReport.summary`
can surface cache effectiveness per batch.

Entries are evicted LRU when ``maxsize`` is set; the default is unbounded,
which is fine for the plan table's size (a few hundred bytes per distinct
``(n, machine)`` shape).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..models.params import MachineParams
from .cost_model import SortPlan, plan_sort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (calibration → cost_model)
    from .calibration import CostConstants


class PlanCache:
    """Thread-safe LRU memo table for :func:`~repro.planner.cost_model.plan_sort`."""

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: OrderedDict[tuple, SortPlan] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(
        n: int,
        params: MachineParams,
        algorithms: tuple[str, ...] | None = None,
        k_max: int | None = None,
        constants: "CostConstants | None" = None,
    ) -> tuple:
        """The full set of inputs ``plan_sort`` is a pure function of."""
        return (
            n,
            params.M,
            params.B,
            params.omega,
            tuple(algorithms) if algorithms is not None else None,
            k_max,
            constants,
        )

    def plan(
        self,
        n: int,
        params: MachineParams,
        algorithms: tuple[str, ...] | None = None,
        k_max: int | None = None,
        constants: "CostConstants | None" = None,
    ) -> SortPlan:
        """The memoised :func:`plan_sort` — identical result, counted access."""
        key = self.make_key(n, params, algorithms, k_max, constants)
        # compute under the lock: planning is a few closed-form evaluations
        # (microseconds), far cheaper than the sorts it routes, and holding
        # the lock makes hit/miss accounting deterministic — concurrent first
        # accesses to one key count exactly one miss
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return cached
            plan = plan_sort(n, params, algorithms=algorithms, k_max=k_max, constants=constants)
            self.misses += 1
            self._plans[key] = plan
            if self.maxsize is not None and len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
        return plan

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._plans)}

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
