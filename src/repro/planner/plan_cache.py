"""Memoised sort planning.

A :class:`~repro.planner.cost_model.SortPlan` is a pure function of
``(n, M, B, omega, algorithms, k_max, constants)`` — nothing about the input
*data* enters the ranking.  Batch workloads repeat the same ``(n, machine)``
combinations constantly (the CLI driver draws job sizes from a small range,
production traffic clusters around popular request shapes), so re-ranking per
job is pure waste.  :class:`PlanCache` memoises the ranking behind a lock
(safe to share across the thread executor; the process executor builds one
per shard) and counts hits/misses so :meth:`~repro.planner.batch.BatchReport.summary`
can surface cache effectiveness per batch.

Entries are evicted LRU when ``maxsize`` is set; the default is unbounded,
which is fine for the plan table's size (a few hundred bytes per distinct
``(n, machine)`` shape).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from ..analysis.locksan import wrap_lock
from ..models.params import MachineParams
from .cost_model import SortPlan, plan_sort

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (calibration → cost_model)
    from .calibration import CostConstants


class PlanCache:
    """Thread-safe LRU memo table for :func:`~repro.planner.cost_model.plan_sort`."""

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError(f"maxsize must be >= 1 or None, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: OrderedDict[tuple, SortPlan] = OrderedDict()
        self._lock = wrap_lock(threading.Lock(), "PlanCache._lock")

    # ------------------------------------------------------------------ #
    @staticmethod
    def make_key(
        n: int,
        params: MachineParams,
        algorithms: tuple[str, ...] | None = None,
        k_max: int | None = None,
        constants: "CostConstants | None" = None,
    ) -> tuple:
        """The full set of inputs ``plan_sort`` is a pure function of."""
        return (
            n,
            params.M,
            params.B,
            params.omega,
            tuple(algorithms) if algorithms is not None else None,
            k_max,
            constants,
        )

    def plan(
        self,
        n: int,
        params: MachineParams,
        algorithms: tuple[str, ...] | None = None,
        k_max: int | None = None,
        constants: "CostConstants | None" = None,
    ) -> SortPlan:
        """The memoised :func:`plan_sort` — identical result, counted access."""
        return self.planned(n, params, algorithms, k_max, constants)[0]

    def planned(
        self,
        n: int,
        params: MachineParams,
        algorithms: tuple[str, ...] | None = None,
        k_max: int | None = None,
        constants: "CostConstants | None" = None,
    ) -> tuple[SortPlan, bool]:
        """:meth:`plan` plus whether this access was a cache hit.

        The per-worker accounting in :mod:`repro.service` attributes each
        access to the job that made it, which needs the hit/miss outcome of
        the individual call rather than the cache-wide totals.
        """
        key = self.make_key(n, params, algorithms, k_max, constants)
        # compute under the lock: planning is a few closed-form evaluations
        # (microseconds), far cheaper than the sorts it routes, and holding
        # the lock makes hit/miss accounting deterministic — concurrent first
        # accesses to one key count exactly one miss
        with self._lock:
            cached = self._plans.get(key)
            if cached is not None:
                self.hits += 1
                self._plans.move_to_end(key)
                return cached, True
            plan = plan_sort(n, params, algorithms=algorithms, k_max=k_max, constants=constants)
            self.misses += 1
            self._plans[key] = plan
            if self.maxsize is not None and len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)
        return plan, False

    # ------------------------------------------------------------------ #
    # cross-process warm start
    # ------------------------------------------------------------------ #
    def snapshot(self) -> list[tuple]:
        """The cache's ``(key, plan)`` entries in LRU order (coldest first).

        Plans are frozen dataclasses and keys are plain tuples, so a snapshot
        pickles cleanly across the process boundary — :func:`seed` on the far
        side rebuilds the hot state without re-ranking anything.
        """
        with self._lock:
            return list(self._plans.items())

    def seed(self, entries) -> int:
        """Install pre-computed ``(key, plan)`` entries (or copy another
        :class:`PlanCache`) without touching the hit/miss counters.

        Seeding is how process shards start warm: the parent snapshots its
        hot cache and each worker seeds a fresh one before its first job.
        Later entries win the LRU position; ``maxsize`` is respected.
        Returns the number of *new* keys installed.
        """
        if isinstance(entries, PlanCache):
            entries = entries.snapshot()
        installed = 0
        with self._lock:
            for key, plan in entries:
                if key not in self._plans:
                    installed += 1
                self._plans[key] = plan
                self._plans.move_to_end(key)
                if self.maxsize is not None and len(self._plans) > self.maxsize:
                    self._plans.popitem(last=False)
        return installed

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> dict:
        with self._lock:
            return {"hits": self.hits, "misses": self.misses, "size": len(self._plans)}

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0
