"""Cost-model-driven sort planning.

For a given ``(n, MachineParams)`` the planner evaluates the paper's exact
predicted I/O bounds (unit leading constants, block granularity — the same
closed forms the experiments verify as hard upper bounds):

* **mergesort** — Theorem 4.3: ``(k+1) ceil(n/B) L`` reads, ``ceil(n/B) L``
  writes, ``L = ceil(log_{kM/B}(n/B))``;
* **samplesort** — Theorem 4.5: ``k ceil(n/B) L`` reads, ``ceil(n/B) L``
  writes;
* **heapsort** — Theorem 4.10: ``2n`` priority-queue operations at amortized
  ``(k/B)(1 + log_{kM/B} n)`` reads and ``(1/B)(1 + log_{kM/B} n)`` writes;
* **selection** — Lemma 4.2: ``ceil(n/M) ceil(n/B)`` reads, ``ceil(n/B)``
  writes (no branching parameter);
* **ram** — when ``n <= M`` the input fits in primary memory: one scan in
  (``ceil(n/B)`` reads), sort for free in memory, one stream out
  (``ceil(n/B)`` writes).  Executed via :func:`repro.api.sort_ram` with the
  paper's §3 BST sort (O(n log n) element reads, O(n) element writes).

Each ``k``-parameterised algorithm is entered with its own best branching
factor: the planner scans the Corollary 4.4 feasible region (``k = 1``, the
classic algorithm, is always admissible) and keeps the cost minimiser.

Because every form carries a unit leading constant, sample sort's
``k ceil(n/B) L`` read bound dominates mergesort's ``(k+1) ceil(n/B) L`` by
exactly one scan per level; mergesort therefore never wins the predicted
ranking but remains listed for reporting and forced execution.

Ties are broken deterministically: lower predicted cost first, then fewer
predicted writes (writes are the expensive currency), then a fixed
preference order (:data:`_TIE_PREFERENCE`) favouring the simplest machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analysis.formulas import (
    mergesort_reads,
    mergesort_writes,
    samplesort_reads,
    samplesort_writes,
)
from ..analysis.ktuning import feasible_k_region
from ..core.aem_heapsort import predicted_amortized_reads, predicted_amortized_writes
from ..core.selection_sort import predicted_reads as selection_reads
from ..core.selection_sort import predicted_writes as selection_writes
from ..models.params import MachineParams

#: algorithms the planner knows how to rank (and execute via the api façade)
PLANNABLE_ALGORITHMS = ("ram", "selection", "samplesort", "mergesort", "heapsort")

#: tie-break preference: simplest machinery first (in-memory sort, then the
#: single-pass-per-phase selection sort, then the recursive sorts, then the
#: priority-queue heapsort)
_TIE_PREFERENCE = {name: i for i, name in enumerate(PLANNABLE_ALGORITHMS)}


@dataclass(frozen=True)
class PlanCandidate:
    """One (algorithm, k) entry in a ranked plan."""

    algorithm: str
    #: chosen branching factor (``None`` for algorithms without one)
    k: int | None
    predicted_reads: float
    predicted_writes: float
    #: ``predicted_reads + omega * predicted_writes``
    predicted_cost: float
    #: ``"aem"`` (executed by :func:`repro.api.sort_external`) or ``"ram"``
    model: str

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "k": self.k,
            "predicted_reads": self.predicted_reads,
            "predicted_writes": self.predicted_writes,
            "predicted_cost": self.predicted_cost,
            "model": self.model,
        }


@dataclass(frozen=True)
class SortPlan:
    """Ranked plan for one ``(n, params)`` sorting problem."""

    n: int
    params: MachineParams
    ranked: tuple[PlanCandidate, ...]

    @property
    def chosen(self) -> PlanCandidate:
        """The minimum-predicted-cost candidate (rank 0)."""
        return self.ranked[0]

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "params": str(self.params),
            "chosen": self.chosen.as_dict(),
            "ranked": [c.as_dict() for c in self.ranked],
        }


# ---------------------------------------------------------------------- #
# per-algorithm predicted bounds (block granularity, unit constants)
# ---------------------------------------------------------------------- #
def _heapsort_reads(n: int, M: int, B: int, k: int) -> float:
    return 2 * n * predicted_amortized_reads(n, M, B, k)


def _heapsort_writes(n: int, M: int, B: int, k: int) -> float:
    return 2 * n * predicted_amortized_writes(n, M, B, k)


_K_PARAMETERISED = {
    "mergesort": (mergesort_reads, mergesort_writes),
    "samplesort": (samplesort_reads, samplesort_writes),
    "heapsort": (_heapsort_reads, _heapsort_writes),
}


def _best_k(n: int, params: MachineParams, algorithm: str, k_max: int | None) -> int | None:
    """Minimise the algorithm's exact predicted cost over the Corollary 4.4
    feasible region (``k = 1`` always admissible); ties go to the smaller k.

    Returns ``None`` when no feasible k yields a merge fanout ``kM/B >= 2``
    (an M = B machine, say): the recursion does not shrink there, so the
    algorithm — and its closed forms — are undefined.
    """
    reads_fn, writes_fn = _K_PARAMETERISED[algorithm]
    best_k, best_cost = None, None
    for k in feasible_k_region(params, k_max):
        if params.fanout(k) < 2:
            continue
        r = reads_fn(n, params.M, params.B, k)
        w = writes_fn(n, params.M, params.B, k)
        cost = r + params.omega * w
        if best_cost is None or cost < best_cost:
            best_k, best_cost = k, cost
    return best_k


def predict_candidate(
    algorithm: str,
    n: int,
    params: MachineParams,
    k: int | None = None,
    k_max: int | None = None,
) -> PlanCandidate:
    """Predicted-cost entry for one algorithm (optimising ``k`` if not given).

    ``algorithm`` is one of :data:`PLANNABLE_ALGORITHMS`; requesting ``"ram"``
    with ``n > M`` raises ``ValueError`` (the input would not fit).
    """
    M, B, omega = params.M, params.B, params.omega
    # scan lower bound: sorting n >= 1 external records touches every input
    # block and writes every output block at least once.  Amortized forms
    # (heapsort's Theorem 4.10) dip below this for tiny n; the floor keeps
    # the ranking honest there.
    floor = float(math.ceil(n / B))
    if algorithm in _K_PARAMETERISED:
        if k is None:
            k = _best_k(n, params, algorithm, k_max)
            if k is None:
                raise ValueError(
                    f"{algorithm} infeasible on {params}: merge fanout kM/B < 2 "
                    "for every Corollary 4.4-feasible k"
                )
        reads_fn, writes_fn = _K_PARAMETERISED[algorithm]
        r = max(float(reads_fn(n, M, B, k)), floor)
        w = max(float(writes_fn(n, M, B, k)), floor)
        return PlanCandidate(algorithm, k, r, w, r + omega * w, "aem")
    if algorithm == "selection":
        r = max(float(selection_reads(n, M, B)), floor)
        w = max(float(selection_writes(n, B)), floor)
        return PlanCandidate(algorithm, None, r, w, r + omega * w, "aem")
    if algorithm == "ram":
        if n > M:
            raise ValueError(f"ram plan requires n <= M, got n={n} > M={M}")
        blocks = float(math.ceil(n / B))
        return PlanCandidate(algorithm, None, blocks, blocks, blocks * (1 + omega), "ram")
    raise ValueError(
        f"unknown algorithm {algorithm!r}; choose from {sorted(PLANNABLE_ALGORITHMS)}"
    )


def rank_plans(
    n: int,
    params: MachineParams,
    algorithms: tuple[str, ...] | None = None,
    k_max: int | None = None,
) -> list[PlanCandidate]:
    """All candidates for ``(n, params)``, best (lowest predicted cost) first.

    ``algorithms`` restricts the field (default: every plannable algorithm;
    ``"ram"`` is silently skipped when ``n > M``).
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if algorithms is None:
        algorithms = PLANNABLE_ALGORITHMS
    out = []
    for name in algorithms:
        if name == "ram" and n > params.M:
            continue
        try:
            out.append(predict_candidate(name, n, params, k_max=k_max))
        except ValueError:
            if name not in _K_PARAMETERISED:
                raise
            # degenerate-fanout machine (e.g. M = B): the recursive sorts
            # cannot run; selection (and ram, when it fits) remain
            continue
    if not out:
        raise ValueError("no applicable algorithms for this (n, params)")
    out.sort(
        key=lambda c: (
            c.predicted_cost,
            c.predicted_writes,
            _TIE_PREFERENCE[c.algorithm],
        )
    )
    return out


def plan_sort(
    n: int,
    params: MachineParams,
    algorithms: tuple[str, ...] | None = None,
    k_max: int | None = None,
) -> SortPlan:
    """Build the ranked :class:`SortPlan` for one sorting problem."""
    return SortPlan(n=n, params=params, ranked=tuple(rank_plans(n, params, algorithms, k_max)))
