"""Cost-model-driven sort planning.

For a given ``(n, MachineParams)`` the planner evaluates the paper's exact
predicted I/O bounds (unit leading constants, block granularity — the same
closed forms the experiments verify as hard upper bounds):

* **mergesort** — Theorem 4.3: ``(k+1) ceil(n/B) L`` reads, ``ceil(n/B) L``
  writes, ``L = ceil(log_{kM/B}(n/B))``;
* **samplesort** — Theorem 4.5: ``k ceil(n/B) L`` reads, ``ceil(n/B) L``
  writes;
* **heapsort** — Theorem 4.10: ``2n`` priority-queue operations at amortized
  ``(k/B)(1 + log_{kM/B} n)`` reads and ``(1/B)(1 + log_{kM/B} n)`` writes;
* **selection** — Lemma 4.2: ``ceil(n/M) ceil(n/B)`` reads, ``ceil(n/B)``
  writes (no branching parameter);
* **ram** — when ``n <= M`` the input fits in primary memory: one scan in
  (``ceil(n/B)`` reads), sort for free in memory, one stream out
  (``ceil(n/B)`` writes).  Executed via :func:`repro.api.sort_ram` with the
  paper's §3 BST sort (O(n log n) element reads, O(n) element writes).

Each ``k``-parameterised algorithm is entered with its own best branching
factor: the planner scans the Corollary 4.4 feasible region (``k = 1``, the
classic algorithm, is always admissible) and keeps the cost minimiser.

With unit leading constants, sample sort's ``k ceil(n/B) L`` read bound
dominates mergesort's ``(k+1) ceil(n/B) L`` by exactly one scan per level;
mergesort therefore never wins a *unit-constant* ranking.  Every ranking
entry point accepts an optional ``constants=``
(:class:`~repro.planner.calibration.CostConstants`) fitted from measured
runs, which replaces the unit constants with this implementation's actual
per-algorithm multipliers and lets any algorithm win on merit.

Ties are broken deterministically: lower predicted cost first, then fewer
predicted writes (writes are the expensive currency), then a fixed
preference order (:data:`_TIE_PREFERENCE`) favouring the simplest machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.formulas import (
    mergesort_reads,
    mergesort_writes,
    samplesort_reads,
    samplesort_writes,
    shard_merge_reads,
    shard_merge_writes,
)
from ..analysis.ktuning import feasible_k_region
from ..core.aem_heapsort import predicted_amortized_reads, predicted_amortized_writes
from ..core.selection_sort import predicted_reads as selection_reads
from ..core.selection_sort import predicted_writes as selection_writes
from ..models.params import MachineParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (calibration imports us)
    from .calibration import CostConstants

#: algorithms the planner knows how to rank (and execute via the api façade)
PLANNABLE_ALGORITHMS = ("ram", "selection", "samplesort", "mergesort", "heapsort")

#: tie-break preference: simplest machinery first (in-memory sort, then the
#: single-pass-per-phase selection sort, then the recursive sorts, then the
#: priority-queue heapsort)
_TIE_PREFERENCE = {name: i for i, name in enumerate(PLANNABLE_ALGORITHMS)}


@dataclass(frozen=True)
class PlanCandidate:
    """One (algorithm, k) entry in a ranked plan."""

    algorithm: str
    #: chosen branching factor (``None`` for algorithms without one)
    k: int | None
    predicted_reads: float
    predicted_writes: float
    #: ``predicted_reads + omega * predicted_writes``
    predicted_cost: float
    #: ``"aem"`` (executed by :func:`repro.api.sort_external`) or ``"ram"``
    model: str

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "k": self.k,
            "predicted_reads": self.predicted_reads,
            "predicted_writes": self.predicted_writes,
            "predicted_cost": self.predicted_cost,
            "model": self.model,
        }


@dataclass(frozen=True)
class SortPlan:
    """Ranked plan for one ``(n, params)`` sorting problem."""

    n: int
    params: MachineParams
    ranked: tuple[PlanCandidate, ...]

    @property
    def chosen(self) -> PlanCandidate:
        """The minimum-predicted-cost candidate (rank 0)."""
        return self.ranked[0]

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "params": str(self.params),
            "chosen": self.chosen.as_dict(),
            "ranked": [c.as_dict() for c in self.ranked],
        }


# ---------------------------------------------------------------------- #
# per-algorithm predicted bounds (block granularity, unit constants)
# ---------------------------------------------------------------------- #
def _heapsort_reads(n: int, M: int, B: int, k: int) -> float:
    return 2 * n * predicted_amortized_reads(n, M, B, k)


def _heapsort_writes(n: int, M: int, B: int, k: int) -> float:
    return 2 * n * predicted_amortized_writes(n, M, B, k)


_K_PARAMETERISED = {
    "mergesort": (mergesort_reads, mergesort_writes),
    "samplesort": (samplesort_reads, samplesort_writes),
    "heapsort": (_heapsort_reads, _heapsort_writes),
}


def _constant_pair(constants: "CostConstants | None", family: str) -> tuple[float, float]:
    """The (read, write) multipliers for ``family`` (unit when uncalibrated)."""
    if constants is None:
        return 1.0, 1.0
    return constants.read_constant(family), constants.write_constant(family)


def _best_k(
    n: int,
    params: MachineParams,
    algorithm: str,
    k_max: int | None,
    constants: "CostConstants | None" = None,
) -> int | None:
    """Minimise the algorithm's exact predicted cost over the Corollary 4.4
    feasible region (``k = 1`` always admissible); ties go to the smaller k.

    Returns ``None`` when no feasible k yields a merge fanout ``kM/B >= 2``
    (an M = B machine, say): the recursion does not shrink there, so the
    algorithm — and its closed forms — are undefined.
    """
    reads_fn, writes_fn = _K_PARAMETERISED[algorithm]
    cr, cw = _constant_pair(constants, algorithm)
    # same scan floor as predict_candidate, so the k minimising this loop's
    # cost is the minimiser of the cost the candidate will actually report
    floor = float(math.ceil(n / params.B))
    best_k, best_cost = None, None
    for k in feasible_k_region(params, k_max):
        if params.fanout(k) < 2:
            continue
        r = max(cr * reads_fn(n, params.M, params.B, k), floor)
        w = max(cw * writes_fn(n, params.M, params.B, k), floor)
        cost = r + params.omega * w
        if best_cost is None or cost < best_cost:
            best_k, best_cost = k, cost
    return best_k


def predict_candidate(
    algorithm: str,
    n: int,
    params: MachineParams,
    k: int | None = None,
    k_max: int | None = None,
    constants: "CostConstants | None" = None,
) -> PlanCandidate:
    """Predicted-cost entry for one algorithm (optimising ``k`` if not given).

    ``algorithm`` is one of :data:`PLANNABLE_ALGORITHMS`; requesting ``"ram"``
    with ``n > M`` raises ``ValueError`` (the input would not fit).
    ``constants`` scales each bound by its calibrated leading multiplier
    (:class:`~repro.planner.calibration.CostConstants`); ``None`` keeps the
    unit-constant theory forms.
    """
    M, B, omega = params.M, params.B, params.omega
    # scan lower bound: sorting n >= 1 external records touches every input
    # block and writes every output block at least once.  Amortized forms
    # (heapsort's Theorem 4.10) dip below this for tiny n; the floor keeps
    # the ranking honest there.  The floor is a physical bound, so calibrated
    # constants never scale it.
    floor = float(math.ceil(n / B))
    cr, cw = _constant_pair(constants, algorithm)
    if algorithm in _K_PARAMETERISED:
        if k is None:
            k = _best_k(n, params, algorithm, k_max, constants)
            if k is None:
                raise ValueError(
                    f"{algorithm} infeasible on {params}: merge fanout kM/B < 2 "
                    "for every Corollary 4.4-feasible k"
                )
        reads_fn, writes_fn = _K_PARAMETERISED[algorithm]
        r = max(cr * float(reads_fn(n, M, B, k)), floor)
        w = max(cw * float(writes_fn(n, M, B, k)), floor)
        return PlanCandidate(algorithm, k, r, w, r + omega * w, "aem")
    if algorithm == "selection":
        r = max(cr * float(selection_reads(n, M, B)), floor)
        w = max(cw * float(selection_writes(n, B)), floor)
        return PlanCandidate(algorithm, None, r, w, r + omega * w, "aem")
    if algorithm == "ram":
        if n > M:
            raise ValueError(f"ram plan requires n <= M, got n={n} > M={M}")
        blocks = float(math.ceil(n / B))
        r = max(cr * blocks, blocks)
        w = max(cw * blocks, blocks)
        return PlanCandidate(algorithm, None, r, w, r + omega * w, "ram")
    raise ValueError(
        f"unknown algorithm {algorithm!r}; choose from {sorted(PLANNABLE_ALGORITHMS)}"
    )


def rank_plans(
    n: int,
    params: MachineParams,
    algorithms: tuple[str, ...] | None = None,
    k_max: int | None = None,
    constants: "CostConstants | None" = None,
) -> list[PlanCandidate]:
    """All candidates for ``(n, params)``, best (lowest predicted cost) first.

    ``algorithms`` restricts the field.  With the default (``None``, meaning
    every plannable algorithm) an inapplicable candidate is silently skipped —
    ``"ram"`` when ``n > M``, and the recursive sorts on a degenerate-fanout
    machine — because the auto-planner simply has no such option there.  An
    *explicitly* requested algorithm that cannot run raises the ``ValueError``
    from :func:`predict_candidate` instead of being dropped behind the
    caller's back.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    explicit = algorithms is not None
    if algorithms is None:
        algorithms = PLANNABLE_ALGORITHMS
    out = []
    for name in algorithms:
        if name == "ram" and n > params.M and not explicit:
            continue
        try:
            out.append(predict_candidate(name, n, params, k_max=k_max, constants=constants))
        except ValueError:
            if explicit or name not in _K_PARAMETERISED:
                raise
            # degenerate-fanout machine (e.g. M = B): the recursive sorts
            # cannot run; selection (and ram, when it fits) remain
            continue
    if not out:
        raise ValueError("no applicable algorithms for this (n, params)")
    out.sort(
        key=lambda c: (
            c.predicted_cost,
            c.predicted_writes,
            _TIE_PREFERENCE[c.algorithm],
        )
    )
    return out


def plan_sort(
    n: int,
    params: MachineParams,
    algorithms: tuple[str, ...] | None = None,
    k_max: int | None = None,
    constants: "CostConstants | None" = None,
) -> SortPlan:
    """Build the ranked :class:`SortPlan` for one sorting problem."""
    return SortPlan(
        n=n,
        params=params,
        ranked=tuple(rank_plans(n, params, algorithms, k_max, constants=constants)),
    )


def predict_stream_io(n: int, params: MachineParams, k: int) -> tuple[float, float]:
    """Predicted total ``(reads, writes)`` for a buffer-tree streaming
    session: ``n`` ingested records followed by a full sorted drain.

    Ingest + drain is ``2n`` buffer-tree operations, each at the Theorem
    4.10 amortized per-operation bounds (unit leading constants), floored at
    one scan each way — the same physical lower bound
    :func:`predict_candidate` applies.  This is the closed form the
    engine's :class:`~repro.engine.StreamSession` reports against and the
    streaming benchmark asserts as an upper-bound shape.
    """
    if n <= 0:
        return 0.0, 0.0
    floor = float(math.ceil(n / params.B))
    r = max(_heapsort_reads(n, params.M, params.B, k), floor)
    w = max(_heapsort_writes(n, params.M, params.B, k), floor)
    return r, w


def predict_shard_merge_io(n: int, params: MachineParams, k: int) -> tuple[float, float]:
    """Predicted ``(reads, writes)`` for the coordinator's k-way merge of
    ``k`` sorted shards totalling ``n`` records (balanced split).

    One streaming pass: every shard block is read once and every output
    block written once — ``sum_i ceil(n_i/B)`` reads, ``ceil(n/B)`` writes
    (exactly what the ``shardmerge`` kernel charges and its EXACT cost
    contract certifies).  Floored at one scan each way like every other
    prediction here.
    """
    if n <= 0:
        return 0.0, 0.0
    floor = float(math.ceil(n / params.B))
    r = max(shard_merge_reads(n, params.B, k), floor)
    w = max(shard_merge_writes(n, params.B), floor)
    return r, w


@dataclass(frozen=True)
class ClusterShardPlan:
    """The scatter plan for one job fanned out over ``hosts`` cluster hosts.

    ``shard_sizes`` is the balanced target split the splitter sampling aims
    for (realized shard sizes depend on the data's quantiles); the merge
    prediction is evaluated at this target, which is where the
    ``shardmerge`` read form is minimised, so it is the honest planning
    figure for a well-sampled scatter.
    """

    n: int
    hosts: int
    shard_sizes: tuple[int, ...]
    #: records the coordinator samples to pick splitters
    sample_size: int
    #: number of splitters (``hosts - 1``)
    splitter_count: int
    predicted_merge_reads: float
    predicted_merge_writes: float
    #: ``reads + omega * writes`` for the coordinator-side merge
    predicted_merge_cost: float

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "hosts": self.hosts,
            "shard_sizes": list(self.shard_sizes),
            "sample_size": self.sample_size,
            "splitter_count": self.splitter_count,
            "predicted_merge_reads": self.predicted_merge_reads,
            "predicted_merge_writes": self.predicted_merge_writes,
            "predicted_merge_cost": self.predicted_merge_cost,
        }


def plan_cluster_shards(
    n: int,
    hosts: int,
    params: MachineParams,
    *,
    oversample: int = 32,
) -> ClusterShardPlan:
    """Plan the scatter of an ``n``-record job across ``hosts`` hosts.

    Mirrors Theorem 4.5's sample-and-split structure one level up: draw an
    ``oversample``-per-host sample, pick ``hosts - 1`` splitters at even
    sample quantiles, scatter, and merge the sorted shards back with the
    ``shardmerge`` kernel.  Returns the balanced target split and the
    predicted merge I/O the cluster's :class:`~repro.api.SortReport` is
    judged against.
    """
    if hosts < 1:
        raise ValueError(f"hosts must be >= 1, got {hosts}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    q, r = divmod(n, hosts)
    sizes = tuple(q + 1 if i < r else q for i in range(hosts))
    sample_size = min(n, hosts * max(1, oversample))
    reads, writes = predict_shard_merge_io(n, params, hosts)
    return ClusterShardPlan(
        n=n,
        hosts=hosts,
        shard_sizes=sizes,
        sample_size=sample_size,
        splitter_count=hosts - 1,
        predicted_merge_reads=reads,
        predicted_merge_writes=writes,
        predicted_merge_cost=reads + params.omega * writes,
    )
