"""Process-pool sharded batch execution.

The pure-Python AEM simulation is CPU-bound, so the thread executor in
:mod:`~repro.planner.batch` cannot scale wall-clock throughput past one core
under CPython's GIL.  This module supplies the scale-out path behind
``run_batch(..., executor="process")``:

1. :func:`partition_jobs` deals the job list round-robin into ``num_shards``
   shards (round-robin balances mixed job sizes better than contiguous
   chunks), remembering each job's original submission index;
2. :func:`execute_shard` runs one shard inside a worker process — a fresh
   simulated machine per job, a shard-local
   :class:`~repro.planner.plan_cache.PlanCache` for adaptive planning, and
   per-job failure capture identical to the thread executor's;
3. :func:`merge_shard_reports` folds the per-shard
   :class:`~repro.planner.batch.BatchReport`\\ s back into one report with
   successes and failures in original submission order and cache stats
   summed.

Everything crossing the process boundary (jobs in; shard reports out) must
pickle.  :class:`~repro.planner.batch.SortJob` is plain data by design;
captured exceptions are re-pickled defensively (an exception type with a
non-trivial constructor is replaced by a ``RuntimeError`` carrying its repr,
rather than poisoning the whole shard's result).

Persistent workers
------------------
:class:`repro.service.SortService` needs workers that *outlive* one batch
(the whole point of a submission API is not rebuilding the pool per call),
so this module also provides the persistent-pool primitives:
:func:`spawn_persistent_worker` forks a long-lived worker process speaking a
simple request/response protocol over a pipe (one in-flight job per worker),
and :func:`persistent_worker_loop` is its body — a shard whose job list
arrives one message at a time instead of up front.  Each worker owns a
worker-local :class:`PlanCache` (seedable from a parent snapshot) exactly
like a one-shot shard.  A worker that dies mid-job surfaces to the parent as
a broken pipe; the service fails that job with :class:`WorkerDiedError` and
respawns the worker (failure isolation identical in spirit to the one-shot
path's lost-shard handling below).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..core.kernels import get_default_kernel, set_default_kernel
from .batch import BatchReport, JobFailure, SortJob, execute_and_check
from .plan_cache import PlanCache


class WorkerDiedError(RuntimeError):
    """A persistent pool worker process died while a job was in flight.

    Only the in-flight job fails with this; the pool respawns the worker and
    subsequent submissions run normally.
    """


@dataclass
class ShardResult:
    """One worker's outcome: a shard-local report plus, for each successful
    report (same order), the job's original submission index."""

    indices: list[int] = field(default_factory=list)
    report: BatchReport = field(default_factory=lambda: BatchReport(executor="process"))


def default_shard_count(n_jobs: int) -> int:
    """One shard per core, never more shards than jobs, at least one."""
    return max(1, min(os.cpu_count() or 1, n_jobs))


def partition_jobs(
    jobs: Sequence[SortJob], num_shards: int
) -> list[list[tuple[int, SortJob]]]:
    """Deal ``jobs`` round-robin into at most ``num_shards`` non-empty shards,
    tagging each job with its original submission index."""
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    shards: list[list[tuple[int, SortJob]]] = [[] for _ in range(num_shards)]
    for i, job in enumerate(jobs):
        shards[i % num_shards].append((i, job))
    return [s for s in shards if s]


def _picklable_error(exc: Exception) -> Exception:
    """``exc`` if it survives a pickle round-trip, else a stand-in that does."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 — any pickling failure gets the stand-in
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def execute_shard(
    shard: list[tuple[int, SortJob]],
    check_sorted: bool = False,
    constants=None,
    warm_entries=None,
    kernel: str | None = None,
) -> ShardResult:
    """Run one shard sequentially (this *is* the unit of parallelism) with a
    shard-local plan cache; mirror of the thread executor's per-job semantics.

    ``warm_entries`` (a :meth:`PlanCache.snapshot`) pre-seeds the shard-local
    cache so repeated job shapes hit immediately instead of re-ranking once
    per shard.  ``kernel`` pins the block-kernel mode for the whole shard —
    the orchestrator passes its own default so a ``kernel_mode(...)`` block
    around a process batch governs the worker processes too (a module
    global does not cross ``fork``/``spawn`` on its own).
    """
    if kernel is not None:
        set_default_kernel(kernel)
    cache = PlanCache()
    if warm_entries:
        cache.seed(warm_entries)
    result = ShardResult()
    for index, job in shard:
        try:
            rep = execute_and_check(
                index, job, cache=cache, constants=constants, check_sorted=check_sorted
            )
            result.indices.append(index)
            result.report.reports.append(rep)
        except Exception as exc:  # noqa: BLE001 — captured per job by design
            result.report.failures.append(
                JobFailure(index=index, label=job.label, error=_picklable_error(exc))
            )
    result.report.plan_hits, result.report.plan_misses = cache.hits, cache.misses
    return result


def merge_shard_reports(results: Sequence[ShardResult]) -> BatchReport:
    """Fold per-shard reports into one: submission order restored, cache
    stats summed.  ``wall_seconds`` is left at 0 for the caller to stamp
    (only the orchestrator sees the full span)."""
    merged = BatchReport(executor="process")
    tagged = []
    for res in results:
        tagged.extend(zip(res.indices, res.report.reports))
        merged.failures.extend(res.report.failures)
        merged.plan_hits += res.report.plan_hits
        merged.plan_misses += res.report.plan_misses
        merged.shard_plan_stats.append((res.report.plan_hits, res.report.plan_misses))
    tagged.sort(key=lambda pair: pair[0])
    merged.reports = [rep for _, rep in tagged]
    merged.failures.sort(key=lambda f: f.index)
    return merged


def run_sharded(
    jobs: Sequence[SortJob],
    num_shards: int | None = None,
    check_sorted: bool = False,
    constants=None,
    warm_entries=None,
) -> BatchReport:
    """Partition → one worker process per shard → merged :class:`BatchReport`.

    ``num_shards`` defaults to :func:`default_shard_count`.  A single shard
    short-circuits the pool entirely (no point forking to serialise).
    ``warm_entries`` pre-seeds every shard's plan cache with the parent's
    hot entries (:meth:`PlanCache.snapshot`).
    """
    if not jobs:
        return BatchReport(executor="process")
    if num_shards is None:
        num_shards = default_shard_count(len(jobs))
    num_shards = max(1, min(num_shards, len(jobs)))
    shards = partition_jobs(jobs, num_shards)
    if len(shards) == 1:
        return merge_shard_reports(
            [execute_shard(shards[0], check_sorted, constants, warm_entries)]
        )
    kernel = get_default_kernel()
    results = []
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        futures = [
            pool.submit(
                execute_shard, shard, check_sorted, constants, warm_entries, kernel
            )
            for shard in shards
        ]
        for shard, fut in zip(shards, futures):
            try:
                results.append(fut.result())
            except Exception as exc:  # noqa: BLE001 — e.g. BrokenProcessPool
                # a dead worker (OOM kill, segfault) must not abort the batch
                # or discard completed shards: record every job of the lost
                # shard as failed, mirroring the thread executor's per-job
                # failure-capture contract as closely as a process death
                # allows.  Note a broken pool fails *every* unfinished future,
                # so the message claims only that this shard didn't complete —
                # the dying worker may have been another shard's.
                lost = ShardResult()
                lost.report.failures.extend(
                    JobFailure(
                        index=index,
                        label=job.label,
                        error=RuntimeError(f"shard did not complete: {exc!r}"),
                    )
                    for index, job in shard
                )
                results.append(lost)
    return merge_shard_reports(results)


# ---------------------------------------------------------------------- #
# persistent workers (the SortService pool)
# ---------------------------------------------------------------------- #
def persistent_worker_loop(conn, constants=None, warm_entries=None,
                           kernel=None) -> None:
    """Body of one long-lived worker process: a shard fed one message at a
    time.

    Protocol (lockstep request/response over ``conn``):

    * ``("job", index, job, check_sorted[, kernel])`` → ``("ok", report,
      dh, dm)`` or ``("err", picklable_exception, dh, dm)`` where ``dh``/
      ``dm`` are this job's plan-cache hit/miss deltas and the optional
      ``kernel`` pins the block-kernel mode for this job (the parent's
      default at submission time — module globals do not cross processes);
    * ``("seed", entries)`` → ``("seeded", installed, 0, 0)`` — install a
      parent :meth:`PlanCache.snapshot` into the worker-local cache;
    * ``("stop",)`` or ``None`` → exit.

    The worker-local cache persists across jobs — that is the point of a
    persistent pool: repeated job shapes stop paying the ranking after the
    first submission, without any cross-process shared state.
    """
    if kernel is not None:
        set_default_kernel(kernel)
    cache = PlanCache()
    if warm_entries:
        cache.seed(warm_entries)
    while True:
        msg = conn.recv()
        if msg is None or msg[0] == "stop":
            break
        if msg[0] == "seed":
            conn.send(("seeded", cache.seed(msg[1]), 0, 0))
            continue
        if len(msg) == 5:
            _kind, index, job, check_sorted, job_kernel = msg
            if job_kernel is not None:
                set_default_kernel(job_kernel)
        else:
            _kind, index, job, check_sorted = msg
        hits0, misses0 = cache.hits, cache.misses
        try:
            rep = execute_and_check(
                index, job, cache=cache, constants=constants, check_sorted=check_sorted
            )
            reply = ("ok", rep, cache.hits - hits0, cache.misses - misses0)
        except Exception as exc:  # noqa: BLE001 — captured per job by design
            reply = (
                "err",
                _picklable_error(exc),
                cache.hits - hits0,
                cache.misses - misses0,
            )
        conn.send(reply)
    conn.close()


def spawn_persistent_worker(constants=None, warm_entries=None):
    """Fork one persistent worker; returns ``(process, parent_conn)``.

    The process is a daemon (it must never outlive the service that owns
    it); exactly one job is in flight per worker, so the pipe needs no
    framing beyond the lockstep protocol.
    """
    parent_conn, child_conn = multiprocessing.Pipe()
    proc = multiprocessing.Process(
        target=persistent_worker_loop,
        args=(child_conn, constants, warm_entries, get_default_kernel()),
        daemon=True,
    )
    proc.start()
    child_conn.close()
    return proc, parent_conn


def stop_persistent_worker(proc, conn, timeout: float = 5.0) -> None:
    """Best-effort orderly stop: send the stop message, join, then escalate
    to terminate if the worker does not exit (e.g. wedged mid-job)."""
    try:
        conn.send(("stop",))
    except (OSError, BrokenPipeError):
        pass  # already dead — nothing to stop
    proc.join(timeout)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout)
    conn.close()
