"""Adaptive sort planning and batch execution.

The paper's headline message is that the *best* sorting algorithm depends on
the machine ``(M, B, omega)`` and the input size ``n``: Theorem 4.3
(mergesort), Theorem 4.5 (sample sort), Theorem 4.10 (heapsort via the
buffer-tree priority queue) and Lemma 4.2 (selection base case) trade reads
against writes differently, and Corollary 4.4 bounds the useful branching
factors.  This subsystem turns those closed forms into an executable planner:

* :mod:`~repro.planner.cost_model` — rank every algorithm (with its own best
  ``k``) by exact predicted asymmetric I/O cost and emit a :class:`SortPlan`;
* :mod:`~repro.planner.batch` — execute many planned sort jobs concurrently
  (``concurrent.futures``) and aggregate their reports into a throughput
  summary.

The :func:`repro.api.sort_auto` façade and the ``python -m repro plan`` /
``batch`` CLI subcommands are thin wrappers over these two modules.
"""

from .batch import BatchReport, SortJob, run_batch
from .cost_model import (
    PLANNABLE_ALGORITHMS,
    PlanCandidate,
    SortPlan,
    plan_sort,
    predict_candidate,
    rank_plans,
)

__all__ = [
    "BatchReport",
    "PLANNABLE_ALGORITHMS",
    "PlanCandidate",
    "SortJob",
    "SortPlan",
    "plan_sort",
    "predict_candidate",
    "rank_plans",
    "run_batch",
]
