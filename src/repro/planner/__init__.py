"""Adaptive sort planning and batch execution.

The paper's headline message is that the *best* sorting algorithm depends on
the machine ``(M, B, omega)`` and the input size ``n``: Theorem 4.3
(mergesort), Theorem 4.5 (sample sort), Theorem 4.10 (heapsort via the
buffer-tree priority queue) and Lemma 4.2 (selection base case) trade reads
against writes differently, and Corollary 4.4 bounds the useful branching
factors.  This subsystem turns those closed forms into an executable planner:

* :mod:`~repro.planner.cost_model` — rank every algorithm (with its own best
  ``k``) by exact predicted asymmetric I/O cost and emit a :class:`SortPlan`;
* :mod:`~repro.planner.calibration` — fit per-algorithm leading constants
  from measured runs (:class:`CostConstants`) so the ranking reflects this
  implementation rather than unit-constant theory;
* :mod:`~repro.planner.plan_cache` — memoise rankings (pure functions of
  ``(n, machine, constants)``) with hit/miss accounting;
* :mod:`~repro.planner.batch` — execute many planned sort jobs concurrently
  and aggregate their reports into a throughput summary;
* :mod:`~repro.planner.sharding` — the ``executor="process"`` backend:
  partition jobs into per-process shards and merge the per-shard reports for
  real multi-core wall-clock scaling.

The :class:`repro.engine.SortEngine` session façade (and through it the
legacy :func:`repro.api.sort_auto` / :func:`run_batch` shims and the
``python -m repro plan`` / ``batch`` / ``calibrate`` / ``stream`` CLI
subcommands) is a thin wrapper over these modules.
"""

from .batch import BatchReport, JobFailure, SortJob, execute_batch, run_batch
from .calibration import (
    CALIBRATABLE_ALGORITHMS,
    CalibrationSample,
    CostConstants,
    RankingComparison,
    calibrate,
    compare_rankings,
    fit_constants,
    measure_samples,
)
from .cost_model import (
    PLANNABLE_ALGORITHMS,
    ClusterShardPlan,
    PlanCandidate,
    SortPlan,
    plan_cluster_shards,
    plan_sort,
    predict_candidate,
    predict_shard_merge_io,
    rank_plans,
)
from .plan_cache import PlanCache
from .sharding import ShardResult, merge_shard_reports, partition_jobs, run_sharded

__all__ = [
    "BatchReport",
    "CALIBRATABLE_ALGORITHMS",
    "CalibrationSample",
    "ClusterShardPlan",
    "CostConstants",
    "JobFailure",
    "PLANNABLE_ALGORITHMS",
    "PlanCache",
    "PlanCandidate",
    "RankingComparison",
    "ShardResult",
    "SortJob",
    "SortPlan",
    "calibrate",
    "compare_rankings",
    "execute_batch",
    "fit_constants",
    "measure_samples",
    "merge_shard_reports",
    "partition_jobs",
    "plan_cluster_shards",
    "plan_sort",
    "predict_candidate",
    "predict_shard_merge_io",
    "rank_plans",
    "run_batch",
    "run_sharded",
]
