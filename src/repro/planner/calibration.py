"""Calibrated leading constants for the planner's predicted bounds.

The closed forms in :mod:`~repro.planner.cost_model` carry unit leading
constants — correct asymptotics, but a ranking artifact: sample sort's
``k ceil(n/B) L`` read bound dominates mergesort's ``(k+1) ceil(n/B) L`` by
construction, so mergesort can never win a unit-constant comparison no matter
how this *implementation* actually behaves.

This module closes that gap.  It measures the real sorts on a calibration
workload, fits one multiplicative constant per ``(family, currency)`` by
least squares through the origin

    c  =  argmin_c  sum_i (measured_i - c * predicted_i)^2
       =  sum_i measured_i * predicted_i / sum_i predicted_i^2,

and packages the result as an immutable :class:`CostConstants` that
:func:`~repro.planner.cost_model.predict_candidate` (and everything above it:
``rank_plans`` / ``plan_sort`` / ``sort_auto`` / ``run_batch``) accepts via
the optional ``constants=`` parameter.  Unlisted families fall back to the
unit constant, so a partially-fitted table is always safe to use.

``CostConstants`` is hashable (a frozen tuple of entries), which lets it
participate in :class:`~repro.planner.plan_cache.PlanCache` keys, and it
round-trips through JSON for the ``python -m repro calibrate --save`` /
``plan --constants`` workflow.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import dataclass

from ..models.params import MachineParams
from .cost_model import PlanCandidate, predict_candidate, rank_plans

#: families fitted by default: the four external sorts of §4 (the ``ram``
#: plan's transfer count is exactly ``ceil(n/B)`` each way — constant 1 by
#: construction, nothing to fit)
CALIBRATABLE_ALGORITHMS = ("selection", "samplesort", "mergesort", "heapsort")

#: default calibration workload sizes — spans ~2-4 recursion levels on the
#: small test machines without making `python -m repro calibrate` slow
DEFAULT_SIZES = (512, 2048, 8192)


@dataclass(frozen=True)
class CostConstants:
    """Per-family multiplicative constants for predicted reads and writes.

    ``entries`` is a sorted tuple of ``(family, read_constant,
    write_constant)`` rows; families not listed use 1.0 (the unit-constant
    theory form).  Frozen + tuple-backed so instances are hashable and can
    key a :class:`~repro.planner.plan_cache.PlanCache`.
    """

    entries: tuple[tuple[str, float, float], ...] = ()

    @classmethod
    def from_mapping(cls, mapping: dict) -> "CostConstants":
        """Build from ``{family: (read_constant, write_constant)}``."""
        rows = []
        for family, (cr, cw) in sorted(mapping.items()):
            if cr <= 0 or cw <= 0:
                raise ValueError(
                    f"constants must be positive, got {family}: ({cr}, {cw})"
                )
            rows.append((family, float(cr), float(cw)))
        return cls(entries=tuple(rows))

    def as_mapping(self) -> dict[str, tuple[float, float]]:
        return {family: (cr, cw) for family, cr, cw in self.entries}

    def families(self) -> tuple[str, ...]:
        return tuple(family for family, _, _ in self.entries)

    def read_constant(self, family: str) -> float:
        for name, cr, _ in self.entries:
            if name == family:
                return cr
        return 1.0

    def write_constant(self, family: str) -> float:
        for name, _, cw in self.entries:
            if name == family:
                return cw
        return 1.0

    # ------------------------------------------------------------------ #
    # JSON round-trip (the ``calibrate --save`` / ``plan --constants`` path)
    # ------------------------------------------------------------------ #
    def to_json(self) -> str:
        return json.dumps(
            {family: [cr, cw] for family, cr, cw in self.entries},
            indent=2,
            sort_keys=True,
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "CostConstants":
        with open(path, encoding="utf-8") as fh:
            raw = json.load(fh)
        return cls.from_mapping({k: (v[0], v[1]) for k, v in raw.items()})


#: the unit-constant table (pure theory); ``constants=None`` means the same
UNIT_CONSTANTS = CostConstants()


@dataclass(frozen=True)
class CalibrationSample:
    """One measured run paired with its unit-constant prediction."""

    family: str
    n: int
    k: int | None
    measured_reads: int
    measured_writes: int
    predicted_reads: float
    predicted_writes: float

    def measured_cost(self, omega: float) -> float:
        return self.measured_reads + omega * self.measured_writes

    def as_dict(self) -> dict:
        return {
            "family": self.family,
            "n": self.n,
            "k": self.k,
            "measured_reads": self.measured_reads,
            "measured_writes": self.measured_writes,
            "predicted_reads": self.predicted_reads,
            "predicted_writes": self.predicted_writes,
        }


def measure_samples(
    params: MachineParams,
    sizes: Sequence[int] = DEFAULT_SIZES,
    algorithms: Sequence[str] = CALIBRATABLE_ALGORITHMS,
    scenario: str = "uniform",
    seed: int = 0,
) -> list[CalibrationSample]:
    """Run every algorithm over the calibration workload and record measured
    vs unit-predicted block counts.

    Each algorithm runs at the branching factor the unit-constant planner
    would pick for it (so the fit calibrates exactly the candidates the
    ranking compares).  An algorithm that is infeasible on ``params``
    (degenerate merge fanout) is skipped rather than failing the sweep.
    """
    from ..engine import SortEngine
    from ..workloads import calibration_suite

    engine = SortEngine(params)  # one engine across the whole sweep
    samples: list[CalibrationSample] = []
    for n, data in calibration_suite(sizes, scenario=scenario, seed=seed):
        for algorithm in algorithms:
            try:
                cand = predict_candidate(algorithm, n, params)
            except ValueError:
                continue  # infeasible on this machine (e.g. M = B)
            rep = engine.sort(data, algorithm=algorithm, k=cand.k)
            samples.append(
                CalibrationSample(
                    family=rep.family,
                    n=n,
                    k=cand.k,
                    measured_reads=rep.reads,
                    measured_writes=rep.writes,
                    predicted_reads=cand.predicted_reads,
                    predicted_writes=cand.predicted_writes,
                )
            )
    return samples


def fit_constants(samples: Sequence[CalibrationSample]) -> CostConstants:
    """Least-squares-through-origin fit of one ``(read, write)`` constant pair
    per family present in ``samples``.

    A family whose predictions are all zero (empty inputs only) keeps the
    unit constant — there is nothing to fit.
    """
    by_family: dict[str, list[CalibrationSample]] = {}
    for s in samples:
        by_family.setdefault(s.family, []).append(s)

    mapping: dict[str, tuple[float, float]] = {}
    for family, group in by_family.items():
        cr = _ls_through_origin(
            [(s.measured_reads, s.predicted_reads) for s in group]
        )
        cw = _ls_through_origin(
            [(s.measured_writes, s.predicted_writes) for s in group]
        )
        mapping[family] = (cr, cw)
    return CostConstants.from_mapping(mapping)


def ls_through_origin(pairs: Sequence[tuple[float, float]]) -> float:
    """``argmin_c sum (m - c p)^2`` over ``(measured, predicted)`` pairs.

    Degenerate inputs (all-zero predictions, or a non-positive cross term)
    keep the unit constant — there is nothing to fit.  Public because the
    cost certifier (:mod:`repro.analysis.boundcheck`) fits its per-machine
    envelope constants with exactly this estimator.
    """
    num = sum(m * p for m, p in pairs)
    den = sum(p * p for _, p in pairs)
    if den == 0 or num <= 0:
        return 1.0
    return num / den


#: historical private name, kept for callers predating the certifier
_ls_through_origin = ls_through_origin


def calibrate(
    params: MachineParams,
    sizes: Sequence[int] = DEFAULT_SIZES,
    algorithms: Sequence[str] = CALIBRATABLE_ALGORITHMS,
    scenario: str = "uniform",
    seed: int = 0,
) -> CostConstants:
    """Measure + fit in one call: the ``python -m repro calibrate`` core."""
    return fit_constants(
        measure_samples(params, sizes=sizes, algorithms=algorithms, scenario=scenario, seed=seed)
    )


@dataclass(frozen=True)
class RankingComparison:
    """Predicted (calibrated) vs measured ranking at one probe size."""

    ranked: tuple[PlanCandidate, ...]
    predicted_order: tuple[str, ...]
    measured_order: tuple[str, ...]
    #: measured asymmetric cost per algorithm, at the planned ``k``
    measured_costs: dict

    @property
    def agree(self) -> bool:
        return self.predicted_order == self.measured_order


def compare_rankings(
    params: MachineParams,
    constants: CostConstants | None,
    probe: int,
    algorithms: Sequence[str] = CALIBRATABLE_ALGORITHMS,
    scenario: str = "uniform",
    seed: int = 0,
) -> RankingComparison:
    """Rank ``algorithms`` at ``probe`` under ``constants``, execute every
    candidate at its planned ``k`` on one probe input, and report whether the
    predicted order matches the measured-cost order.

    The single source of truth for the ``calibrate`` CLI's agreement table
    and the CI benchmark's agreement assertion.
    """
    from ..engine import SortEngine
    from ..workloads import make_scenario

    ranked = tuple(
        rank_plans(probe, params, algorithms=tuple(algorithms), constants=constants)
    )
    engine = SortEngine(params)
    data = make_scenario(scenario, probe, seed=seed)
    measured = {}
    for cand in ranked:
        rep = engine.sort(data, algorithm=cand.algorithm, k=cand.k)
        measured[cand.algorithm] = rep.cost()
    return RankingComparison(
        ranked=ranked,
        predicted_order=tuple(c.algorithm for c in ranked),
        measured_order=tuple(sorted(measured, key=measured.get)),
        measured_costs=measured,
    )
