"""Access-trace utilities for offline cache replay and scheduler simulation.

A *trace* is a list of ``(block_id, is_write)`` pairs, the granularity at
which every cache policy in :mod:`repro.models.ideal_cache` operates.  This
module provides helpers to capture a trace from a computation, summarise it,
and generate synthetic traces with controlled locality for the Lemma-2.1
experiments (E7).
"""

from __future__ import annotations

import random
from collections.abc import Callable

from .counters import CostCounter
from .ideal_cache import CacheSim, simulate_trace
from .params import MachineParams


def capture_trace(
    computation: Callable[[CacheSim], None], params: MachineParams
) -> list[tuple[int, bool]]:
    """Run ``computation(cache)`` with trace recording on; return the trace.

    The cache used for capture is a throwaway — only the access sequence
    matters, and the sequence is policy-independent (policies decide costs,
    not which addresses a deterministic computation touches).
    """
    cache = CacheSim(params, policy="lru", record_trace=True)
    computation(cache)
    return cache.trace


def trace_stats(trace: list[tuple[int, bool]]) -> dict:
    """Basic shape statistics of a trace (length, write fraction, blocks)."""
    n = len(trace)
    writes = sum(1 for _b, w in trace if w)
    blocks = len({b for b, _w in trace})
    return {
        "accesses": n,
        "writes": writes,
        "write_fraction": writes / n if n else 0.0,
        "distinct_blocks": blocks,
    }


def compare_policies(
    trace: list[tuple[int, bool]],
    params: MachineParams,
    policies: tuple[str, ...] = ("lru", "rwlru", "belady"),
) -> dict[str, CostCounter]:
    """Replay one trace under several policies; return counters per policy."""
    return {p: simulate_trace(trace, params, policy=p) for p in policies}


# ---------------------------------------------------------------------- #
# synthetic traces for E7
# ---------------------------------------------------------------------- #
def random_trace(
    n_accesses: int,
    n_blocks: int,
    write_fraction: float = 0.3,
    seed: int = 0,
) -> list[tuple[int, bool]]:
    """Uniform random block accesses (worst-case locality)."""
    rng = random.Random(seed)
    return [
        (rng.randrange(n_blocks), rng.random() < write_fraction)
        for _ in range(n_accesses)
    ]


def looping_trace(
    n_loops: int, n_blocks: int, write_fraction: float = 0.3, seed: int = 0
) -> list[tuple[int, bool]]:
    """Cyclic scans over ``n_blocks`` — the classic LRU adversary."""
    rng = random.Random(seed)
    out = []
    for _ in range(n_loops):
        for b in range(n_blocks):
            out.append((b, rng.random() < write_fraction))
    return out


def zipf_trace(
    n_accesses: int,
    n_blocks: int,
    skew: float = 1.2,
    write_fraction: float = 0.3,
    seed: int = 0,
) -> list[tuple[int, bool]]:
    """Skewed popularity (hot blocks), typical of real workloads."""
    rng = random.Random(seed)
    weights = [1.0 / (i + 1) ** skew for i in range(n_blocks)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)

    def pick() -> int:
        x = rng.random()
        lo, hi = 0, n_blocks - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        return lo

    return [(pick(), rng.random() < write_fraction) for _ in range(n_accesses)]
