"""The Asymmetric RAM model: word-granularity read/write counting.

§2 of the paper: *"This is the standard RAM model but with a cost ω > 1 for
writes, while reads are still unit cost."*

:class:`InstrumentedArray` wraps a Python list so every ``a[i]`` charges one
element read and every ``a[i] = v`` charges one element write to a shared
:class:`~repro.models.counters.CostCounter`.  The RAM-model sorting algorithms
of §3 (and their write-heavy classic baselines) run against it.

Comparisons between *records already held in registers* are free in the model;
only memory traffic is charged.  Consequently algorithms should read a value
once into a local variable rather than indexing repeatedly — exactly the
discipline the model rewards.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .counters import CostCounter


class InstrumentedArray:
    """A fixed-length array charging element reads/writes to a counter.

    Parameters
    ----------
    data:
        Initial contents.  Loading the initial contents is *not* charged
        (inputs are assumed to already reside in memory); pass
        ``charge_init=True`` to charge one write per record instead.
    counter:
        Shared :class:`CostCounter`; a fresh one is created if omitted.
    """

    __slots__ = ("_data", "counter", "name")

    def __init__(
        self,
        data: Iterable,
        counter: CostCounter | None = None,
        *,
        charge_init: bool = False,
        name: str = "",
    ):
        self._data = list(data)
        self.counter = counter if counter is not None else CostCounter()
        self.name = name
        if charge_init:
            self.counter.charge_write(len(self._data))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, idx: int):
        if isinstance(idx, slice):
            raise TypeError(
                "InstrumentedArray does not support slicing; "
                "read elements individually so every read is charged"
            )
        self.counter.charge_read()
        return self._data[idx]

    def __setitem__(self, idx: int, value) -> None:
        if isinstance(idx, slice):
            raise TypeError("InstrumentedArray does not support slice assignment")
        self.counter.charge_write()
        self._data[idx] = value

    def __iter__(self) -> Iterator:
        """Iterate over elements, charging one read each."""
        for i in range(len(self._data)):
            self.counter.charge_read()
            yield self._data[i]

    # ------------------------------------------------------------------ #
    def peek_list(self) -> list:
        """Uncharged copy of the contents — for *verification only*.

        Tests use this to check sortedness without perturbing the counters.
        """
        return list(self._data)

    def swap(self, i: int, j: int) -> None:
        """Swap two elements: 2 reads + 2 writes (the RAM-model cost)."""
        self.counter.charge_read(2)
        self.counter.charge_write(2)
        self._data[i], self._data[j] = self._data[j], self._data[i]

    @classmethod
    def empty(
        cls, n: int, counter: CostCounter | None = None, name: str = ""
    ) -> "InstrumentedArray":
        """Allocate an array of ``n`` ``None`` slots (allocation is free)."""
        return cls([None] * n, counter, name=name)
