"""Cost accounting primitives shared by every machine model.

The paper never measures wall-clock time: every theorem is a statement about
*counts* of reads and writes (at word granularity for the RAM/PRAM models, at
block granularity for the EM/cache models), combined into an I/O cost
``reads + omega * writes``.  :class:`CostCounter` is the single source of
truth for those counts.  Machine models charge it; experiments snapshot it.

Two granularities are tracked independently:

* ``element_reads`` / ``element_writes`` — word-level operations (RAM, PRAM).
* ``block_reads`` / ``block_writes`` — block transfers (AEM, ideal cache).

An algorithm typically exercises only one granularity, but mixed accounting is
legal (e.g., the PRAM sort counts element operations while its analysis module
converts them to cost).

Validation asymmetry
--------------------
The single-charge methods (:meth:`CostCounter.charge_block_read` /
:meth:`~CostCounter.charge_block_write`) are the per-event hot path — one
call per block transfer — and stay **branch-free**: they accept any ``n``
without checking it.  The batch methods (:meth:`~CostCounter.charge_reads` /
:meth:`~CostCounter.charge_writes`) amortize one counter update over a whole
scan, so their single branch is negligible and they reject negative counts
(a negative batch would silently *uncharge* I/O, corrupting every downstream
claim).  The asymmetry is deliberate; it is closed at test time by the
``iosan`` sanitizer (:mod:`repro.analysis.iosan`), which patches the
single-charge methods with validating versions so a negative ``n`` on any
path raises under ``REPRO_IOSAN=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class CostCounter:
    """Mutable tally of reads and writes at element and block granularity.

    Instances support subtraction (producing a delta counter), snapshots, and
    asymmetric-cost evaluation.  All counts are non-negative integers.
    """

    element_reads: int = 0
    element_writes: int = 0
    block_reads: int = 0
    block_writes: int = 0

    # ------------------------------------------------------------------ #
    # charging
    # ------------------------------------------------------------------ #
    def charge_read(self, n: int = 1) -> None:
        """Charge ``n`` element (word) reads."""
        self.element_reads += n

    def charge_write(self, n: int = 1) -> None:
        """Charge ``n`` element (word) writes."""
        self.element_writes += n

    def charge_block_read(self, n: int = 1) -> None:
        """Charge ``n`` block transfers from secondary to primary memory.

        Hot path (no validation): :meth:`charge_reads` is the batch-named
        alias with a negative-count guard — keep the two in lockstep.
        """
        self.block_reads += n

    def charge_block_write(self, n: int = 1) -> None:
        """Charge ``n`` block transfers from primary to secondary memory.

        Hot path (no validation): :meth:`charge_writes` is the batch-named
        alias with a negative-count guard — keep the two in lockstep.
        """
        self.block_writes += n

    # ------------------------------------------------------------------ #
    # batch accounting (the block-kernel layer's fast path)
    # ------------------------------------------------------------------ #
    def charge_reads(self, n: int) -> None:
        """Charge ``n`` block reads in one counter update.

        Semantically identical to ``n`` calls of :meth:`charge_block_read`
        — same totals, same granularity (block), same ``block_cost`` — but a
        k-block scan costs one Python-level update instead of k.  The
        vectorized kernels (``AEMachine.scan_blocks``,
        ``BlockWriter.extend_blocks``) charge through this API.
        """
        if n < 0:
            raise ValueError(f"cannot charge {n} block reads")
        self.block_reads += n

    def charge_writes(self, n: int) -> None:
        """Charge ``n`` block writes in one counter update.

        Batch form of :meth:`charge_block_write`; see :meth:`charge_reads`.
        """
        if n < 0:
            raise ValueError(f"cannot charge {n} block writes")
        self.block_writes += n

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def element_cost(self, omega: float) -> float:
        """RAM/PRAM-model cost: ``element_reads + omega * element_writes``."""
        return self.element_reads + omega * self.element_writes

    def block_cost(self, omega: float) -> float:
        """(A)EM-model I/O cost: ``block_reads + omega * block_writes``."""
        return self.block_reads + omega * self.block_writes

    def total_io(self) -> int:
        """Unweighted number of block transfers (the classic EM complexity)."""
        return self.block_reads + self.block_writes

    # ------------------------------------------------------------------ #
    # snapshots & arithmetic
    # ------------------------------------------------------------------ #
    def snapshot(self) -> "CostCounter":
        """Return an immutable-by-convention copy of the current counts."""
        return CostCounter(
            self.element_reads,
            self.element_writes,
            self.block_reads,
            self.block_writes,
        )

    def __sub__(self, other: "CostCounter") -> "CostCounter":
        return CostCounter(
            self.element_reads - other.element_reads,
            self.element_writes - other.element_writes,
            self.block_reads - other.block_reads,
            self.block_writes - other.block_writes,
        )

    def __add__(self, other: "CostCounter") -> "CostCounter":
        return CostCounter(
            self.element_reads + other.element_reads,
            self.element_writes + other.element_writes,
            self.block_reads + other.block_reads,
            self.block_writes + other.block_writes,
        )

    def reset(self) -> None:
        """Zero every tally in place."""
        self.element_reads = 0
        self.element_writes = 0
        self.block_reads = 0
        self.block_writes = 0

    def as_dict(self) -> dict:
        """Plain-dict view, convenient for table rows and JSON dumps."""
        return {
            "element_reads": self.element_reads,
            "element_writes": self.element_writes,
            "block_reads": self.block_reads,
            "block_writes": self.block_writes,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostCounter(eR={self.element_reads}, eW={self.element_writes}, "
            f"bR={self.block_reads}, bW={self.block_writes})"
        )


@dataclass
class Phase:
    """A named accounting region: counter deltas attributed to one stage.

    Used by experiments that break an algorithm's cost into stages (e.g., the
    Figure-1 stage anatomy of the cache-oblivious sort, experiment E14).
    """

    name: str
    delta: CostCounter = field(default_factory=CostCounter)


class PhaseRecorder:
    """Attribute counter deltas to named phases.

    Example
    -------
    >>> counter = CostCounter()
    >>> rec = PhaseRecorder(counter)
    >>> with rec.phase("scan"):
    ...     counter.charge_block_read(10)
    >>> rec.phases[0].delta.block_reads
    10
    """

    def __init__(self, counter: CostCounter):
        self.counter = counter
        self.phases: list[Phase] = []

    def phase(self, name: str) -> "_PhaseCtx":
        """Open a named accounting region (usable as a context manager)."""
        return _PhaseCtx(self, name)

    def totals(self) -> CostCounter:
        """Sum of all recorded phase deltas."""
        total = CostCounter()
        for ph in self.phases:
            total = total + ph.delta
        return total


class _PhaseCtx:
    def __init__(self, recorder: PhaseRecorder, name: str):
        self._rec = recorder
        self._name = name
        self._start: CostCounter | None = None

    def __enter__(self) -> "_PhaseCtx":
        self._start = self._rec.counter.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._start is not None
        delta = self._rec.counter.snapshot() - self._start
        self._rec.phases.append(Phase(self._name, delta))
