"""Asymmetric-cost machine models (§2 of the paper).

Four executable models, all charging a shared
:class:`~repro.models.counters.CostCounter`:

* :mod:`~repro.models.asymmetric_ram` — word-granularity RAM.
* :mod:`~repro.models.pram` — work/depth PRAM accounting.
* :mod:`~repro.models.external_memory` — the AEM machine with explicit block
  transfers.
* :mod:`~repro.models.ideal_cache` — the asymmetric cache simulator
  (LRU / read-write LRU / offline Belady) behind cache-oblivious algorithms.
"""

from .asymmetric_ram import InstrumentedArray
from .counters import CostCounter, PhaseRecorder
from .external_memory import (
    AEMachine,
    BlockReader,
    BlockWriter,
    ExtArray,
    MemoryBudgetExceeded,
    MemoryGuard,
)
from .ideal_cache import CacheSim, SimArray, SimView, simulate_trace
from .params import MEDIUM, SMALL, TINY, MachineParams, parameter_grid
from .pram import DepthTracker

__all__ = [
    "AEMachine",
    "BlockReader",
    "BlockWriter",
    "CacheSim",
    "CostCounter",
    "DepthTracker",
    "ExtArray",
    "InstrumentedArray",
    "MachineParams",
    "MemoryBudgetExceeded",
    "MemoryGuard",
    "PhaseRecorder",
    "SimArray",
    "SimView",
    "MEDIUM",
    "SMALL",
    "TINY",
    "parameter_grid",
    "simulate_trace",
]
