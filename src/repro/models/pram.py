"""The Asymmetric PRAM model: work/depth accounting with ω-weighted writes.

§2 of the paper: *"In the Asymmetric PRAM, the standard PRAM is augmented such
that each write costs ω and all other instructions cost 1."* Algorithms are
analysed by **work** (total cost of operations) and **depth** (parallel time on
unboundedly many processors); Brent's theorem converts the pair into a
``p``-processor running time::

    T(n, p) = O((ω·w(n) + r(n)) / p + d(n))

Python executes sequentially, so we *account* rather than parallelise:
algorithms structure themselves with :meth:`DepthTracker.parallel` /
:meth:`~_ParallelFrame.branch` regions.  Inside a branch, each charged
operation contributes to that branch's own depth; at the join, the enclosing
region's depth grows by the *maximum* branch depth — exactly the nested
fork-join semantics under which the paper states its bounds.  Work (total
reads/writes/ops) accumulates globally in a shared
:class:`~repro.models.counters.CostCounter`.
"""

from __future__ import annotations

from contextlib import contextmanager

from .counters import CostCounter


class DepthTracker:
    """Accumulates work and depth for a nested-parallel computation.

    Parameters
    ----------
    omega:
        Relative write cost; a charged write adds ``omega`` to depth and one
        element write to the work counter.
    counter:
        Shared work counter (element granularity).
    """

    def __init__(self, omega: int, counter: CostCounter | None = None):
        if omega < 1:
            raise ValueError(f"omega must be >= 1, got {omega}")
        self.omega = omega
        self.counter = counter if counter is not None else CostCounter()
        self.other_ops = 0
        self._depth_stack: list[float] = [0.0]

    # ------------------------------------------------------------------ #
    # charging
    # ------------------------------------------------------------------ #
    def charge(self, *, reads: int = 0, writes: int = 0, ops: int = 0) -> None:
        """Charge operations on the *current sequential strand*.

        ``reads`` and ``ops`` add 1 each to depth; ``writes`` add ``omega``.
        """
        if reads:
            self.counter.charge_read(reads)
        if writes:
            self.counter.charge_write(writes)
        self.other_ops += ops
        self._depth_stack[-1] += reads + ops + self.omega * writes

    def charge_work_only(self, *, reads: int = 0, writes: int = 0, ops: int = 0) -> None:
        """Charge work without advancing depth.

        Used when executing a *cited parallel primitive* (Cole's mergesort,
        parallel prefix sums, parallel radix sort) sequentially: the real
        operation counts are charged as work, and the primitive's published
        depth is charged separately via :meth:`charge_depth`.
        """
        if reads:
            self.counter.charge_read(reads)
        if writes:
            self.counter.charge_write(writes)
        self.other_ops += ops

    def charge_depth(self, amount: float) -> None:
        """Advance the current strand's depth by ``amount`` (no work)."""
        if amount < 0:
            raise ValueError("depth charge must be non-negative")
        self._depth_stack[-1] += amount

    def charge_parallel_bulk(
        self, count: int, *, reads: int = 0, writes: int = 0, ops: int = 0
    ) -> None:
        """Charge ``count`` identical parallel iterates in one call.

        Work grows by ``count`` times the per-iterate charges; depth grows by
        a *single* iterate's cost (they run in parallel).  Equivalent to a
        ``parallel_for`` whose every branch charges the same amounts, without
        per-iterate bookkeeping overhead.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self.counter.charge_read(count * reads)
        self.counter.charge_write(count * writes)
        self.other_ops += count * ops
        self._depth_stack[-1] += reads + ops + self.omega * writes

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @contextmanager
    def parallel(self):
        """Open a fork-join region; yields a frame with ``branch()``."""
        frame = _ParallelFrame(self)
        yield frame
        # join: the region costs the deepest branch
        self._depth_stack[-1] += frame.max_branch_depth

    def parallel_for(self, items, body) -> list:
        """Run ``body(item)`` for every item as parallel branches.

        Returns the list of results.  Each iterate's charged operations count
        toward depth independently; the loop's depth contribution is the
        maximum iterate depth (plus nothing for loop control, which the PRAM
        model treats as free scheduling).
        """
        results = []
        with self.parallel() as frame:
            for item in items:
                with frame.branch():
                    results.append(body(item))
        return results

    # ------------------------------------------------------------------ #
    @property
    def depth(self) -> float:
        """Depth accumulated at the top level (all regions must be closed)."""
        if len(self._depth_stack) != 1:
            raise RuntimeError("depth read while parallel regions are still open")
        return self._depth_stack[0]

    @property
    def work(self) -> float:
        """Total asymmetric work: ``reads + ops + omega * writes``."""
        return (
            self.counter.element_reads
            + self.other_ops
            + self.omega * self.counter.element_writes
        )

    def brent_time(self, p: int) -> float:
        """Brent's-theorem running time on ``p`` processors (§2)."""
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        return self.work / p + self.depth


class _ParallelFrame:
    """One fork-join region: tracks the deepest branch seen so far."""

    def __init__(self, tracker: DepthTracker):
        self._tracker = tracker
        self.max_branch_depth = 0.0
        self.branches = 0

    @contextmanager
    def branch(self):
        """One parallel iterate; its charges accrue to a private depth."""
        self._tracker._depth_stack.append(0.0)
        try:
            yield
        finally:
            d = self._tracker._depth_stack.pop()
            if d > self.max_branch_depth:
                self.max_branch_depth = d
            self.branches += 1
