"""The Asymmetric External Memory (AEM) machine.

§2 of the paper: the EM model of Aggarwal & Vitter with a primary memory of
``M`` records, block transfers of ``B`` records, and an extra parameter
``omega`` charged per *block write* (block reads cost 1).

This module provides the executable machine the §4 algorithms run against:

* :class:`ExtArray` — an array living in (simulated) secondary memory,
  partitioned into blocks of ``B`` records; growable (for buffer-tree buffers).
* :class:`AEMachine` — owns the cost counter and the transfer instructions
  ``read_block`` / ``write_block``.
* :class:`BlockReader` / :class:`BlockWriter` — the streaming access patterns
  every algorithm in the paper uses: sequential scans charging one read per
  block, and buffered appends charging one write per flushed block.
* :class:`MemoryGuard` — tracks the number of records an algorithm holds in
  primary memory, with a high-water mark; in strict mode it raises when the
  declared capacity is exceeded.  Tests use it to check the "primary memory
  size (M + 2B + ...)" clauses of Lemma 4.1 / Theorem 4.3 / Theorem 4.5.

Transfers move *copies*: mutating a block obtained from ``read_block`` does
not change secondary memory until it is written back, exactly as in the model.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from .counters import CostCounter
from .params import MachineParams


class MemoryBudgetExceeded(RuntimeError):
    """Raised by a strict :class:`MemoryGuard` on over-allocation."""


class MemoryGuard:
    """Track primary-memory usage (in records) against a declared capacity.

    Parameters
    ----------
    capacity:
        Maximum number of records the algorithm claims to hold at once
        (e.g. ``M + 2B`` for the mergesort merge).  ``None`` disables checks
        but still records the high-water mark.
    strict:
        If true, exceeding the capacity raises :class:`MemoryBudgetExceeded`.
    """

    def __init__(self, capacity: int | None = None, *, strict: bool = False):
        self.capacity = capacity
        self.strict = strict
        self.in_use = 0
        self.high_water = 0

    def acquire(self, n: int) -> None:
        """Declare that ``n`` more records now reside in primary memory."""
        self.in_use += n
        if self.in_use > self.high_water:
            self.high_water = self.in_use
        if self.strict and self.capacity is not None and self.in_use > self.capacity:
            raise MemoryBudgetExceeded(
                f"primary memory over budget: {self.in_use} > {self.capacity}"
            )

    def release(self, n: int) -> None:
        """Declare that ``n`` records left primary memory.

        Validates *before* mutating: a rejected release leaves ``in_use``
        unchanged, so accounting stays consistent after the error.
        """
        if n > self.in_use:
            raise ValueError(
                f"MemoryGuard released {n} records with only {self.in_use} in use"
            )
        self.in_use -= n

    def reset(self) -> None:
        self.in_use = 0
        self.high_water = 0


class ExtArray:
    """An array in secondary memory, stored as blocks of ``B`` records.

    Only the machine's transfer instructions touch the contents; algorithms
    never index an :class:`ExtArray` directly.  The last block may be partial.
    """

    __slots__ = ("_blocks", "length", "B", "name")

    def __init__(self, B: int, name: str = ""):
        self.B = B
        self._blocks: list[list] = []
        self.length = 0
        self.name = name

    # -- internal (used by AEMachine only) ------------------------------ #
    def _ensure_block(self, bi: int) -> None:
        while len(self._blocks) <= bi:
            self._blocks.append([])

    @property
    def num_blocks(self) -> int:
        """Number of *physical* blocks occupied.

        Equals ``ceil(length / B)`` for a freshly written array, but may
        exceed it after zero-I/O structural operations: ``concat`` keeps each
        input's partial final block as a partial block *inside* the result,
        and ``_ensure_block`` may add empty placeholder blocks.  Scans and
        readers iterate physical blocks, so charged costs honestly reflect
        that fragmentation.  For the defragmented count use
        :attr:`logical_blocks`.
        """
        return len(self._blocks)

    @property
    def logical_blocks(self) -> int:
        """``ceil(length / B)`` — blocks a defragmented copy would occupy."""
        return -(-self.length // self.B)

    def block_len(self, bi: int) -> int:
        """Number of records resident in physical block ``bi`` — free metadata.

        Block *lengths* are directory bookkeeping (the allocation table
        records how full each block is), so reading one is not a transfer —
        exactly like :attr:`num_blocks` and :attr:`length`.  Algorithms use
        it to skip empty placeholder blocks and to locate a straddling block
        without touching contents; the contents themselves only move through
        the machine's charged transfer instructions.  This is the sanctioned
        way to ask "how full is block ``bi``" — direct ``._blocks`` access
        outside the model is flagged by the ``uncharged-io`` lint rule.
        """
        return len(self._blocks[bi])

    def compact(self) -> int:
        """Drop empty placeholder blocks; return how many were removed.

        Empty physical blocks (left by out-of-order ``_ensure_block`` calls
        or by concatenating empty regions) hold no records, so removing them
        is pure metadata bookkeeping — free, like ``split_blocks``/``concat``.
        Partial blocks are *not* repacked: moving records would be real block
        I/O and must go through a charged rewrite.
        """
        before = len(self._blocks)
        if any(not blk for blk in self._blocks):
            self._blocks = [blk for blk in self._blocks if blk]
        return before - len(self._blocks)

    def peek_list(self) -> list:
        """Uncharged flat copy — verification only (never inside algorithms)."""
        out: list = []
        for blk in self._blocks:
            out.extend(blk)
        return out

    def __len__(self) -> int:
        return self.length


class AEMachine:
    """The Asymmetric External Memory machine of §2.

    Parameters
    ----------
    params:
        The ``(M, B, omega)`` triple.
    counter:
        Shared cost counter; a fresh one is created if omitted.

    Notes
    -----
    ``read_block`` charges one block read; ``write_block`` charges one block
    write (which the experiments weight by ``omega``).  Work *within* primary
    memory is free, per the model.
    """

    def __init__(self, params: MachineParams, counter: CostCounter | None = None):
        self.params = params
        self.counter = counter if counter is not None else CostCounter()

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #
    def allocate(self, name: str = "") -> ExtArray:
        """Allocate a fresh, empty external array (allocation is free)."""
        return ExtArray(self.params.B, name=name)

    def from_list(self, data: Iterable, name: str = "", *, charge: bool = False) -> ExtArray:
        """Materialise ``data`` as an external array.

        By convention the problem input already resides in secondary memory,
        so loading it is free; pass ``charge=True`` to charge the writes
        (used when an algorithm must *produce* such an array).
        """
        arr = self.allocate(name)
        B = self.params.B
        buf: list = []
        items = list(data)
        for start in range(0, len(items), B):
            buf = items[start : start + B]
            arr._blocks.append(list(buf))
            if charge:
                self.counter.charge_block_write()
        arr.length = len(items)
        return arr

    # ------------------------------------------------------------------ #
    # the two transfer instructions of the model
    # ------------------------------------------------------------------ #
    def read_block(self, arr: ExtArray, bi: int, *, copy: bool = True) -> list:
        """Transfer block ``bi`` of ``arr`` into primary memory (cost 1).

        By default the caller receives a private copy, matching the model's
        "transfers move copies" semantics.  Read-only scans may pass
        ``copy=False`` to receive the resident block itself — same charge,
        no copy — but MUST NOT mutate it.
        """
        if bi < 0 or bi >= len(arr._blocks):
            raise IndexError(f"block {bi} out of range for array with {len(arr._blocks)} blocks")
        self.counter.charge_block_read()
        blk = arr._blocks[bi]
        return list(blk) if copy else blk

    def write_block(self, arr: ExtArray, bi: int, values: list) -> None:
        """Transfer ``values`` from primary memory into block ``bi`` (cost ω).

        Writing block ``num_blocks`` appends a new block.  Blocks must contain
        at most ``B`` records; only the final block of an array may be partial
        (enforced lazily — intermediate partial blocks would corrupt
        ``length`` bookkeeping).
        """
        B = self.params.B
        if len(values) > B:
            raise ValueError(f"block of {len(values)} records exceeds B={B}")
        if bi < 0 or bi > len(arr._blocks):
            raise IndexError(f"cannot write block {bi}; array has {len(arr._blocks)} blocks")
        self.counter.charge_block_write()
        if bi == len(arr._blocks):
            arr._blocks.append(list(values))
            arr.length += len(values)
        else:
            old = len(arr._blocks[bi])
            arr._blocks[bi] = list(values)
            arr.length += len(values) - old

    # ------------------------------------------------------------------ #
    # free (zero-I/O) structural operations
    # ------------------------------------------------------------------ #
    def split_blocks(self, arr: ExtArray, parts: int) -> list[ExtArray]:
        """Partition ``arr`` into ``parts`` block-aligned subarrays, free.

        This models renaming contiguous *regions* of secondary memory (the
        "evenly partition A ... at the granularity of blocks" step of
        Algorithm 2); no records move, so no transfer is charged.  Empty
        trailing parts are dropped.
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")
        nb = arr.num_blocks
        per = math.ceil(nb / parts) if nb else 0
        out: list[ExtArray] = []
        for start in range(0, nb, max(per, 1)):
            sub = ExtArray(self.params.B, name=f"{arr.name}[{start}:]")
            sub._blocks = arr._blocks[start : start + per]
            sub.length = sum(len(b) for b in sub._blocks)
            out.append(sub)
            if len(out) == parts:
                break
        return [s for s in out if s.length > 0]

    def concat(self, arrays: list[ExtArray], name: str = "") -> ExtArray:
        """Concatenate arrays by renaming regions, free.

        Each input array keeps its own blocks, so a partial final block of a
        non-final input becomes a partial block *inside* the result.  This
        models bucket regions that each start at a block boundary — exactly
        the layout behind the ``+ kM/B`` partial-block write term in the
        Theorem 4.5 analysis.  Scans over the result simply see the records
        in order; block counts reflect the fragmentation honestly.
        """
        out = ExtArray(self.params.B, name=name)
        for a in arrays:
            out._blocks.extend(a._blocks)
            out.length += a.length
        return out

    # ------------------------------------------------------------------ #
    # derived helpers (cost-equivalent compositions of the two transfers)
    # ------------------------------------------------------------------ #
    def scan(self, arr: ExtArray) -> Iterator:
        """Yield every record of ``arr`` in order, charging 1 read per block.

        Read-only: blocks are streamed without the defensive copy of
        :meth:`read_block`, since only individual records are exposed.

        Physically *empty* placeholder blocks (see :meth:`ExtArray.compact`)
        hold no records and are skipped without charge — a transfer that
        moves nothing is not a transfer.  ``scan_blocks`` applies the same
        rule, so the two access paths stay cost-identical.
        """
        counter = self.counter
        for blk in arr._blocks:
            if blk:
                counter.charge_block_read()
                yield from blk

    def scan_blocks(self, arr: ExtArray) -> Iterator[list]:
        """Yield every non-empty block of ``arr`` read-only, charging the
        whole scan's reads in ONE batched counter update.

        The block-granular counterpart of :meth:`scan`: identical total
        charges (one read per non-empty physical block), but the counter is
        touched once per scan instead of once per block, and whole resident
        blocks are exposed so callers can partition/merge them with C-level
        primitives (``bisect``, ``list.extend``) instead of per-record
        Python loops.  The yielded lists are the resident blocks themselves
        — callers MUST NOT mutate them.

        The reads are charged up front (on first iteration): a scan is an
        all-or-nothing transfer plan.  Callers that may stop early should
        use :meth:`reader` / :meth:`read_block`, which charge per block.
        """
        blocks = [blk for blk in arr._blocks if blk]
        if blocks:
            self.counter.charge_reads(len(blocks))
        yield from blocks

    def blocks_of(self, n: int) -> int:
        """``ceil(n / B)`` — the number of blocks ``n`` records occupy."""
        return math.ceil(n / self.params.B)

    def reader(self, arr: ExtArray, start_block: int = 0) -> "BlockReader":
        return BlockReader(self, arr, start_block)

    def writer(self, arr: ExtArray | None = None, name: str = "") -> "BlockWriter":
        return BlockWriter(self, arr if arr is not None else self.allocate(name))


class BlockReader:
    """Sequential block-at-a-time reader with an explicit pointer.

    Mirrors the pointers ``I_1..I_l`` of Algorithm 2: ``load_next`` transfers
    the next block (cost 1) and exposes it; ``exhausted`` reports whether the
    pointer has passed the final block.
    """

    def __init__(self, machine: AEMachine, arr: ExtArray, start_block: int = 0):
        self.machine = machine
        self.arr = arr
        self.next_block = start_block
        self.current: list | None = None

    @property
    def exhausted(self) -> bool:
        return self.next_block >= self.arr.num_blocks

    def load_next(self) -> list:
        """Read the next block, advance the pointer, return the block."""
        if self.exhausted:
            raise IndexError("BlockReader exhausted")
        self.current = self.machine.read_block(self.arr, self.next_block)
        self.next_block += 1
        return self.current

    def records(self) -> Iterator:
        """Stream all remaining records, charging one read per block.

        Read-only fast path: unlike :meth:`load_next`, the transferred block
        is not copied (only records are yielded, never the block itself).
        """
        while not self.exhausted:
            self.current = self.machine.read_block(self.arr, self.next_block, copy=False)
            self.next_block += 1
            yield from self.current


class BlockWriter:
    """Buffered appender: holds <= B records in primary memory, flushing full
    blocks to secondary memory (one block write each).

    The in-memory partial block is the "store buffer" of Algorithm 2.  Always
    ``close()`` (or use as a context manager) so the final partial block is
    flushed and charged.
    """

    def __init__(self, machine: AEMachine, arr: ExtArray):
        self.machine = machine
        self.arr = arr
        self._buf: list = []
        self.written = 0
        self.closed = False

    def append(self, rec) -> None:
        if self.closed:
            raise RuntimeError("BlockWriter already closed")
        self._buf.append(rec)
        self.written += 1
        if len(self._buf) == self.machine.params.B:
            self._flush()

    def extend(self, recs: Iterable) -> None:
        """Append many records, flushing at block granularity.

        Cost-equivalent to repeated :meth:`append` (identical block-write
        count and block contents), but full blocks are sliced straight out of
        ``recs`` instead of growing the buffer one record at a time.
        """
        if self.closed:
            raise RuntimeError("BlockWriter already closed")
        if not isinstance(recs, list):
            recs = list(recs)
        B = self.machine.params.B
        total = len(recs)
        pos = 0
        if self._buf:  # top up the resident partial block first
            take = min(B - len(self._buf), total)
            self._buf.extend(recs[:take])
            self.written += take
            pos = take
            if len(self._buf) == B:
                self._flush()
        nfull = (total - pos) // B
        if nfull:
            # full blocks land as-is: n list appends, ONE batched write charge
            arr = self.arr
            blocks = arr._blocks
            for _ in range(nfull):
                blocks.append(recs[pos : pos + B])
                pos += B
            arr.length += nfull * B
            self.written += nfull * B
            self.machine.counter.charge_writes(nfull)
        if pos < total:
            self._buf.extend(recs[pos:])
            self.written += total - pos

    def extend_blocks(self, blocks: Iterable[list]) -> None:
        """Append whole blocks, batching the block-write accounting.

        Cost-equivalent to ``extend`` over the chained records (identical
        write count and block contents), but when the writer holds no
        partial buffer and an incoming block is exactly ``B`` records it is
        appended as-is, and one ``charge_writes(k)`` covers each run of
        ``k`` such full blocks instead of ``k`` separate counter updates.
        Blocks that are partial (or that land on a partial buffer) fall back
        to :meth:`extend`, which re-blocks them.
        """
        if self.closed:
            raise RuntimeError("BlockWriter already closed")
        B = self.machine.params.B
        arr = self.arr
        pending_full = 0
        for blk in blocks:
            if not self._buf and len(blk) == B:
                arr._blocks.append(list(blk))
                arr.length += B
                self.written += B
                pending_full += 1
            else:
                if pending_full:
                    self.machine.counter.charge_writes(pending_full)
                    pending_full = 0
                self.extend(blk)
        if pending_full:
            self.machine.counter.charge_writes(pending_full)

    def _flush(self) -> None:
        if self._buf:
            self.machine.write_block(self.arr, self.arr.num_blocks, self._buf)
            self._buf = []

    def close(self) -> ExtArray:
        """Flush the partial block and return the written array."""
        if not self.closed:
            self._flush()
            self.closed = True
        return self.arr

    def __enter__(self) -> "BlockWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
