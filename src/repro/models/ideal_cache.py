"""The Asymmetric Ideal-Cache model: an executable cache simulator.

§2 of the paper defines the Asymmetric Ideal-Cache model: all addressable
memory lives in secondary memory; up to ``M/B`` blocks may be resident in the
cache; a miss costs 1 (the read transfer) and evicting a *dirty* block costs
an additional ``omega`` (the write-back).  The paper proves (Lemma 2.1) that
the **read-write LRU** policy — two equal-sized pools, a read pool and a
write pool — is constant-factor competitive with the offline optimal.

This module provides:

* :class:`CacheSim` — a block-granularity cache simulator with policies
  ``"lru"`` (single pool, dirty write-back), ``"rwlru"`` (the paper's policy),
  and offline ``"belady"`` replay via :func:`simulate_trace`.
* :class:`SimArray` — an element-addressable array whose every access is
  routed through a :class:`CacheSim`; the §5 cache-oblivious algorithms are
  written against it and never see ``M`` or ``B``.

Data correctness is decoupled from cost accounting: element values live in
backing storage, and the cache tracks only residency/dirtiness metadata, so a
policy bug can corrupt *costs* but never *outputs* (tests check both).
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterable

from .counters import CostCounter
from .params import MachineParams


class CacheSim:
    """Block-level cache simulator with asymmetric write-back accounting.

    Parameters
    ----------
    params:
        ``(M, B, omega)``.  For ``policy="rwlru"`` the *total* capacity ``M``
        is split into two pools of ``M/(2B)`` blocks each, matching Lemma 2.1
        (which compares pools of size ``M_L`` against an ideal cache ``M_I``).
    policy:
        ``"lru"`` or ``"rwlru"``.
    record_trace:
        If true, every block access ``(block_id, is_write)`` is appended to
        :attr:`trace` for later offline (Belady) replay.
    """

    def __init__(
        self,
        params: MachineParams,
        policy: str = "rwlru",
        counter: CostCounter | None = None,
        *,
        record_trace: bool = False,
    ):
        if policy not in ("lru", "rwlru"):
            raise ValueError(f"unknown online policy {policy!r}")
        self.params = params
        self.policy = policy
        self.counter = counter if counter is not None else CostCounter()
        self.record_trace = record_trace
        self.trace: list[tuple[int, bool]] = []
        self._next_base = 0
        # residency metadata: OrderedDict block_id -> dirty flag
        self._pool: OrderedDict[int, bool] = OrderedDict()  # lru
        self._read_pool: OrderedDict[int, None] = OrderedDict()  # rwlru
        self._write_pool: OrderedDict[int, None] = OrderedDict()  # rwlru
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # address space
    # ------------------------------------------------------------------ #
    def alloc(self, n: int) -> int:
        """Reserve ``n`` consecutive addresses, block-aligned; return base."""
        B = self.params.B
        base = self._next_base
        if base % B:
            base += B - base % B
        self._next_base = base + n
        return base

    def array(self, data_or_len, name: str = "") -> "SimArray":
        """Allocate a :class:`SimArray` over this cache."""
        return SimArray(self, data_or_len, name=name)

    # ------------------------------------------------------------------ #
    # the access path
    # ------------------------------------------------------------------ #
    def access(self, addr: int, is_write: bool) -> None:
        """Touch one word; charge misses/write-backs per the model."""
        block = addr // self.params.B
        if self.record_trace:
            self.trace.append((block, is_write))
        if self.policy == "lru":
            self._access_lru(block, is_write)
        else:
            self._access_rwlru(block, is_write)

    def _access_lru(self, block: int, is_write: bool) -> None:
        pool = self._pool
        if block in pool:
            self.hits += 1
            pool[block] = pool[block] or is_write
            pool.move_to_end(block)
            return
        self.misses += 1
        self.counter.charge_block_read()
        if len(pool) >= self.params.blocks_in_memory:
            _evicted, dirty = pool.popitem(last=False)
            if dirty:
                self.counter.charge_block_write()
        pool[block] = is_write

    def access_range(self, addr: int, count: int, is_write: bool) -> None:
        """Touch ``count`` consecutive words starting at ``addr``.

        Exactly equivalent to ``count`` calls of :meth:`access` — same
        hits/misses, same pool states, same trace — but after the first
        touch of each block the remaining words of that block are hits that
        leave the (MRU) pool state unchanged under both policies, so they
        are accounted in bulk instead of replayed one at a time.
        """
        B = self.params.B
        end = addr + count
        a = addr
        while a < end:
            span = min(end - a, B - a % B)
            self.access(a, is_write)
            extra = span - 1
            if extra:
                self.hits += extra
                if self.record_trace:
                    self.trace.extend([(a // B, is_write)] * extra)
            a += span

    def copy_range(self, src: int, dst: int, count: int) -> None:
        """Charge the interleaved ``read src+i, write dst+i`` scan pattern of
        a block copy, in bulk.

        Equivalent to ``count`` (read, write) access pairs: once a source
        and a destination block are both resident (and MRU in their pools),
        the remaining pairs over that block span are hits with no state
        change, so each span costs two :meth:`access` calls plus one batched
        hit update.
        """
        B = self.params.B
        # the batched "remaining pairs are hits" shortcut needs the source
        # and destination blocks resident *together*; a single-slot LRU
        # (M == B) thrashes between them, so replay per access instead
        # (rwlru keeps them in separate pools and is safe at any size)
        pairwise_only = self.policy == "lru" and self.params.blocks_in_memory < 2
        done = 0
        while done < count:
            s = src + done
            d = dst + done
            span = min(count - done, B - s % B, B - d % B)
            if pairwise_only or s // B == d // B:
                # same-block src/dst (overlapping views) is stateful per
                # pair under rwlru promotion as well: replay access by access
                for i in range(span):
                    self.access(s + i, False)
                    self.access(d + i, True)
                done += span
                continue
            self.access(s, False)
            self.access(d, True)
            extra = span - 1
            if extra:
                self.hits += 2 * extra
                if self.record_trace:
                    sb, db = s // B, d // B
                    pair = [(sb, False), (db, True)]
                    self.trace.extend(pair * extra)
            done += span

    def _access_rwlru(self, block: int, is_write: bool) -> None:
        """The read-write LRU policy of Lemma 2.1.

        Two pools of ``M/(2B)`` blocks.  Reads are served from either pool;
        a read miss loads into the read pool (evicting its LRU, which is
        clean, cost 0 beyond the load).  Writes are served from the write
        pool; a write miss loads into the write pool (cost 1) and evicting
        the write-pool LRU costs ``omega`` (every write-pool block is dirty).
        """
        half = max(1, self.params.blocks_in_memory // 2)
        rp, wp = self._read_pool, self._write_pool
        if not is_write:
            if block in rp:
                self.hits += 1
                rp.move_to_end(block)
                return
            if block in wp:
                # copy dirty block into the read pool (in-cache, free);
                # it remains in the write pool where its dirty bytes live.
                self.hits += 1
                wp.move_to_end(block)
                self._insert(rp, block, half, dirty_pool=False)
                return
            self.misses += 1
            self.counter.charge_block_read()
            self._insert(rp, block, half, dirty_pool=False)
        else:
            if block in wp:
                self.hits += 1
                wp.move_to_end(block)
                return
            if block in rp:
                # promote: move the clean copy into the write pool.
                self.hits += 1
                del rp[block]
                self._insert(wp, block, half, dirty_pool=True)
                return
            self.misses += 1
            self.counter.charge_block_read()
            self._insert(wp, block, half, dirty_pool=True)

    def _insert(
        self, pool: OrderedDict, block: int, capacity: int, *, dirty_pool: bool
    ) -> None:
        if len(pool) >= capacity:
            pool.popitem(last=False)
            if dirty_pool:
                self.counter.charge_block_write()
        pool[block] = None

    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Write back all dirty blocks (end-of-computation accounting)."""
        if self.policy == "lru":
            for _block, dirty in self._pool.items():
                if dirty:
                    self.counter.charge_block_write()
            self._pool.clear()
        else:
            self.counter.charge_block_write(len(self._write_pool))
            self._write_pool.clear()
            self._read_pool.clear()

    def cost(self) -> float:
        """``block_reads + omega * block_writes`` accumulated so far."""
        return self.counter.block_cost(self.params.omega)


class SimArray:
    """An array whose element accesses are charged through a :class:`CacheSim`.

    Cache-oblivious algorithms index :class:`SimArray` objects exactly like
    lists; they never see ``M`` or ``B``.  Slicing is intentionally not
    supported so no access can bypass the cache.
    """

    __slots__ = ("cache", "base", "_data", "name")

    def __init__(self, cache: CacheSim, data_or_len, name: str = ""):
        self.cache = cache
        if isinstance(data_or_len, int):
            self._data = [None] * data_or_len
        else:
            self._data = list(data_or_len)
        self.base = cache.alloc(len(self._data))
        self.name = name

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, idx: int):
        if isinstance(idx, slice):
            raise TypeError("SimArray does not support slicing")
        if idx < 0 or idx >= len(self._data):
            raise IndexError(f"index {idx} out of range (len {len(self._data)})")
        self.cache.access(self.base + idx, False)
        return self._data[idx]

    def __setitem__(self, idx: int, value) -> None:
        if isinstance(idx, slice):
            raise TypeError("SimArray does not support slice assignment")
        if idx < 0 or idx >= len(self._data):
            raise IndexError(f"index {idx} out of range (len {len(self._data)})")
        self.cache.access(self.base + idx, True)
        self._data[idx] = value

    def view(self, offset: int, length: int) -> "SimView":
        """A zero-copy sub-array window (recursions use these)."""
        return SimView(self, offset, length)

    # -- block-granular bulk access (charges preserved exactly) ---------- #
    def read_range(self, start: int = 0, count: int | None = None) -> list:
        """Return ``count`` elements from ``start`` as a list, charging the
        identical sequential read scan in bulk (``CacheSim.access_range``)."""
        if count is None:
            count = len(self._data) - start
        if start < 0 or start + count > len(self._data):
            raise IndexError(f"range [{start}, {start + count}) out of bounds")
        self.cache.access_range(self.base + start, count, False)
        return self._data[start : start + count]

    def write_range(self, start: int, values: list) -> None:
        """Store ``values`` from ``start``, charging the identical sequential
        write scan in bulk."""
        count = len(values)
        if start < 0 or start + count > len(self._data):
            raise IndexError(f"range [{start}, {start + count}) out of bounds")
        self.cache.access_range(self.base + start, count, True)
        self._data[start : start + count] = values

    def peek_list(self) -> list:
        """Uncharged copy of the contents — verification only."""
        return list(self._data)


class SimView:
    """A window onto a :class:`SimArray` sharing its address space."""

    __slots__ = ("parent", "offset", "length")

    def __init__(self, parent, offset: int, length: int):
        # flatten nested views so address arithmetic stays O(1)
        while isinstance(parent, SimView):
            offset += parent.offset
            parent = parent.parent
        if offset < 0 or offset + length > len(parent._data):
            raise IndexError(
                f"view [{offset}, {offset + length}) out of range (len {len(parent._data)})"
            )
        self.parent = parent
        self.offset = offset
        self.length = length

    def __len__(self) -> int:
        return self.length

    def _check(self, idx: int) -> int:
        if idx < 0 or idx >= self.length:
            raise IndexError(f"index {idx} out of range (view len {self.length})")
        return self.offset + idx

    def __getitem__(self, idx: int):
        return self.parent[self._check(idx)]

    def __setitem__(self, idx: int, value) -> None:
        self.parent[self._check(idx)] = value

    def view(self, offset: int, length: int) -> "SimView":
        return SimView(self, offset, length)

    def read_range(self, start: int = 0, count: int | None = None) -> list:
        if count is None:
            count = self.length - start
        if start < 0 or start + count > self.length:
            raise IndexError(f"range [{start}, {start + count}) out of view bounds")
        return self.parent.read_range(self.offset + start, count)

    def write_range(self, start: int, values: list) -> None:
        if start < 0 or start + len(values) > self.length:
            raise IndexError(
                f"range [{start}, {start + len(values)}) out of view bounds"
            )
        self.parent.write_range(self.offset + start, values)

    def peek_list(self) -> list:
        return [self.parent._data[self.offset + i] for i in range(self.length)]


def _resolve_sim_range(arr):
    """``(backing SimArray, offset, length)`` for a SimArray/SimView, else None."""
    if isinstance(arr, SimView):
        return arr.parent, arr.offset, arr.length
    if isinstance(arr, SimArray):
        return arr, 0, len(arr)
    return None


def bulk_copy(src, dst) -> bool:
    """Copy ``src`` into ``dst`` charging the interleaved element-copy scan
    in bulk (``CacheSim.copy_range``); returns False when either side is not
    a SimArray/SimView on the same cache (callers then fall back to the
    per-element loop)."""
    s = _resolve_sim_range(src)
    d = _resolve_sim_range(dst)
    if s is None or d is None:
        return False
    sp, so, n = s
    dp, do, nd = d
    if n != nd or sp.cache is not dp.cache:
        return False
    sp.cache.copy_range(sp.base + so, dp.base + do, n)
    dp._data[do : do + n] = sp._data[so : so + n]
    return True


def simulate_trace(
    trace: Iterable[tuple[int, bool]],
    params: MachineParams,
    policy: str = "belady",
) -> CostCounter:
    """Replay a block-access trace under an offline or online policy.

    ``policy="belady"`` implements MIN (evict the resident block whose next
    use is farthest in the future), charging 1 per miss and ``omega`` (one
    block write) per dirty eviction.  Classic MIN minimises *misses*; under
    asymmetric costs it is merely a good offline baseline — see DESIGN.md and
    experiment E7 for how it stands in for the (intractable) asymmetric OPT.

    Returns the populated :class:`CostCounter` (including a final flush of
    dirty blocks).
    """
    trace = list(trace)
    counter = CostCounter()
    capacity = params.blocks_in_memory
    if policy in ("lru", "rwlru"):
        sim = CacheSim(params, policy=policy, counter=counter)
        for block, is_write in trace:
            # replay at block granularity: address block*B touches that block
            sim.access(block * params.B, is_write)
        sim.flush()
        return counter
    if policy not in ("belady", "belady-asym"):
        raise ValueError(f"unknown policy {policy!r}")

    # Precompute next-use lists per block.
    next_use: dict[int, list[int]] = {}
    for i, (block, _w) in enumerate(trace):
        next_use.setdefault(block, []).append(i)
    # pointer into each block's use list
    ptr: dict[int, int] = {b: 0 for b in next_use}

    INF = len(trace) + 1

    def nxt(block: int, now: int) -> int:
        uses = next_use[block]
        p = ptr[block]
        while p < len(uses) and uses[p] <= now:
            p += 1
        ptr[block] = p
        return uses[p] if p < len(uses) else INF

    resident: dict[int, bool] = {}  # block -> dirty

    def victim_belady(now: int) -> int:
        """Classic MIN: farthest next use, ignoring dirtiness."""
        return max(resident, key=lambda b: nxt(b, now))

    def victim_belady_asym(now: int) -> int:
        """Write-aware greedy MIN: evicting a dirty block costs ``omega``
        now, so rank victims by (next use) but discount dirty blocks — a
        dirty block is only evicted when its next use is at least ``omega``
        accesses beyond the best clean candidate.  (A heuristic: the true
        asymmetric offline optimum is not efficiently computable.)
        """
        best = None
        best_score = None
        for b, dirty in resident.items():
            score = nxt(b, now) - (params.omega if dirty else 0)
            if best_score is None or score > best_score:
                best, best_score = b, score
        return best

    choose = victim_belady if policy == "belady" else victim_belady_asym

    for i, (block, is_write) in enumerate(trace):
        if block in resident:
            resident[block] = resident[block] or is_write
            continue
        counter.charge_block_read()
        if len(resident) >= capacity:
            victim = choose(i)
            if resident.pop(victim):
                counter.charge_block_write()
        resident[block] = is_write
    for dirty in resident.values():
        if dirty:
            counter.charge_block_write()
    return counter
