"""Machine parameters shared by the EM/cache models.

The Asymmetric External Memory (AEM) and Asymmetric Ideal-Cache models of the
paper are parameterised by

* ``M`` — primary-memory (cache) capacity, in records,
* ``B`` — block size, in records,
* ``omega`` — the cost of writing one block (or word), relative to a unit read.

The paper additionally allows ``O(log M)`` extra primary-memory words for
bookkeeping (stacks, the largest output record of Lemma 4.2, etc.); the
:class:`~repro.models.external_memory.MemoryGuard` honours that allowance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MachineParams:
    """Validated (M, B, omega) triple with derived quantities.

    Parameters
    ----------
    M:
        Primary-memory capacity in records. Must satisfy ``M >= B >= 1``.
    B:
        Block size in records.
    omega:
        Relative write cost, ``omega >= 1``. The paper assumes ``omega > 1``
        (asymmetry); ``omega = 1`` recovers the symmetric EM model and is
        allowed here so baselines can share code paths.
    """

    M: int
    B: int
    omega: int

    def __post_init__(self) -> None:
        if self.B < 1:
            raise ValueError(f"block size B must be >= 1, got {self.B}")
        if self.M < self.B:
            raise ValueError(f"memory M={self.M} must be >= block size B={self.B}")
        if self.omega < 1:
            raise ValueError(f"omega must be >= 1, got {self.omega}")
        if self.M % self.B != 0:
            raise ValueError(
                f"M={self.M} must be a multiple of B={self.B} "
                "(primary memory holds an integral number of blocks)"
            )

    # ------------------------------------------------------------------ #
    @property
    def blocks_in_memory(self) -> int:
        """``M/B`` — the number of blocks the primary memory can hold."""
        return self.M // self.B

    @property
    def tall_cache(self) -> bool:
        """Whether ``M >= B**2`` (the tall-cache assumption of §2)."""
        return self.M >= self.B * self.B

    def fanout(self, k: int) -> int:
        """``l = k * M / B`` — the merge/partition fanout used throughout §4."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return k * self.blocks_in_memory

    def with_omega(self, omega: int) -> "MachineParams":
        """Copy with a different write cost (used by omega sweeps)."""
        return MachineParams(self.M, self.B, omega)

    def bookkeeping_allowance(self) -> int:
        """The ``O(log M)`` extra words of primary memory permitted by §2."""
        return max(8, 4 * int(math.ceil(math.log2(max(self.M, 2)))))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"(M={self.M}, B={self.B}, omega={self.omega})"


#: Small parameter sets used across tests.  Chosen so that n of a few thousand
#: records already exercises 2-3 levels of recursion.
TINY = MachineParams(M=16, B=4, omega=8)
SMALL = MachineParams(M=64, B=8, omega=8)
MEDIUM = MachineParams(M=256, B=16, omega=8)


def parameter_grid() -> list[MachineParams]:
    """The (M, B, omega) grid used by the experiment sweeps."""
    grid = []
    for M, B in [(64, 8), (256, 16), (1024, 32)]:
        for omega in (2, 4, 8, 16, 32):
            grid.append(MachineParams(M=M, B=B, omega=omega))
    return grid
