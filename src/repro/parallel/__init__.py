"""§2 scheduler substrate: fork-join DAGs and cache-aware scheduler simulators.

The paper extends two classic scheduling bounds to the asymmetric setting:

* private caches + randomized work stealing:
  ``Q_p <= Q_1 + O(p * D * M / B)`` w.h.p. (each steal forces a cache warm-up
  of at most ``2M/B`` reads+writes);
* shared cache of size ``M + p*B*D`` + parallel-depth-first (PDF) schedule:
  ``Q_p <= Q_1``.

We reproduce both by recording a fork-join computation as a task DAG with
per-task block-access traces, then replaying it under simulated schedulers
with per-worker (or shared) asymmetric caches.
"""

from .dag import TaskNode, build_parallel_mergesort_dag, dag_depth, dag_work
from .pdf import simulate_pdf
from .workstealing import simulate_work_stealing

__all__ = [
    "TaskNode",
    "build_parallel_mergesort_dag",
    "dag_depth",
    "dag_work",
    "simulate_pdf",
    "simulate_work_stealing",
]
