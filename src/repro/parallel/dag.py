"""Fork-join task DAGs with per-task block-access traces.

A nested-parallel computation is a tree of :class:`TaskNode`:

* ``pre`` — the strand executed before spawning the children,
* ``children`` — sub-computations that may run in parallel,
* ``post`` — the continuation after the join.

Each strand carries its block-access trace ``[(block_id, is_write), ...]``;
schedulers replay the traces through simulated caches.  The canonical
workload is a parallel two-way mergesort over an address space, whose merge
strands read their two halves and write a scratch region — enough reuse for
cache placement to matter, and a textbook fork-join shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..models.params import MachineParams


@dataclass
class TaskNode:
    """One fork-join node: pre-strand, parallel children, post-strand."""

    name: str = ""
    pre: list[tuple[int, bool]] = field(default_factory=list)
    children: list["TaskNode"] = field(default_factory=list)
    post: list[tuple[int, bool]] = field(default_factory=list)


def dag_work(node: TaskNode) -> int:
    """Total accesses in the DAG (the work term of the schedule bounds)."""
    return (
        len(node.pre)
        + len(node.post)
        + sum(dag_work(c) for c in node.children)
    )


def dag_depth(node: TaskNode) -> int:
    """Longest chain of accesses through the DAG (the depth term ``D``)."""
    child_depth = max((dag_depth(c) for c in node.children), default=0)
    return len(node.pre) + child_depth + len(node.post)


# ---------------------------------------------------------------------- #
# canonical workload: parallel mergesort
# ---------------------------------------------------------------------- #
def build_parallel_mergesort_dag(n: int, params: MachineParams) -> TaskNode:
    """A parallel mergesort DAG over ``n`` records.

    Address space: records ``[0, n)``, scratch ``[n, 2n)``.  Each merge node
    reads its two sorted halves and writes the merged run to scratch, then
    copies back (reads scratch, writes the range) — the access *pattern* of
    mergesort, independent of key values (which don't change block traffic).
    """
    B = params.B

    def addr(i: int) -> int:
        return i // B  # block id of record i

    def build(lo: int, hi: int, depth: int) -> TaskNode:
        node = TaskNode(name=f"sort[{lo}:{hi}]")
        size = hi - lo
        if size <= B:
            # base: read the run, write it back sorted
            for i in range(lo, hi):
                node.pre.append((addr(i), False))
            for i in range(lo, hi):
                node.pre.append((addr(i), True))
            return node
        mid = (lo + hi) // 2
        node.children.append(build(lo, mid, depth + 1))
        node.children.append(build(mid, hi, depth + 1))
        # post: merge both halves into scratch, then copy back
        for i in range(lo, hi):
            node.post.append((addr(i), False))
            node.post.append((addr(n + i), True))
        for i in range(lo, hi):
            node.post.append((addr(n + i), False))
            node.post.append((addr(i), True))
        return node

    return build(0, n, 0)
