"""Parallel-depth-first (PDF) scheduling over a shared asymmetric cache (§2).

The PDF scheduler prioritises ready strands by their rank in the *sequential*
(1DF) execution order.  Blelloch & Gibbons: with a shared cache of size
``M + p*B*D`` a PDF schedule incurs no more misses than the sequential
execution on a cache of size ``M`` (``Q_p <= Q_1``); the paper observes the
bound carries over verbatim to the asymmetric setting because the PDF
schedule adds no additional reads or writes.

The simulator executes ready strands one access per tick on ``p`` workers,
always preferring the lowest sequential rank, against a single shared
:class:`~repro.models.ideal_cache.CacheSim`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.ideal_cache import CacheSim
from ..models.params import MachineParams
from .dag import TaskNode, dag_depth


@dataclass
class PDFResult:
    p: int
    makespan: int
    misses: int
    block_reads: int
    block_writes: int
    shared_cache_records: int

    def cost(self, omega: int) -> float:
        return self.block_reads + omega * self.block_writes


def _sequential_ranks(root: TaskNode) -> dict[tuple[int, str], int]:
    """Rank every strand by its position in the 1DF (sequential) order."""
    ranks: dict[tuple[int, str], int] = {}
    counter = 0

    def visit(node: TaskNode) -> None:
        nonlocal counter
        ranks[(id(node), "pre")] = counter
        counter += 1
        for c in node.children:
            visit(c)
        ranks[(id(node), "post")] = counter
        counter += 1

    visit(root)
    return ranks


def simulate_pdf(
    root: TaskNode,
    p: int,
    params: MachineParams,
    policy: str = "lru",
    extra_cache: bool = True,
) -> PDFResult:
    """Replay the DAG under a PDF schedule with a shared cache.

    ``extra_cache=True`` sizes the shared cache at ``M + p*B*D`` (the theorem
    premise); ``False`` keeps it at ``M`` (for contrast).
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    depth = dag_depth(root)
    if extra_cache:
        records = params.M + p * params.B * depth
    else:
        records = params.M
    # round up to a whole number of blocks
    blocks = max(1, -(-records // params.B))
    shared_params = MachineParams(M=blocks * params.B, B=params.B, omega=params.omega)
    cache = CacheSim(shared_params, policy=policy)

    ranks = _sequential_ranks(root)
    pending: dict[int, int] = {}
    parent: dict[int, TaskNode | None] = {}

    def register(node: TaskNode, par: TaskNode | None) -> None:
        parent[id(node)] = par
        pending[id(node)] = len(node.children)
        for c in node.children:
            register(c, node)

    register(root, None)

    # ready strands: (rank, node, kind, cursor)
    ready: list[list] = [[ranks[(id(root), "pre")], root, "pre", 0]]
    running: list[list | None] = [None] * p
    stall = [0] * p
    finished = False
    ticks = 0

    def on_complete(node: TaskNode, kind: str) -> None:
        nonlocal finished
        if kind == "pre":
            if node.children:
                for c in node.children:
                    ready.append([ranks[(id(c), "pre")], c, "pre", 0])
                return
        # node done (leaf pre, or post)
        par = parent[id(node)]
        if par is None:
            finished = True
            return
        pending[id(par)] -= 1
        if pending[id(par)] == 0:
            ready.append([ranks[(id(par), "post")], par, "post", 0])

    while not finished:
        ticks += 1
        # assign free workers to the highest-priority ready strands
        for w in range(p):
            if running[w] is None and ready:
                ready.sort(key=lambda s: s[0])
                running[w] = ready.pop(0)
        for w in range(p):
            if stall[w] > 0:
                stall[w] -= 1
                continue
            slot = running[w]
            if slot is None:
                continue
            _rank, node, kind, cursor = slot
            trace = node.pre if kind == "pre" else node.post
            if cursor < len(trace):
                block, is_write = trace[cursor]
                cache.access(block * params.B, is_write)
                slot[3] += 1
                stall[w] = params.omega - 1 if is_write else 0
            if slot[3] >= len(trace):
                running[w] = None
                on_complete(node, kind)

    cache.flush()
    return PDFResult(
        p=p,
        makespan=ticks,
        misses=cache.misses,
        block_reads=cache.counter.block_reads,
        block_writes=cache.counter.block_writes,
        shared_cache_records=shared_params.M,
    )
