"""Randomized work-stealing over private asymmetric caches (§2).

Simulates ``p`` workers, each with a private
:class:`~repro.models.ideal_cache.CacheSim`.  A worker executes its current
strand one access at a time (a write stalls the worker ``omega`` ticks, the
asymmetric time model); on running dry it pops its own deque from the bottom,
or steals from the *top* of a uniformly random victim's deque.

Join continuations run on the worker that completes the last child — the
standard work-stealing convention whose analysis gives ``O(pD)`` steals and
hence ``Q_p <= Q_1 + O(p D M / B)`` extra misses (each steal / join migration
forces at most a cache's worth of warm-up; in the asymmetric setting the
paper charges ``2M/B`` reads *and* writes per steal).

Running with ``p = 1`` yields the sequential baseline ``Q_1``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..models.counters import CostCounter
from ..models.ideal_cache import CacheSim
from ..models.params import MachineParams
from .dag import TaskNode


@dataclass
class _Strand:
    """An executable unit: a node's pre or post access list."""

    node: TaskNode
    kind: str  # "pre" | "post"
    trace: list = field(default_factory=list)


@dataclass
class WorkStealingResult:
    """Aggregate measurements of one simulated run."""

    p: int
    steals: int
    makespan: int
    total_misses: int
    total_block_reads: int
    total_block_writes: int
    per_worker: list[CostCounter]

    def cost(self, omega: int) -> float:
        return self.total_block_reads + omega * self.total_block_writes


def simulate_work_stealing(
    root: TaskNode,
    p: int,
    params: MachineParams,
    policy: str = "lru",
    seed: int = 0,
) -> WorkStealingResult:
    """Replay the DAG under randomized work stealing with ``p`` workers."""
    if p < 1:
        raise ValueError("p must be >= 1")
    rng = random.Random(seed)
    caches = [CacheSim(params, policy=policy) for _ in range(p)]

    pending: dict[int, int] = {}  # id(node) -> outstanding children
    parent: dict[int, TaskNode | None] = {}

    def register(node: TaskNode, par: TaskNode | None) -> None:
        parent[id(node)] = par
        pending[id(node)] = len(node.children)
        for c in node.children:
            register(c, node)

    register(root, None)

    deques: list[list[_Strand]] = [[] for _ in range(p)]
    deques[0].append(_Strand(root, "pre", list(root.pre)))

    current: list[_Strand | None] = [None] * p
    cursor = [0] * p  # index into current strand's trace
    stall = [0] * p  # remaining ticks of the in-flight access
    steals = 0
    done = False
    ticks = 0
    finished_root = False

    def complete(worker: int, strand: _Strand) -> None:
        """Handle strand completion: expand children or notify the parent."""
        nonlocal finished_root
        node = strand.node
        if strand.kind == "pre":
            if node.children:
                # make children stealable (push all but keep one to run)
                for c in reversed(node.children):
                    deques[worker].append(_Strand(c, "pre", list(c.pre)))
            else:
                _joined(worker, node)
        else:  # post finished -> the node is done
            _joined(worker, node)

    def _joined(worker: int, node: TaskNode) -> None:
        nonlocal finished_root
        par = parent[id(node)]
        if par is None:
            finished_root = True
            return
        pending[id(par)] -= 1
        if pending[id(par)] == 0:
            # the last-finishing worker runs the join continuation
            deques[worker].append(_Strand(par, "post", list(par.post)))

    # nodes with children: pre -> children -> post -> joined.  Nodes whose
    # pre completes with children spawn them; the post strand is enqueued by
    # the final child via _joined; the post's completion calls _joined on the
    # node itself, which must then notify *its* parent.  To distinguish the
    # two _joined calls we only decrement the parent when the node is truly
    # done: leaf (no children) after pre, or after post otherwise.

    while not finished_root:
        ticks += 1
        for w in range(p):
            if stall[w] > 0:
                stall[w] -= 1
                continue
            strand = current[w]
            if strand is None:
                # acquire work: own deque bottom, else steal
                if deques[w]:
                    strand = deques[w].pop()
                else:
                    victims = [v for v in range(p) if v != w and deques[v]]
                    if not victims:
                        continue
                    victim = rng.choice(victims)
                    strand = deques[victim].pop(0)  # steal the top (oldest)
                    steals += 1
                current[w] = strand
                cursor[w] = 0
            # execute one access
            if cursor[w] < len(strand.trace):
                block, is_write = strand.trace[cursor[w]]
                caches[w].access(block * params.B, is_write)
                cursor[w] += 1
                stall[w] = params.omega - 1 if is_write else 0
            if cursor[w] >= len(strand.trace):
                current[w] = None
                complete(w, strand)

    for cache in caches:
        cache.flush()
    total_reads = sum(c.counter.block_reads for c in caches)
    total_writes = sum(c.counter.block_writes for c in caches)
    return WorkStealingResult(
        p=p,
        steals=steals,
        makespan=ticks,
        total_misses=sum(c.misses for c in caches),
        total_block_reads=total_reads,
        total_block_writes=total_writes,
        per_worker=[c.counter for c in caches],
    )
