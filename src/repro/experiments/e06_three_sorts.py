"""E6 — §4 headline: all three AEM sorts share the same asymptotics, trading
~``omega`` reads per write saved.

For each omega, each algorithm runs with the Appendix-A ``k`` against its
classic ``k = 1`` self.  Expected shape:

* writes shrink as ``k`` grows (fewer recursion levels): the asymmetric
  variants write *less* than their classic selves;
* reads grow by roughly the ``k`` multiplier;
* total asymmetric cost ``R + omega W`` improves, increasingly with omega;
* the three algorithms agree within constant factors (buffer tree largest,
  as §4.3 warns).
"""

from __future__ import annotations

from ..analysis.ktuning import choose_k
from ..analysis.tables import format_table
from ..core.aem_heapsort import aem_heapsort
from ..core.aem_mergesort import aem_mergesort
from ..core.aem_samplesort import aem_samplesort
from ..models.external_memory import AEMachine
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E6  All three AEM sorts: asymmetric (k*) vs classic (k=1), per omega"

_ALGOS = {
    "mergesort": lambda m, a, k: aem_mergesort(m, a, k=k),
    "samplesort": lambda m, a, k: aem_samplesort(m, a, k=k, seed=23),
    "heapsort": lambda m, a, k: aem_heapsort(m, a, k=k),
}


def run(quick: bool = False) -> list[dict]:
    n = 3000 if quick else 12000
    omegas = [8] if quick else [2, 4, 8, 16]
    data = random_permutation(n, seed=29)
    expected = sorted(data)
    rows = []
    for omega in omegas:
        params = MachineParams(M=64, B=8, omega=omega)
        k_star = max(1, choose_k(params, n))
        for name, fn in _ALGOS.items():
            counts = {}
            for label, k in (("classic", 1), ("asym", k_star)):
                machine = AEMachine(params)
                arr = machine.from_list(data)
                out = fn(machine, arr, k)
                assert out.peek_list() == expected, f"{name} k={k} wrong"
                counts[label] = machine.counter.snapshot()
            cl, asym = counts["classic"], counts["asym"]
            rows.append(
                {
                    "omega": omega,
                    "algorithm": name,
                    "k*": k_star,
                    "classic_W": cl.block_writes,
                    "asym_W": asym.block_writes,
                    "classic_R": cl.block_reads,
                    "asym_R": asym.block_reads,
                    "classic_cost": cl.block_cost(omega),
                    "asym_cost": asym.block_cost(omega),
                    "improvement": cl.block_cost(omega) / asym.block_cost(omega),
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
