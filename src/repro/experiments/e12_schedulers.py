"""E12 — §2 scheduler bounds in the asymmetric setting.

Claims:

* private caches + work stealing: ``Q_p <= Q_1 + O(p D M / B)`` w.h.p.,
  instantiated with the paper's pessimistic per-steal warm-up of ``2M/B``
  blocks (we check the *measured-steals* form ``Q_p <= Q_1 + 2 * steals *
  M/B``, which is the quantity the argument actually charges);
* shared cache of ``M + p B D`` + PDF: ``Q_p <= Q_1`` — no extra reads or
  writes at all.

Workload: the parallel mergesort DAG of :mod:`repro.parallel.dag`.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..models.params import MachineParams
from ..parallel import (
    build_parallel_mergesort_dag,
    dag_depth,
    dag_work,
    simulate_pdf,
    simulate_work_stealing,
)

TITLE = "E12 Section 2 - scheduler bounds: work stealing & PDF"


def run(quick: bool = False) -> list[dict]:
    params = MachineParams(M=64, B=8, omega=4)
    n = 512 if quick else 2048
    ps = [2, 4] if quick else [2, 4, 8, 16]
    dag = build_parallel_mergesort_dag(n, params)
    seq = simulate_work_stealing(dag, 1, params, seed=3)
    q1 = seq.total_misses
    seq_pdf = simulate_pdf(dag, 1, params, extra_cache=False)
    rows = [
        {
            "scheduler": "(sequential)",
            "p": 1,
            "steals": 0,
            "Q_p": q1,
            "bound": q1,
            "holds": True,
            "makespan": seq.makespan,
            "speedup": 1.0,
        }
    ]
    for p in ps:
        ws = simulate_work_stealing(dag, p, params, seed=3)
        bound = q1 + 2 * ws.steals * params.blocks_in_memory
        rows.append(
            {
                "scheduler": "work-steal",
                "p": p,
                "steals": ws.steals,
                "Q_p": ws.total_misses,
                "bound": bound,
                "holds": ws.total_misses <= bound,
                "makespan": ws.makespan,
                "speedup": seq.makespan / ws.makespan,
            }
        )
    for p in ps:
        pdf = simulate_pdf(dag, p, params, extra_cache=True)
        rows.append(
            {
                "scheduler": "PDF",
                "p": p,
                "steals": 0,
                "Q_p": pdf.misses,
                "bound": seq_pdf.misses,
                "holds": pdf.misses <= seq_pdf.misses,
                "makespan": pdf.makespan,
                "speedup": seq_pdf.makespan / pdf.makespan,
            }
        )
    rows.append(
        {
            "scheduler": "(DAG stats)",
            "p": 0,
            "steals": 0,
            "Q_p": dag_work(dag),
            "bound": dag_depth(dag),
            "holds": True,
            "makespan": 0,
            "speedup": 0.0,
        }
    )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
