"""E11 — Theorem 5.3: cache-oblivious matrix multiplication.

Claim: the omega^2-way recursion with a randomized first round achieves
expected ``O(n^3 omega/(B sqrt(M) log omega))`` reads and
``O(n^3/(B sqrt(M) log omega))`` writes — writes a factor ``~omega`` below
the standard cache-oblivious algorithm's ``Theta(n^3/(B sqrt(M)))``, total
cost better by ``O(log omega)`` in expectation.

Evidence of shape: at sizes where mid-level blocks fit in cache
(``3 s^2 <= M`` for some recursion size ``s``), the asymmetric traversal
keeps each output block resident across its ``omega`` sequential products,
so its dirty-eviction (write) count drops below the classic 2x2 order's.
The randomized first round is averaged over seeds.
"""

from __future__ import annotations

import random

from ..analysis.formulas import matmul_co_reads, matmul_co_writes
from ..analysis.tables import format_table
from ..cacheoblivious.matmul import Matrix, co_matmul_asymmetric, co_matmul_classic
from ..models.ideal_cache import CacheSim
from ..models.params import MachineParams

TITLE = "E11 Theorem 5.3 - cache-oblivious matmul: asymmetric vs classic"


def _inputs(n: int, seed: int) -> tuple[list[list], list[list]]:
    rng = random.Random(seed)
    A = [[rng.random() for _ in range(n)] for _ in range(n)]
    B = [[rng.random() for _ in range(n)] for _ in range(n)]
    return A, B


def run(quick: bool = False) -> list[dict]:
    import numpy as np

    n = 32 if quick else 64
    omegas = [4] if quick else [2, 4, 8]
    seeds = [1] if quick else [1, 2, 3]
    A_rows, B_rows = _inputs(n, seed=47)
    ref = np.array(A_rows) @ np.array(B_rows)
    rows = []
    for omega in omegas:
        params = MachineParams(M=512, B=8, omega=omega)

        cache = CacheSim(params, policy="lru")
        A = Matrix.from_rows(cache, A_rows)
        B = Matrix.from_rows(cache, B_rows)
        C = Matrix.zeros(cache, n)
        co_matmul_classic(cache, A, B, C)
        cache.flush()
        assert float(np.max(np.abs(np.array(C.peek_rows()) - ref))) < 1e-8
        classic = cache.counter.snapshot()

        asym_reads = asym_writes = 0.0
        for seed in seeds:
            cache = CacheSim(params, policy="lru")
            A = Matrix.from_rows(cache, A_rows)
            B = Matrix.from_rows(cache, B_rows)
            C = Matrix.zeros(cache, n)
            co_matmul_asymmetric(cache, A, B, C, omega=omega, seed=seed)
            cache.flush()
            assert float(np.max(np.abs(np.array(C.peek_rows()) - ref))) < 1e-8
            asym_reads += cache.counter.block_reads / len(seeds)
            asym_writes += cache.counter.block_writes / len(seeds)

        rows.append(
            {
                "n": n,
                "omega": omega,
                "classic_R": classic.block_reads,
                "classic_W": classic.block_writes,
                "asym_R": asym_reads,
                "asym_W": asym_writes,
                "W_ratio": classic.block_writes / asym_writes if asym_writes else 0.0,
                "classic_cost": classic.block_cost(omega),
                "asym_cost": asym_reads + omega * asym_writes,
                "R/pred": asym_reads / matmul_co_reads(n, params.M, params.B, omega),
                "W/pred": asym_writes / matmul_co_writes(n, params.M, params.B, omega),
            }
        )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
