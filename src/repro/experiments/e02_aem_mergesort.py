"""E2 — Theorem 4.3 / Corollary 4.4 / Appendix A: AEM mergesort and the k sweep.

Claims:

* ``R(n) <= (k+1) ceil(n/B) ceil(log_{kM/B}(n/B))`` and
  ``W(n) <= ceil(n/B) ceil(log_{kM/B}(n/B))`` — verified as *hard upper
  bounds* on the measured counts;
* sweeping ``k`` at fixed ``omega`` traces the I/O-cost curve
  ``(omega + k + 1) ceil(n/B) ceil(log ...)``; the measured-cost minimiser
  falls inside the Appendix-A feasible region ``k/log k < omega/log(M/B)``
  and beats the classic ``k = 1`` algorithm.
"""

from __future__ import annotations

from ..analysis.ktuning import feasible_k_region, k_improves
from ..analysis.tables import format_table
from ..core.aem_mergesort import aem_mergesort, predicted_reads, predicted_writes
from ..models.external_memory import AEMachine
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E2  Theorem 4.3 + Cor 4.4 - AEM mergesort: k sweep at fixed omega"


def run(quick: bool = False, n: int | None = None) -> list[dict]:
    params = MachineParams(M=64, B=8, omega=8)
    if n is None:
        n = 4000 if quick else 20000
    ks = [1, 2, 3, 4] if quick else [1, 2, 3, 4, 6, 8, 12, 16, 24, 32]
    data = random_permutation(n, seed=11)
    rows = []
    baseline_cost = None
    for k in ks:
        machine = AEMachine(params)
        arr = machine.from_list(data)
        out = aem_mergesort(machine, arr, k=k)
        assert out.peek_list() == sorted(data)
        c = machine.counter
        cost = c.block_cost(params.omega)
        if k == 1:
            baseline_cost = cost
        pr = predicted_reads(n, params.M, params.B, k)
        pw = predicted_writes(n, params.M, params.B, k)
        rows.append(
            {
                "k": k,
                "reads": c.block_reads,
                "writes": c.block_writes,
                "cost": cost,
                "cost/classic": cost / baseline_cost if baseline_cost else 1.0,
                "reads<=Thm4.3": c.block_reads <= pr,
                "writes<=Thm4.3": c.block_writes <= pw,
                "feasible(CorA)": k_improves(k, params),
            }
        )
    return rows


def run_omega_sweep(quick: bool = False) -> list[dict]:
    """Best-k cost improvement over classic, per omega (the crossover table)."""
    n = 4000 if quick else 20000
    data = random_permutation(n, seed=13)
    rows = []
    for omega in ([4, 16] if quick else [2, 4, 8, 16, 32]):
        params = MachineParams(M=64, B=8, omega=omega)
        ks = feasible_k_region(params, k_max=2 * omega)
        best = None
        classic_cost = None
        for k in sorted(set(ks) | {1}):
            machine = AEMachine(params)
            arr = machine.from_list(data)
            aem_mergesort(machine, arr, k=k)
            cost = machine.counter.block_cost(omega)
            if k == 1:
                classic_cost = cost
            if best is None or cost < best[1]:
                best = (k, cost)
        rows.append(
            {
                "omega": omega,
                "best_k": best[0],
                "best_cost": best[1],
                "classic_cost": classic_cost,
                "improvement": classic_cost / best[1],
            }
        )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))
    print()
    print(format_table(run_omega_sweep(), title="E2b best-k improvement vs omega"))


if __name__ == "__main__":  # pragma: no cover
    main()
