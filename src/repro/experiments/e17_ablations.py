"""E17 — Ablations of the reproduction's design choices (DESIGN.md §§1, 4).

Three knobs, each isolating one decision:

* ``round_threshold`` — Algorithm 2's erratum fix.  Disabling it runs the
  paper-literal pseudocode; on the crafted four-run input from the test
  suite it *strands records* (detected and raised), while the fixed
  algorithm sorts the same input.
* ``sample_factor`` — the sample sort's over-sampling constant
  ``Theta(l log n)``.  Lower factors save sampling I/O but skew bucket
  sizes (threatening the w.h.p. balance that Theorem 4.5 assumes).
* ``bucket_slack`` — Algorithm 1's step-2 array slack ``c``.  Smaller slack
  raises placement collision tries (step 4's expected-O(1) argument needs
  >= 2x headroom); larger slack wastes step-5 packing reads.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.aem_mergesort import StrandingDetected, _merge
from ..core.aem_samplesort import aem_samplesort
from ..core.pram_sample_sort import pram_sample_sort
from ..models.external_memory import AEMachine, MemoryGuard
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E17 Ablations - erratum fix / over-sampling / placement slack"

#: the stranding witness from tests/test_aem_mergesort.py
_STRAND_RUNS = [
    [1, 2, 3, 4, 45, 60, 61, 62],
    [5, 6, 7, 8],
    [9, 11, 12, 40],
    [10, 50, 51, 52],
]


def run(quick: bool = False) -> list[dict]:
    rows = []
    rows.extend(_ablate_round_threshold())
    rows.extend(_ablate_sample_factor(quick))
    rows.extend(_ablate_bucket_slack(quick))
    return rows


def _ablate_round_threshold() -> list[dict]:
    out = []
    for fixed in (True, False):
        machine = AEMachine(MachineParams(M=8, B=4, omega=4))
        runs = [machine.from_list(r) for r in _STRAND_RUNS]
        try:
            merged = _merge(machine, runs, MemoryGuard(), round_threshold=fixed)
            ok = merged.peek_list() == sorted(x for r in _STRAND_RUNS for x in r)
            outcome = "sorted" if ok else "WRONG OUTPUT"
        except StrandingDetected:
            outcome = "records stranded (detected)"
        out.append(
            {
                "ablation": "round_threshold",
                "setting": "fixed" if fixed else "paper-literal",
                "outcome": outcome,
                "metric": "",
                "value": "",
            }
        )
    return out


def _ablate_sample_factor(quick: bool) -> list[dict]:
    n = 4000 if quick else 16000
    params = MachineParams(M=64, B=8, omega=8)
    data = random_permutation(n, seed=71)
    out = []
    for sf in (1, 4, 16):
        machine = AEMachine(params)
        result = aem_samplesort(
            machine, machine.from_list(data), k=2, seed=71, sample_factor=sf
        )
        assert result.peek_list() == sorted(data)
        out.append(
            {
                "ablation": "sample_factor",
                "setting": f"c={sf}",
                "outcome": "sorted",
                "metric": "block writes",
                "value": machine.counter.block_writes,
            }
        )
    return out


def _ablate_bucket_slack(quick: bool) -> list[dict]:
    n = 4000 if quick else 16000
    data = random_permutation(n, seed=73)
    out = []
    for slack in (2, 4, 8):
        res = pram_sample_sort(data, omega=8, seed=73, bucket_slack=slack)
        assert res.output == sorted(data)
        out.append(
            {
                "ablation": "bucket_slack",
                "setting": f"c={slack}",
                "outcome": "sorted",
                "metric": "tries/record",
                "value": round(res.stats["placement_tries"] / n, 3),
            }
        )
    return out


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
