"""E8 — Theorem 5.1 / Figure 1: the cache-oblivious sort.

Claim: ``O((omega n/B) log_{omega M}(omega n))`` reads and
``O((n/B) log_{omega M}(omega n))`` writes; the ``omega = 1`` instantiation
is the original symmetric sort of [9] (the baseline).

Evidence of shape: the asymmetric variant writes strictly less than the
classic at every omega (and increasingly so), while its reads grow — and its
total asymmetric cost wins once omega is large enough to pay for the extra
reads.
"""

from __future__ import annotations

from ..analysis.formulas import co_sort_reads, co_sort_writes
from ..analysis.tables import format_table
from ..core.co_sort import co_sort
from ..models.ideal_cache import CacheSim
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E8  Theorem 5.1 - cache-oblivious sort: asymmetric vs classic [9]"


def _measure(n: int, params: MachineParams, omega_alg: int, data: list) -> tuple[int, int]:
    cache = CacheSim(params, policy="lru")
    arr = cache.array(data)
    co_sort(cache, arr, omega=omega_alg)
    cache.flush()
    assert arr.peek_list() == sorted(data)
    return cache.counter.block_reads, cache.counter.block_writes


def run(quick: bool = False) -> list[dict]:
    n = 4096 if quick else 16384
    omegas = [4] if quick else [2, 4, 8, 16]
    data = random_permutation(n, seed=43)
    rows = []
    for omega in omegas:
        params = MachineParams(M=256, B=16, omega=omega)
        classic_r, classic_w = _measure(n, params, 1, data)
        asym_r, asym_w = _measure(n, params, omega, data)
        rows.append(
            {
                "n": n,
                "omega": omega,
                "classic_R": classic_r,
                "classic_W": classic_w,
                "asym_R": asym_r,
                "asym_W": asym_w,
                "W_ratio": classic_w / asym_w if asym_w else 0.0,
                "classic_cost": classic_r + omega * classic_w,
                "asym_cost": asym_r + omega * asym_w,
                "R/pred": asym_r / co_sort_reads(n, params.M, params.B, omega),
                "W/pred": asym_w / co_sort_writes(n, params.M, params.B, omega),
            }
        )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
