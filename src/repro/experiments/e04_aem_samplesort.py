"""E4 — Theorem 4.5: AEM sample sort (distribution sort).

Claim (w.h.p.): ``R(n) = O((kn/B) ceil(log_{kM/B}(n/B)))`` and
``W(n) = O((n/B) ceil(log_{kM/B}(n/B)))``.

Evidence of shape: the measured/predicted ratios stay bounded (and roughly
flat) across an ``n`` sweep, and the write count is within a small constant
of the mergesort's (they share the recursion shape), while the ``k``-fold
read multiplier shows up in the read column.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.aem_samplesort import aem_samplesort, predicted_reads, predicted_writes
from ..models.external_memory import AEMachine
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E4  Theorem 4.5 - AEM sample sort: measured vs predicted"


def run(quick: bool = False) -> list[dict]:
    params = MachineParams(M=64, B=8, omega=8)
    sizes = [2000, 8000] if quick else [2000, 8000, 32000]
    ks = [1, 3] if quick else [1, 2, 3, 4, 8]
    rows = []
    for n in sizes:
        data = random_permutation(n, seed=n)
        for k in ks:
            machine = AEMachine(params)
            arr = machine.from_list(data)
            out = aem_samplesort(machine, arr, k=k, seed=17)
            assert out.peek_list() == sorted(data)
            c = machine.counter
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "reads": c.block_reads,
                    "reads/pred": c.block_reads / predicted_reads(n, params.M, params.B, k),
                    "writes": c.block_writes,
                    "writes/pred": c.block_writes
                    / predicted_writes(n, params.M, params.B, k),
                    "cost": c.block_cost(params.omega),
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
