"""E16 — Equation (1) sanity: measured sorts bracket the Aggarwal–Vitter bound.

The paper's Equation (1): sorting in the (symmetric) EM model takes
``Theta((n/B) log_{M/B}(n/B))`` transfers, upper *and* lower bound.  As a
whole-pipeline sanity check, every classic (k = 1) sort's measured total
transfers must lie within small constant factors of that bound — below it
would contradict the lower bound (a cost-accounting leak); far above it
would indicate an implementation inefficiency.
"""

from __future__ import annotations

from ..analysis.formulas import em_sort_transfers
from ..analysis.tables import format_table
from ..core.aem_heapsort import aem_heapsort
from ..core.aem_mergesort import aem_mergesort
from ..core.aem_samplesort import aem_samplesort
from ..models.external_memory import AEMachine
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E16 Equation (1) - classic sorts vs the Aggarwal-Vitter Theta bound"

_ALGOS = {
    "mergesort": lambda m, a: aem_mergesort(m, a, k=1),
    "samplesort": lambda m, a: aem_samplesort(m, a, k=1, seed=61),
    "heapsort": lambda m, a: aem_heapsort(m, a, k=1),
}


def run(quick: bool = False) -> list[dict]:
    params = MachineParams(M=64, B=8, omega=1)  # symmetric: Equation (1)'s model
    sizes = [4000] if quick else [4000, 16000, 64000]
    rows = []
    for n in sizes:
        data = random_permutation(n, seed=n)
        bound = em_sort_transfers(n, params.M, params.B)
        for name, fn in _ALGOS.items():
            machine = AEMachine(params)
            out = fn(machine, machine.from_list(data))
            assert out.peek_list() == sorted(data)
            total = machine.counter.total_io()
            rows.append(
                {
                    "n": n,
                    "algorithm": name,
                    "transfers": total,
                    "AV bound": bound,
                    "ratio": total / bound,
                    "sane": 0.3 < total / bound < 12.0,
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
