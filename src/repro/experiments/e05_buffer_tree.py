"""E5 — Theorems 4.7 & 4.10: buffer-tree inserts and the AEM priority queue.

Claims:

* buffer-tree INSERT: amortized ``O((k/B)(1 + log_{kM/B} n))`` reads and
  ``O((1/B)(1 + log_{kM/B} n))`` writes (Thm 4.7);
* priority-queue INSERT/DELETE-MIN: same bounds (Thm 4.10), hence heapsort in
  ``O((kn/B)(1+log_{kM/B} n))`` reads / ``O((n/B)(1+log_{kM/B} n))`` writes.

Evidence of shape: per-operation measured/predicted ratios stay bounded as
``n`` grows (the buffer tree carries bigger constants than the other two
sorts — the paper says so explicitly in §4.3's preamble).
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.aem_heapsort import (
    AEMPriorityQueue,
    predicted_amortized_reads,
    predicted_amortized_writes,
)
from ..core.buffer_tree import BufferTree
from ..models.external_memory import AEMachine
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E5  Theorems 4.7/4.10 - buffer tree & priority queue amortized costs"


def run(quick: bool = False) -> list[dict]:
    params = MachineParams(M=64, B=8, omega=8)
    sizes = [2000, 8000] if quick else [2000, 8000, 32000]
    ks = [1, 2] if quick else [1, 2, 4]
    rows = []
    for n in sizes:
        data = random_permutation(n, seed=n)
        for k in ks:
            # --- insert-only: Theorem 4.7 -------------------------------- #
            machine = AEMachine(params)
            tree = BufferTree(machine, k=k)
            tree.insert_many(data)
            ins = machine.counter.snapshot()

            # --- full PQ sort: Theorem 4.10 ------------------------------ #
            machine2 = AEMachine(params)
            pq = AEMPriorityQueue(machine2, k=k)
            for rec in data:
                pq.insert(rec)
            out = [pq.delete_min() for _ in range(n)]
            assert out == sorted(data)
            ops = 2 * n
            c = machine2.counter
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "ins_reads/op": ins.block_reads / n,
                    "ins_writes/op": ins.block_writes / n,
                    "pq_reads/op": c.block_reads / ops,
                    "pq_writes/op": c.block_writes / ops,
                    "reads/pred": (c.block_reads / ops)
                    / predicted_amortized_reads(n, params.M, params.B, k),
                    "writes/pred": (c.block_writes / ops)
                    / predicted_amortized_writes(n, params.M, params.B, k),
                    "splits": pq.tree.leaf_splits + pq.tree.internal_splits,
                    "rebuilds": pq.beta_rebuilds,
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
