"""E9 — §5.2: cache-oblivious FFT, write-efficient variant vs standard.

Claim: ``O((omega n/B) log_{omega M}(omega n))`` reads and
``O((n/B) log_{omega M}(omega n))`` writes for the asymmetric variant, versus
``O((n/B) log_M n)`` reads *and* writes for the standard algorithm.

The paper itself hedges (§5.2): *"the algorithm as described requires an
extra transpose and an extra write in step 2(b)i relative to the standard
version. This might negate any advantage from reducing the number of
levels"* (and sketches how the extras could be merged away).  The experiment
measures the as-described algorithm, so small sizes can show the asymmetric
variant writing slightly *more* — exactly the caveat quoted above; the level
reduction shows up once ``n`` is large relative to ``M``.
"""

from __future__ import annotations

import cmath
import random

from ..analysis.formulas import fft_reads, fft_writes
from ..analysis.tables import format_table
from ..cacheoblivious.fft import co_fft, co_fft_asymmetric
from ..models.ideal_cache import CacheSim
from ..models.params import MachineParams

TITLE = "E9  Section 5.2 - cache-oblivious FFT: asymmetric vs standard"


def _input(n: int, seed: int) -> list[complex]:
    rng = random.Random(seed)
    return [complex(rng.random() - 0.5, rng.random() - 0.5) for _ in range(n)]


def _verify(values: list[complex], original: list[complex]) -> None:
    """Spot-check the DFT at a few output indices (O(n) each)."""
    n = len(original)
    for k in (0, 1, n // 2, n - 1):
        ref = sum(
            original[j] * cmath.exp(-2j * cmath.pi * j * k / n) for j in range(n)
        )
        if abs(ref - values[k]) > 1e-6 * max(1.0, abs(ref)):
            raise AssertionError(f"FFT mismatch at k={k}")


def run(quick: bool = False) -> list[dict]:
    sizes = [1024] if quick else [1024, 4096, 16384]
    omegas = [4] if quick else [2, 4, 8]
    rows = []
    for n in sizes:
        data = _input(n, seed=n)
        for omega in omegas:
            params = MachineParams(M=64, B=8, omega=omega)
            std = CacheSim(params, policy="lru")
            x = std.array(data)
            co_fft(std, x)
            std.flush()
            _verify(x.peek_list(), data)

            asym = CacheSim(params, policy="lru")
            y = asym.array(data)
            co_fft_asymmetric(asym, y, omega=omega)
            asym.flush()
            _verify(y.peek_list(), data)

            fused = CacheSim(params, policy="lru")
            z = fused.array(data)
            co_fft_asymmetric(fused, z, omega=omega, fused=True)
            fused.flush()
            _verify(z.peek_list(), data)

            rows.append(
                {
                    "n": n,
                    "omega": omega,
                    "std_R": std.counter.block_reads,
                    "std_W": std.counter.block_writes,
                    "asym_R": asym.counter.block_reads,
                    "asym_W": asym.counter.block_writes,
                    "fused_W": fused.counter.block_writes,
                    "std_cost": std.counter.block_cost(omega),
                    "asym_cost": asym.counter.block_cost(omega),
                    "fused_cost": fused.counter.block_cost(omega),
                    "R/pred": asym.counter.block_reads
                    / fft_reads(n, params.M, params.B, omega),
                    "W/pred": asym.counter.block_writes
                    / fft_writes(n, params.M, params.B, omega),
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
