"""E13 — §3: RAM-model sorting with O(n) writes.

Claim: inserting into a balanced BST (with O(1) amortized rebalancing
writes) sorts with ``O(n log n)`` reads and ``O(n)`` writes, total asymmetric
cost ``O(n (omega + log n))``; classic in-place sorts pay ``Theta(n log n)``
writes.

Evidence of shape: ``writes/n`` stays flat for the red-black tree and treap
while it grows like ``log n`` for quicksort/mergesort/heapsort (and for the
AVL tree, whose height-maintenance writes make it the instructive wrong
choice).
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..core.ram_sort import RAM_SORTS
from ..workloads import random_permutation

TITLE = "E13 Section 3 - RAM sorts: writes/n flat (BST) vs growing (classics)"


def run(quick: bool = False) -> list[dict]:
    sizes = [1000, 4000] if quick else [1000, 4000, 16000, 64000]
    omega = 8
    rows = []
    for n in sizes:
        data = random_permutation(n, seed=n)
        expected = sorted(data)
        for name, fn in RAM_SORTS.items():
            out, counter = fn(data)
            assert out == expected, f"{name} wrong"
            rows.append(
                {
                    "n": n,
                    "algorithm": name,
                    "reads": counter.element_reads,
                    "reads/(n log n)": counter.element_reads / (n * math.log2(n)),
                    "writes": counter.element_writes,
                    "writes/n": counter.element_writes / n,
                    "cost(w=8)": counter.element_cost(omega),
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
