"""E1 — Theorem 3.2: Asymmetric PRAM sample sort.

Claim: ``O(n log n)`` reads, ``O(n)`` writes, ``O(omega log n)`` depth w.h.p.

Evidence of shape: across an ``n`` sweep, ``reads/(n log n)`` and ``writes/n``
stay (near-)constant while a classic PRAM sort would have ``writes/n`` grow
like ``log n``.  Depth is reported against both ``omega log n`` and
``omega log^2 n``: at laptop-scale ``n`` the Lemma 3.1 sub-partitioning is
vacuous (buckets of size ``log^2 n`` have ``m^{1/3} < log m``), so the
measured depth tracks the *pre-Lemma-3.1* ``O(omega log^2 n)`` variant — the
asymptotic regime caveat is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..core.pram_sample_sort import pram_sample_sort
from ..workloads import random_permutation

TITLE = "E1  Theorem 3.2 - PRAM sample sort: reads O(n log n), writes O(n), depth"


def run(quick: bool = False) -> list[dict]:
    sizes = [1000, 4000] if quick else [1000, 4000, 16000, 64000]
    omegas = [8] if quick else [2, 8, 32]
    rows = []
    for omega in omegas:
        for n in sizes:
            data = random_permutation(n, seed=n)
            res = pram_sample_sort(data, omega, seed=7)
            assert res.output == sorted(data)
            log_n = math.log2(n)
            rows.append(
                {
                    "omega": omega,
                    "n": n,
                    "reads": res.reads,
                    "reads/(n log n)": res.reads / (n * log_n),
                    "writes": res.writes,
                    "writes/n": res.writes / n,
                    "depth": res.depth,
                    "depth/(w log n)": res.depth / (omega * log_n),
                    "depth/(w log^2 n)": res.depth / (omega * log_n * log_n),
                }
            )
    return rows


def main() -> None:  # pragma: no cover - exercised via benchmarks/examples
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
