"""Experiment runners: one module per paper claim (see DESIGN.md §3).

Every module exposes ``run(quick: bool = False) -> list[dict]`` returning
table rows, plus a ``main()`` that prints the table.  Benchmarks wrap the
``quick=True`` variants; EXPERIMENTS.md records the full runs.
"""

from . import (
    e01_pram_sort,
    e02_aem_mergesort,
    e03_selection_base,
    e04_aem_samplesort,
    e05_buffer_tree,
    e06_three_sorts,
    e07_rwlru,
    e08_co_sort,
    e09_fft,
    e10_em_matmul,
    e11_co_matmul,
    e12_schedulers,
    e13_ram_sort,
    e14_co_sort_stages,
    e15_parallel_samplesort,
    e16_lower_bound,
    e17_ablations,
)

ALL_EXPERIMENTS = {
    "E1": e01_pram_sort,
    "E2": e02_aem_mergesort,
    "E3": e03_selection_base,
    "E4": e04_aem_samplesort,
    "E5": e05_buffer_tree,
    "E6": e06_three_sorts,
    "E7": e07_rwlru,
    "E8": e08_co_sort,
    "E9": e09_fft,
    "E10": e10_em_matmul,
    "E11": e11_co_matmul,
    "E12": e12_schedulers,
    "E13": e13_ram_sort,
    "E14": e14_co_sort_stages,
    "E15": e15_parallel_samplesort,
    "E16": e16_lower_bound,
    "E17": e17_ablations,
}

__all__ = ["ALL_EXPERIMENTS"]
