"""E14 — Figure 1 anatomy: stage-level cost budget of the CO sort.

Reproduces Figure 1 as a *measured* table: one top-level invocation of the
§5.1 sort with a :class:`~repro.models.counters.PhaseRecorder`, attributing
block reads/writes to stages (a) recursive subarray sorts, (b) sampling and
splitter selection, (c) counts + bucket transpose, (d) the omega-round
sub-partition, and (d') the recursive sub-bucket sorts.

Expected shape: stage (d) carries the deliberate ~omega-fold read
amplification while every stage writes O(n/B); stages (a)/(d') carry the
recursion's remaining cost.
"""

from __future__ import annotations

from ..analysis.tables import format_table
from ..core.co_sort import co_sort
from ..models.counters import PhaseRecorder
from ..models.ideal_cache import CacheSim
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E14 Figure 1 anatomy - per-stage reads/writes of the CO sort"


def run(quick: bool = False) -> list[dict]:
    n = 4096 if quick else 16384
    omega = 8
    params = MachineParams(M=256, B=16, omega=omega)
    cache = CacheSim(params, policy="lru")
    data = random_permutation(n, seed=53)
    arr = cache.array(data)
    recorder = PhaseRecorder(cache.counter)
    co_sort(cache, arr, omega=omega, recorder=recorder)
    cache.flush()
    assert arr.peek_list() == sorted(data)
    total_r = sum(ph.delta.block_reads for ph in recorder.phases) or 1
    total_w = sum(ph.delta.block_writes for ph in recorder.phases) or 1
    rows = []
    for ph in recorder.phases:
        rows.append(
            {
                "stage": ph.name,
                "reads": ph.delta.block_reads,
                "reads%": 100.0 * ph.delta.block_reads / total_r,
                "writes": ph.delta.block_writes,
                "writes%": 100.0 * ph.delta.block_writes / total_w,
                "R/W": (
                    ph.delta.block_reads / ph.delta.block_writes
                    if ph.delta.block_writes
                    else float("inf")
                ),
            }
        )
    rows.append(
        {
            "stage": "TOTAL",
            "reads": total_r,
            "reads%": 100.0,
            "writes": total_w,
            "writes%": 100.0,
            "R/W": total_r / total_w,
        }
    )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
