"""E15 — §4.2 extension: sample sort on the Asymmetric Private-Cache model.

Claim: with ``p = n/M`` processors the parallel sample sort runs in
``O(k (M/B + log^2 n)(1 + log_{kM/B}(n/kM)))`` time — linear speedup when
``M/B >= log^2 n``.

Measured: per-processor cost ledgers give makespan and speedup
(= total work / makespan).  At our laptop-scale ``M/B`` the ``log^2 n``
synchronisation terms are *not* negligible, so measured speedup sits below
``p`` by exactly that factor — the experiment reports both.
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..core.parallel_samplesort import parallel_samplesort
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E15 Section 4.2 ext - parallel sample sort on private caches"


def run(quick: bool = False) -> list[dict]:
    params = MachineParams(M=64, B=8, omega=8)
    sizes = [2048, 8192] if quick else [2048, 8192, 32768]
    ks = [2] if quick else [1, 2, 4]
    rows = []
    for n in sizes:
        data = random_permutation(n, seed=n)
        for k in ks:
            res = parallel_samplesort(params, data, k=k, seed=5)
            assert res.output.peek_list() == sorted(data)
            p = res.ledger.p
            log2n = math.log2(n) ** 2
            levels = 1 + max(
                0.0, math.log(n / (k * params.M)) / math.log(k * params.M / params.B)
            )
            predicted = k * (params.M / params.B + log2n) * levels
            rows.append(
                {
                    "n": n,
                    "k": k,
                    "p=n/M": p,
                    "makespan": res.ledger.makespan,
                    "speedup": res.speedup,
                    "speedup/p": res.speedup / p,
                    "makespan/pred": res.ledger.makespan / predicted,
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
