"""E7 — Lemma 2.1: the read-write LRU policy is competitive.

Claim: for any instruction sequence S,

    Q_L(S) <= M_L / (M_L - M_I) * Q_I(S) + (1 + omega) * M_I / B

where Q_I is the cost on the Asymmetric Ideal-Cache of size M_I and Q_L the
cost under read-write LRU with pools of size M_L.

The asymmetric offline optimum is not efficiently computable; we substitute
the cheaper of two offline policies for Q_I: Belady's MIN (miss-optimal) and
a write-aware greedy MIN variant that discounts dirty victims by ``omega``
(cost-oriented; it trades extra misses for fewer write-backs and measurably
beats classic MIN in cost on write-heavy traces).  Because OPT <= both,
verifying the inequality with their minimum on the right-hand side is
*implied by* the lemma — each trace where it holds is consistent evidence,
and a violation would refute the lemma.  We also report plain LRU (single
pool) for contrast: the paper notes it is **not** 2-competitive under
asymmetric costs.
"""

from __future__ import annotations

from ..analysis.formulas import lru_competitive_bound
from ..analysis.tables import format_table
from ..models.ideal_cache import simulate_trace
from ..models.params import MachineParams
from ..models.trace import capture_trace, looping_trace, random_trace, zipf_trace

TITLE = "E7  Lemma 2.1 - read-write LRU (M_L = 2 M_I) vs Belady (M_I)"


def _sorting_trace(n: int, params: MachineParams) -> list[tuple[int, bool]]:
    """Block trace of the cache-oblivious mergesort on a random input."""
    from ..cacheoblivious.mergesort import co_mergesort
    from ..workloads import random_permutation

    def computation(cache) -> None:
        arr = cache.array(random_permutation(n, seed=n))
        co_mergesort(cache, arr)

    return capture_trace(computation, params)


def run(quick: bool = False) -> list[dict]:
    m_ideal = 64
    B = 8
    omegas = [8] if quick else [2, 8, 32]
    n_small = 600 if quick else 2000
    rows = []
    for omega in omegas:
        ideal_params = MachineParams(M=m_ideal, B=B, omega=omega)
        lru_params = MachineParams(M=2 * m_ideal, B=B, omega=omega)
        traces = {
            "mergesort": _sorting_trace(n_small, ideal_params),
            "random": random_trace(4000 if quick else 20000, 64, seed=31),
            "loop": looping_trace(40 if quick else 200, 24, seed=37),
            "zipf": zipf_trace(4000 if quick else 20000, 96, seed=41),
        }
        for name, trace in traces.items():
            q_belady = simulate_trace(trace, ideal_params, policy="belady").block_cost(omega)
            q_asym = simulate_trace(trace, ideal_params, policy="belady-asym").block_cost(omega)
            # the tightest available offline reference (OPT <= both)
            q_ref = min(q_belady, q_asym)
            q_rwlru = simulate_trace(trace, lru_params, policy="rwlru").block_cost(omega)
            q_lru = simulate_trace(trace, lru_params, policy="lru").block_cost(omega)
            bound = lru_competitive_bound(q_ref, 2 * m_ideal, m_ideal, B, omega)
            rows.append(
                {
                    "omega": omega,
                    "trace": name,
                    "Q_belady(M_I)": q_belady,
                    "Q_belady_asym(M_I)": q_asym,
                    "Q_rwlru(M_L)": q_rwlru,
                    "bound": bound,
                    "holds": q_rwlru <= bound,
                    "rwlru/ref": q_rwlru / q_ref if q_ref else 0.0,
                    "Q_lru(M_L)": q_lru,
                }
            )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
