"""E10 — Theorem 5.2: EM blocked matrix multiplication.

Claim: ``O(n^3/(B sqrt(M)))`` reads and ``O(n^2/B)`` writes — every output
tile is accumulated in primary memory and written exactly once.

Evidence of shape: ``reads/(n^3/(B sqrt(M)))`` and ``writes/(n^2/B)`` are flat
across the ``n`` sweep, and the write column is *independent of the k-loop
depth* (the defining property versus a write-naive tiling).
"""

from __future__ import annotations

import random

from ..analysis.formulas import matmul_em_reads, matmul_em_writes
from ..analysis.tables import format_table
from ..cacheoblivious.matmul import em_blocked_matmul
from ..models.external_memory import AEMachine
from ..models.params import MachineParams

TITLE = "E10 Theorem 5.2 - EM blocked matmul: reads O(n^3/(B sqrt M)), writes O(n^2/B)"


def run(quick: bool = False) -> list[dict]:
    params = MachineParams(M=192, B=8, omega=8)  # t = floor(sqrt(M/3)) = 8
    sizes = [16, 32] if quick else [16, 32, 64, 96]
    rows = []
    for n in sizes:
        rng = random.Random(n)
        A = [[rng.random() for _ in range(n)] for _ in range(n)]
        B_ = [[rng.random() for _ in range(n)] for _ in range(n)]
        machine = AEMachine(params)
        out = em_blocked_matmul(machine, A, B_)
        # verification (uncharged)
        import numpy as np

        assert (
            float(np.max(np.abs(np.array(out) - np.array(A) @ np.array(B_)))) < 1e-8
        )
        c = machine.counter
        rows.append(
            {
                "n": n,
                "reads": c.block_reads,
                "reads/pred": c.block_reads / matmul_em_reads(n, params.M, params.B),
                "writes": c.block_writes,
                "writes/pred": c.block_writes / matmul_em_writes(n, params.B),
                "cost": c.block_cost(params.omega),
            }
        )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
