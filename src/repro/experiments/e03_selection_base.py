"""E3 — Lemma 4.2: the AEM base-case selection sort.

Claim: ``n <= kM`` records sorted with at most ``k * ceil(n/B)`` reads and
``ceil(n/B)`` writes in memory ``M + B``.

Both bounds are *exact* inequalities here (no asymptotics): the experiment
asserts them for every row, and reports the write count hitting
``ceil(n/B)`` exactly.
"""

from __future__ import annotations

import math

from ..analysis.tables import format_table
from ..core.selection_sort import selection_sort
from ..models.external_memory import AEMachine, MemoryGuard
from ..models.params import MachineParams
from ..workloads import random_permutation

TITLE = "E3  Lemma 4.2 - selection-sort base case: exact read/write bounds"


def run(quick: bool = False) -> list[dict]:
    params = MachineParams(M=64, B=8, omega=8)
    multiples = [1, 2, 4] if quick else [1, 2, 3, 4, 6, 8, 12, 16]
    rows = []
    for mult in multiples:
        n = mult * params.M
        k = math.ceil(n / params.M)
        data = random_permutation(n, seed=n)
        machine = AEMachine(params)
        arr = machine.from_list(data)
        guard = MemoryGuard()
        out = selection_sort(machine, arr, guard=guard)
        assert out.peek_list() == sorted(data)
        c = machine.counter
        read_bound = k * math.ceil(n / params.B)
        write_bound = math.ceil(n / params.B)
        rows.append(
            {
                "n": n,
                "k=ceil(n/M)": k,
                "reads": c.block_reads,
                "k*ceil(n/B)": read_bound,
                "reads_ok": c.block_reads <= read_bound,
                "writes": c.block_writes,
                "ceil(n/B)": write_bound,
                "writes_exact": c.block_writes == write_bound,
                "mem_high_water": guard.high_water,
            }
        )
    return rows


def main() -> None:  # pragma: no cover
    print(format_table(run(), title=TITLE))


if __name__ == "__main__":  # pragma: no cover
    main()
