#!/usr/bin/env python3
"""Asynchronous sort jobs: submit now, collect when ready.

Every blocking entry point makes the caller wait out the whole sort.  A
request-serving deployment wants the opposite: hand the job to a persistent
:class:`~repro.service.SortService`, get a :class:`SortFuture` back
immediately, and let priorities decide who runs first when the pool is busy.

The scenario: a nightly analytics backfill (bulk, low priority) is mid-queue
when an interactive dashboard request arrives (high priority).  The
dashboard job overtakes the backlog; one backfill job turns out to be
malformed and fails alone; another gets cancelled before it ever runs —
and none of that disturbs the rest.  Finally the same service answers over
a TCP socket, the way ``python -m repro serve`` exposes it.

Run:  python examples/service_jobs.py
"""

import random

from repro import MachineParams, SortJob
from repro.service import EngineServer, ServiceClient, SortService


def main() -> None:
    params = MachineParams(M=64, B=8, omega=8)
    rng = random.Random(42)
    print(f"SortService on {params}: submit/futures with priority dispatch\n")

    with SortService(params, workers=2) as service:
        # 1. a bulk backfill queues at low priority (higher value = later)
        backfill = [
            service.submit(
                SortJob(
                    data=rng.sample(range(1_000_000), 1_500),
                    params=params,
                    label=f"backfill/{i}",
                ),
                priority=10,
            )
            for i in range(6)
        ]
        # ... including one malformed job (unknown algorithm) ...
        doomed = service.submit(
            SortJob(data=[3, 1, 2], params=params, algorithm="bogosort",
                    label="backfill/malformed"),
            priority=10,
        )
        # ... and one that ops cancels before it is dispatched
        cancelled = service.submit(
            SortJob(data=rng.sample(range(1000), 500), params=params,
                    label="backfill/cancelled"),
            priority=10,
        )
        cancelled.cancel()

        # 2. an interactive request arrives late but jumps the queue
        dashboard = service.submit(
            SortJob(data=rng.sample(range(10_000), 800), params=params,
                    label="dashboard"),
            priority=0,
        )
        dash_report = dashboard.result()
        pending = sum(1 for f in backfill if not f.done())
        print(
            f"dashboard job sorted {dash_report.n} records "
            f"({dash_report.algorithm}, cost {dash_report.cost():g}) while "
            f"{pending} backfill jobs were still pending behind it"
        )

        # 3. futures surface each outcome independently
        ok = sum(1 for f in backfill if f.result().is_sorted())
        assert cancelled.cancelled()
        failure = doomed.exception()
        print(
            f"backfill: {ok} sorted, 1 failed alone "
            f"({type(failure).__name__}: {failure}), 1 cancelled before dispatch"
        )
        stats = service.stats()
        print(
            f"service stats: {stats['submitted']} submitted, "
            f"{stats['completed']} completed, {stats['cancelled']} cancelled\n"
        )

        # 4. the same service, served over a socket (what `repro serve` runs)
        with EngineServer(service).start() as server:
            host, port = server.address
            with ServiceClient(host, port, retries=20) as client:
                data = rng.sample(range(100_000), 1_000)
                ticket = client.submit(data, label="remote")
                result = client.result(ticket)
                assert result["output"] == sorted(data)
                print(
                    f"served over {host}:{port}: ticket {ticket} → "
                    f"{result['n']} records via {result['algorithm']}, "
                    f"cost {result['cost']:g}"
                )


if __name__ == "__main__":
    main()
