#!/usr/bin/env python3
"""Scenario: a cache-oblivious signal pipeline (sort + FFT + matmul) under
the Asymmetric Ideal-Cache model, §5.

A sensor-processing job on an NVM-backed accelerator: deduplicate/sort a
sample stream, Fourier-transform it, and correlate channels with a matrix
product — all cache-*obliviously* (the code never sees M or B), measured
under the cache simulator with the paper's read-write LRU policy of
Lemma 2.1.

Run:  python examples/cache_oblivious_pipeline.py
"""

import random

from repro import CacheSim, MachineParams
from repro.analysis.tables import format_table
from repro.cacheoblivious import (
    Matrix,
    co_fft_asymmetric,
    co_matmul_asymmetric,
)
from repro.core.co_sort import co_sort
from repro.models.counters import PhaseRecorder
from repro.workloads import random_permutation


def main() -> None:
    omega = 8
    params = MachineParams(M=256, B=16, omega=omega)
    n = 4096

    for policy in ("lru", "rwlru"):
        cache = CacheSim(params, policy=policy)
        recorder = PhaseRecorder(cache.counter)

        # stage 1: sort the sample stream (Figure 1 algorithm)
        with recorder.phase("co_sort"):
            arr = cache.array(random_permutation(n, seed=1))
            co_sort(cache, arr, omega=omega)
            assert arr.peek_list() == sorted(range(n))

        # stage 2: FFT the (normalised) sorted signal
        with recorder.phase("co_fft"):
            signal = cache.array([complex(v / n, 0.0) for v in arr.peek_list()])
            co_fft_asymmetric(cache, signal, omega=omega)

        # stage 3: channel correlation via matmul
        with recorder.phase("co_matmul"):
            rng = random.Random(2)
            m = 32
            A = Matrix.from_rows(
                cache, [[rng.random() for _ in range(m)] for _ in range(m)]
            )
            B = Matrix.from_rows(
                cache, [[rng.random() for _ in range(m)] for _ in range(m)]
            )
            C = Matrix.zeros(cache, m)
            co_matmul_asymmetric(cache, A, B, C, omega=omega, seed=3)

        cache.flush()
        rows = [
            {
                "stage": ph.name,
                "block reads": ph.delta.block_reads,
                "block writes": ph.delta.block_writes,
                "cost": ph.delta.block_cost(omega),
            }
            for ph in recorder.phases
        ]
        rows.append(
            {
                "stage": "TOTAL",
                "block reads": cache.counter.block_reads,
                "block writes": cache.counter.block_writes,
                "cost": cache.counter.block_cost(omega),
            }
        )
        print(
            format_table(
                rows,
                title=f"pipeline under policy={policy} (omega={omega}, oblivious to M={params.M}, B={params.B})",
            )
        )
        print()


if __name__ == "__main__":
    main()
