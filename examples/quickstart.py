#!/usr/bin/env python3
"""Quickstart: sort under asymmetric read/write costs and read the bill.

This walks the three levels of the library in ~40 lines of user code:

1. pick a machine (`MachineParams`): memory M, block size B, write cost omega;
2. sort with a write-efficient algorithm and with its classic counterpart;
3. compare the asymmetric I/O costs the two algorithms pay.

Run:  python examples/quickstart.py
"""

from repro import MachineParams, sort_external, sort_ram
from repro.analysis.ktuning import choose_k
from repro.analysis.tables import format_table
from repro.workloads import random_permutation


def main() -> None:
    # An NVM-like machine: writes cost 16x reads (cf. the PCM/ReRAM numbers
    # in §2 of the paper), 64-record primary memory, 8-record blocks.
    params = MachineParams(M=64, B=8, omega=16)
    n = 10_000
    data = random_permutation(n, seed=42)

    print(f"machine {params}, n = {n}\n")

    # ---- external-memory sorting (§4) --------------------------------- #
    k = choose_k(params, n)  # Appendix-A branching factor
    rows = []
    for label, algorithm, kk in [
        ("classic EM mergesort (k=1)", "mergesort", 1),
        (f"AEM mergesort (k={k})", "mergesort", k),
        (f"AEM sample sort (k={k})", "samplesort", k),
        (f"AEM heapsort   (k={k})", "heapsort", k),
    ]:
        rep = sort_external(data, params, algorithm=algorithm, k=kk)
        assert rep.is_sorted()
        rows.append(
            {
                "algorithm": label,
                "block reads": rep.reads,
                "block writes": rep.writes,
                "cost R+wW": rep.cost(),
            }
        )
    print(format_table(rows, title="External-memory sorts (Theorems 4.3/4.5/4.10)"))
    saved = rows[0]["cost R+wW"] / rows[1]["cost R+wW"]
    print(f"\nwrite-efficient mergesort is {saved:.2f}x cheaper than classic here\n")

    # ---- RAM-model sorting (§3) ---------------------------------------- #
    rows = []
    for alg in ("bst-rb", "heapsort"):
        rep = sort_ram(data, algorithm=alg)
        rows.append(
            {
                "algorithm": alg,
                "reads": rep.reads,
                "writes": rep.writes,
                "cost(w=16)": rep.cost(omega=16),
            }
        )
    print(format_table(rows, title="RAM sorts (§3): O(n) vs Theta(n log n) writes"))


if __name__ == "__main__":
    main()
