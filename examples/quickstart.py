#!/usr/bin/env python3
"""Quickstart: sort under asymmetric read/write costs and read the bill.

One ``SortEngine`` owns the machine, the plan cache, and the calibrated
constants; every entry point hangs off it.  This walks the levels in ~50
lines of user code:

1. pick a machine (`MachineParams`): memory M, block size B, write cost omega;
2. build an engine and let it plan (``engine.sort(data)``) or pin a
   write-efficient algorithm and its classic counterpart explicitly;
3. compare the asymmetric I/O costs the algorithms pay;
4. push records incrementally through ``engine.stream()``.

Run:  python examples/quickstart.py
"""

from repro import MachineParams, SortEngine
from repro.analysis.ktuning import choose_k
from repro.analysis.tables import format_table
from repro.workloads import random_permutation


def main() -> None:
    # An NVM-like machine: writes cost 16x reads (cf. the PCM/ReRAM numbers
    # in §2 of the paper), 64-record primary memory, 8-record blocks.
    params = MachineParams(M=64, B=8, omega=16)
    engine = SortEngine(params)
    n = 10_000
    data = random_permutation(n, seed=42)

    print(f"machine {params}, n = {n}\n")

    # ---- external-memory sorting (§4) --------------------------------- #
    k = choose_k(params, n)  # Appendix-A branching factor
    rows = []
    for label, algorithm, kk in [
        ("classic EM mergesort (k=1)", "mergesort", 1),
        (f"AEM mergesort (k={k})", "mergesort", k),
        (f"AEM sample sort (k={k})", "samplesort", k),
        (f"AEM heapsort   (k={k})", "heapsort", k),
    ]:
        rep = engine.sort(data, algorithm=algorithm, k=kk)
        assert rep.is_sorted()
        rows.append(
            {
                "algorithm": label,
                "block reads": rep.reads,
                "block writes": rep.writes,
                "cost R+wW": rep.cost(),
            }
        )
    print(format_table(rows, title="External-memory sorts (Theorems 4.3/4.5/4.10)"))
    saved = rows[0]["cost R+wW"] / rows[1]["cost R+wW"]
    print(f"\nwrite-efficient mergesort is {saved:.2f}x cheaper than classic here\n")

    # ---- adaptive planning -------------------------------------------- #
    auto = engine.sort(data)  # the planner picks; the plan rides along
    print(
        f"engine.sort chose {auto.algorithm} "
        f"(predicted cost {auto.extras['plan']['chosen']['predicted_cost']:g}, "
        f"measured {auto.cost():g})\n"
    )

    # ---- RAM-model sorting (§3) ---------------------------------------- #
    from repro import sort_ram

    rows = []
    for alg in ("bst-rb", "heapsort"):
        rep = sort_ram(data, algorithm=alg)
        rows.append(
            {
                "algorithm": alg,
                "reads": rep.reads,
                "writes": rep.writes,
                "cost(w=16)": rep.cost(omega=16),
            }
        )
    print(format_table(rows, title="RAM sorts (§3): O(n) vs Theta(n log n) writes"))

    # ---- streaming ingestion (§4.3 buffer tree) ------------------------ #
    with engine.stream() as session:
        session.push_many(random_permutation(2000, seed=7))
        session.delete(13)
    rep = session.report
    print(
        f"\nstreamed 2000 records (1 deleted) -> {rep.n} out, sorted={rep.is_sorted()}, "
        f"{rep.reads} block reads, {rep.writes} block writes"
    )


if __name__ == "__main__":
    main()
