#!/usr/bin/env python3
"""Scenario: external sort of a database run on NVM, tuned per Appendix A.

The motivating workload of the paper's introduction: a database engine
sorting runs on phase-change memory, where each write costs ~an order of
magnitude more than a read *and* wears the device.  This example:

1. models three published device asymmetries (§2's PCM / ReRAM / STT
   figures) as omega values;
2. sweeps the branching factor k across the Appendix-A feasible region and
   picks the measured-cost winner;
3. reports cost (time/energy proxy) and total block writes (endurance
   proxy) against the classic EM mergesort.

Run:  python examples/nvm_database_sort.py
"""

from repro import AEMachine, MachineParams
from repro.analysis.ktuning import feasible_k_region
from repro.analysis.tables import format_table
from repro.core.aem_mergesort import aem_mergesort
from repro.workloads import zipf_keys

#: published read/write asymmetries from §2 of the paper (order of magnitude)
DEVICES = {
    "STT-RAM (~10x energy)": 8,
    "PCM byte r/w (~26x latency)": 16,
    "ReRAM (~100x latency)": 64,
}


def sort_cost(params: MachineParams, data: list, k: int) -> tuple[int, int, float]:
    machine = AEMachine(params)
    out = aem_mergesort(machine, machine.from_list(data), k=k)
    assert out.peek_list() == sorted(data)
    c = machine.counter
    return c.block_reads, c.block_writes, c.block_cost(params.omega)


def main() -> None:
    n = 20_000
    data = zipf_keys(n, skew=1.1, seed=7)  # skewed keys, like real columns
    M, B = 64, 8
    print(f"sorting a {n}-record run, M={M} records, B={B} records/block\n")

    rows = []
    for device, omega in DEVICES.items():
        params = MachineParams(M=M, B=B, omega=omega)
        classic_r, classic_w, classic_cost = sort_cost(params, data, k=1)

        best = None
        for k in feasible_k_region(params, k_max=2 * omega):
            r, w, cost = sort_cost(params, data, k)
            if best is None or cost < best[1]:
                best = (k, cost, r, w)
        k_star, best_cost, best_r, best_w = best

        rows.append(
            {
                "device": device,
                "omega": omega,
                "k*": k_star,
                "cost classic": classic_cost,
                "cost tuned": best_cost,
                "speedup": classic_cost / best_cost,
                "writes classic": classic_w,
                "writes tuned": best_w,
                "wear saved": f"{100 * (1 - best_w / classic_w):.0f}%",
            }
        )
    print(
        format_table(
            rows,
            title="AEM mergesort tuned per device (Corollary 4.4 / Appendix A)",
        )
    )
    print(
        "\ncost = block reads + omega * block writes (time/energy proxy);"
        "\nwrites saved extend device endurance (10^8-10^12 cycles, §1)."
    )


if __name__ == "__main__":
    main()
