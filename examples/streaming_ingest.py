#!/usr/bin/env python3
"""Streaming ingest: sort records you don't have yet.

Every other entry point in this library takes a whole list up front.  Real
ingestion pipelines don't work that way: records arrive one at a time (or in
small bursts), some get cancelled before they are ever read back, and the
sorted result is wanted only at drain points.  ``SortEngine.stream()`` is the
paper's §4.3 buffer tree behind a push/delete/flush session: each record
costs amortized ``O((1/B)(1 + log_{kM/B}(n/B)))`` block writes — not the
``O(log n)`` writes a B-tree or binary heap would pay.

The scenario below ingests a day of order events in bursts, cancels ~10% of
them before the evening drain, and compares the streaming bill with what a
one-shot adaptive sort of the surviving records would have paid.

Run:  python examples/streaming_ingest.py
"""

import random

from repro import MachineParams, SortEngine
from repro.analysis.tables import format_table


def main() -> None:
    # an NVM-backed box: writes cost 16x reads
    params = MachineParams(M=64, B=8, omega=16)
    engine = SortEngine(params)
    rng = random.Random(7)

    n_bursts, burst = 40, 250
    print(f"machine {params}: streaming {n_bursts} bursts of {burst} order ids\n")

    cancelled = 0
    with engine.stream() as session:
        order_ids = list(range(n_bursts * burst))
        rng.shuffle(order_ids)
        for b in range(n_bursts):
            arrivals = order_ids[b * burst : (b + 1) * burst]
            session.push_many(arrivals)
            # ~10% of this burst cancels before it is ever drained
            for oid in rng.sample(arrivals, burst // 10):
                session.delete(oid)
                cancelled += 1
    stream_report = session.report
    assert stream_report.is_sorted()

    # what a one-shot adaptive sort of the survivors would have paid
    oneshot = engine.sort(stream_report.output)

    rows = [
        {
            "path": f"stream (buffer tree, k={session.k})",
            "records": stream_report.n,
            "block reads": stream_report.reads,
            "block writes": stream_report.writes,
            "cost R+wW": stream_report.cost(),
        },
        {
            "path": f"one-shot {oneshot.algorithm}",
            "records": oneshot.n,
            "block reads": oneshot.reads,
            "block writes": oneshot.writes,
            "cost R+wW": oneshot.cost(),
        },
    ]
    print(format_table(rows, title="Streaming ingest vs one-shot sort"))

    extras = stream_report.extras
    print(
        f"\n{session.pushed} pushed, {cancelled} cancelled "
        f"({extras['annihilations']} annihilated inside the tree before "
        "reaching a leaf)"
    )
    print(
        f"buffer emptyings: {extras['emptyings']}, leaf splits: "
        f"{extras['leaf_splits']}, internal splits: {extras['internal_splits']}"
    )
    per_record = (stream_report.reads + stream_report.writes) / max(stream_report.n, 1)
    print(
        f"amortized block transfers per surviving record: {per_record:.3f} "
        f"(unit-constant prediction {((extras['predicted_reads'] + extras['predicted_writes']) / max(stream_report.n, 1)):.3f})"
    )


if __name__ == "__main__":
    main()
