#!/usr/bin/env python3
"""Scenario: an external event queue on the §4.3.3 priority queue.

A discrete-event simulator (or a database LSM compaction scheduler, or a
router timer wheel) keeps millions of future events on NVM and repeatedly
extracts the earliest one.  The paper's buffer-tree priority queue does each
INSERT / DELETE-MIN in amortized O((k/B)(1+log_{kM/B} n)) reads and a factor
~k fewer writes — this example runs such a loop and compares k=1 (classic
Arge buffer tree) against a write-efficient k.

Run:  python examples/event_queue.py
"""

import random

from repro import AEMachine, AEMPriorityQueue, MachineParams
from repro.analysis.tables import format_table


def simulate(params: MachineParams, k: int, n_events: int, seed: int = 0):
    """Classic hold-model workload: pop the next event, schedule a few more."""
    rng = random.Random(seed)
    machine = AEMachine(params)
    pq = AEMPriorityQueue(machine, k=k)

    now = 0.0
    next_id = 0

    def schedule(base: float, count: int) -> None:
        nonlocal next_id
        for _ in range(count):
            # unique composite key: (timestamp, id) flattened into a float-free
            # integer key so ordering is total
            delay = rng.randint(1, 10_000)
            pq.insert((int(base) + delay) * 10_000_000 + next_id)
            next_id += 1

    schedule(0, 500)  # prime the queue
    processed = 0
    while processed < n_events:
        key = pq.delete_min()
        now = key // 10_000_000
        processed += 1
        # each event spawns 0-2 follow-ups; drift keeps the queue ~steady
        schedule(now, rng.choice((0, 1, 1, 2)))
        if len(pq) == 0:
            schedule(now, 100)

    c = machine.counter
    return {
        "k": k,
        "events": processed,
        "reads/op": c.block_reads / (2 * processed),
        "writes/op": c.block_writes / (2 * processed),
        "total cost": c.block_cost(params.omega),
        "beta rebuilds": pq.beta_rebuilds,
        "tree refills": pq.tree_refills,
    }


def main() -> None:
    params = MachineParams(M=64, B=8, omega=16)
    n_events = 6_000
    print(f"event loop on {params}, {n_events} events\n")
    rows = [simulate(params, k, n_events, seed=3) for k in (1, 2, 4)]
    print(format_table(rows, title="Buffer-tree priority queue (Theorem 4.10)"))
    base = rows[0]["total cost"]
    for r in rows[1:]:
        print(f"k={r['k']}: {base / r['total cost']:.2f}x cheaper than classic")


if __name__ == "__main__":
    main()
