#!/usr/bin/env python3
"""Regenerate every experiment table of the reproduction in one run.

Prints E1-E14 (see DESIGN.md §3 for the claim-to-experiment index).  With
``--quick``, uses the reduced parameter grids the benchmarks use (~30s);
the full run takes several minutes and is what EXPERIMENTS.md records.

Run:  python examples/reproduce_paper.py [--quick] [EXPERIMENT ...]
e.g.  python examples/reproduce_paper.py --quick E2 E7
"""

import sys
import time

from repro.analysis.tables import format_table
from repro.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> None:
    quick = "--quick" in argv
    wanted = [a.upper() for a in argv if a.startswith(("e", "E"))] or list(
        ALL_EXPERIMENTS
    )
    for name in wanted:
        mod = ALL_EXPERIMENTS[name]
        t0 = time.time()
        rows = mod.run(quick=quick)
        elapsed = time.time() - t0
        print(format_table(rows, title=getattr(mod, "TITLE", name)))
        extra = getattr(mod, "run_omega_sweep", None)
        if extra is not None:
            print()
            print(format_table(extra(quick=quick), title=f"{name}b omega sweep"))
        print(f"[{name}: {elapsed:.1f}s]\n")


if __name__ == "__main__":
    main(sys.argv[1:])
