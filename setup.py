"""Legacy shim so `pip install -e .` works with setuptools 65 / no wheel.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path on environments without the `wheel` package.
"""
from setuptools import setup

setup()
