"""Unit tests for the Asymmetric RAM instrumented array."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import CostCounter, InstrumentedArray


class TestCharging:
    def test_read_charges(self):
        a = InstrumentedArray([1, 2, 3])
        assert a[1] == 2
        assert a.counter.element_reads == 1
        assert a.counter.element_writes == 0

    def test_write_charges(self):
        a = InstrumentedArray([1, 2, 3])
        a[0] = 9
        assert a.counter.element_writes == 1
        assert a.peek_list() == [9, 2, 3]

    def test_init_uncharged_by_default(self):
        a = InstrumentedArray(range(10))
        assert a.counter.element_writes == 0

    def test_init_charged_mode(self):
        a = InstrumentedArray(range(10), charge_init=True)
        assert a.counter.element_writes == 10

    def test_iteration_charges_per_element(self):
        a = InstrumentedArray([1, 2, 3])
        assert list(a) == [1, 2, 3]
        assert a.counter.element_reads == 3

    def test_swap_costs_two_reads_two_writes(self):
        a = InstrumentedArray([1, 2])
        a.swap(0, 1)
        assert a.peek_list() == [2, 1]
        assert a.counter.element_reads == 2
        assert a.counter.element_writes == 2

    def test_shared_counter(self):
        c = CostCounter()
        a = InstrumentedArray([1], c)
        b = InstrumentedArray([2], c)
        a[0], b[0]
        assert c.element_reads == 2


class TestInterface:
    def test_len(self):
        assert len(InstrumentedArray(range(5))) == 5

    def test_empty_factory(self):
        a = InstrumentedArray.empty(4)
        assert a.peek_list() == [None] * 4
        assert a.counter.element_writes == 0

    def test_no_slicing(self):
        a = InstrumentedArray(range(4))
        with pytest.raises(TypeError):
            a[0:2]
        with pytest.raises(TypeError):
            a[0:2] = [1, 2]

    def test_peek_is_uncharged_copy(self):
        a = InstrumentedArray([1, 2])
        snapshot = a.peek_list()
        snapshot[0] = 99
        assert a.counter.element_reads == 0
        assert a.peek_list() == [1, 2]

    @given(st.lists(st.integers(), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, data):
        a = InstrumentedArray(data)
        out = [a[i] for i in range(len(a))]
        assert out == data
        assert a.counter.element_reads == len(data)
